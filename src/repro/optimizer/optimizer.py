"""The quality-aware join optimizer (Section VI, "Putting It All Together").

Given (τg, τb), the optimizer evaluates every candidate plan with the
Section V models and picks the feasible plan with the minimum predicted
execution time.  Per plan it must also choose the *operating point* — how
many documents to retrieve / queries to issue.  Exhaustively plugging in
every (|Dr1|, |Dr2|) is wasteful, so:

* IDJN follows the paper's square-traversal heuristic: minimize the sum of
  documents retrieved conditioned on their product by keeping the two
  sides' progress balanced — both sides advance along a common fraction t
  of their effort axes, and t is found by bisection on the (monotone)
  predicted good-tuple count;
* OIJN bisects its single effort axis (outer documents);
* ZGJN bisects its query budget.

A plan is *feasible* if some operating point satisfies both bounds:
predicted good and bad tuples are both monotone in effort, so the minimal
t reaching τg is the cheapest candidate — if it violates τb, no later
point can repair it and the plan is rejected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.plan import JoinKind, JoinPlanSpec
from ..core.preferences import QualityRequirement
from ..joins.costs import CostModel
from ..models.idjn_model import IDJNModel
from ..models.oijn_model import OIJNModel
from ..models.predictions import QualityPrediction
from ..models.zgjn_model import ZGJNModel
from ..observability.context import ObservabilityContext, ensure_observability
from ..observability.tracer import SpanKind
from .bounds import PlanBounds, plan_bounds
from .catalog import StatisticsCatalog
from .engine import PlanEvaluationEngine, fork_map


@dataclass(frozen=True)
class PlanEvaluation:
    """One candidate plan's assessment against a requirement."""

    plan: JoinPlanSpec
    feasible: bool
    prediction: Optional[QualityPrediction]
    #: the chosen operating point, as a fraction of the plan's effort axis
    effort_fraction: float = 0.0
    #: True when the pruning layer discarded the plan mid-descent — either
    #: provably unable to meet τb or provably slower than a feasible
    #: competitor — without computing its full prediction.  Pruned
    #: evaluations are never feasible and never chosen; on the unpruned
    #: reference the same plan is either infeasible or strictly slower
    #: than the chosen one (asserted by the equivalence tests).
    pruned: bool = False

    @property
    def predicted_time(self) -> float:
        if self.prediction is None:
            return float("inf")
        return self.prediction.total_time


class PruningTallies:
    """Plain-int pruning/reuse tallies (zero observability coupling).

    Scraped into ``repro_plans_pruned_total`` / ``repro_curve_cache_hits_total``
    counters after each pruned optimization when observability is on.
    """

    __slots__ = (
        "infeasible_bound",
        "infeasible_tau_bad",
        "dominated",
        "descent_probes",
        "curve_import_hits",
        "monotonicity_fallbacks",
    )

    def __init__(self) -> None:
        self.infeasible_bound = 0
        self.infeasible_tau_bad = 0
        self.dominated = 0
        self.descent_probes = 0
        self.curve_import_hits = 0
        self.monotonicity_fallbacks = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    @property
    def plans_pruned(self) -> int:
        return self.infeasible_bound + self.infeasible_tau_bad + self.dominated


class _PlanRuntime:
    """Requirement-independent descent context for one plan.

    Built once per plan and shared by every requirement in a sweep, so
    the per-requirement hot loop never re-hashes the plan dataclass:
    bounds, predictor, bisection budget, and the float-keyed probe-triple
    cache all live here behind an ``id()`` lookup.
    """

    __slots__ = (
        "plan",
        "bounds",
        "predictor",
        "max_effort",
        "steps",
        "memo",
        "triples",
        "imported",
        "error",
        "non_monotone",
    )

    def __init__(self, plan: JoinPlanSpec, bounds) -> None:
        self.plan = plan
        self.bounds = bounds
        self.predictor: Optional[Callable[[float], QualityPrediction]] = None
        self.max_effort = 0.0
        self.steps = 0
        self.memo: Dict[float, QualityPrediction] = {}
        #: effort -> (n_good, n_bad, time); every probe this optimizer has
        #: answered, whatever the source — the descent's fast path
        self.triples: Dict[float, Tuple[float, float, float]] = {}
        #: persisted triples not yet promoted into :attr:`triples`
        self.imported: Dict[float, Tuple[float, float, float]] = {}
        self.error = False
        #: mirror of the optimizer's non-monotone registry so the hot
        #: loop reads a slot instead of hashing the plan into a set
        self.non_monotone = False


class _DescentState:
    """One plan's bisection bracket during a pruned optimization."""

    __slots__ = (
        "index",
        "runtime",
        "steps_left",
        "lo",
        "hi",
        "lo_vals",
        "hi_vals",
        "guard_failed",
    )

    def __init__(
        self, index: int, runtime: _PlanRuntime, guard_failed: bool
    ) -> None:
        self.index = index
        self.runtime = runtime
        self.steps_left = runtime.steps
        self.lo = 0.0
        self.hi = 1.0
        #: (n_good, n_bad, time) at the probed bracket ends; ``lo_vals`` is
        #: None until the descent first probes a failing midpoint (the
        #: legacy bisection never probes effort 0)
        self.lo_vals: Optional[Tuple[float, float, float]] = None
        self.hi_vals: Tuple[float, float, float] = (0.0, 0.0, 0.0)
        self.guard_failed = guard_failed


@dataclass(frozen=True)
class OptimizationResult:
    """The chosen plan plus the full candidate assessment (Table II data)."""

    requirement: QualityRequirement
    chosen: Optional[PlanEvaluation]
    evaluations: Tuple[PlanEvaluation, ...]

    @property
    def feasible(self) -> Tuple[PlanEvaluation, ...]:
        return tuple(e for e in self.evaluations if e.feasible)

    def faster_than_chosen(self) -> Tuple[PlanEvaluation, ...]:
        if self.chosen is None:
            return ()
        return tuple(
            e
            for e in self.feasible
            if e.plan != self.chosen.plan
            and e.predicted_time < self.chosen.predicted_time
        )


class JoinOptimizer:
    """Evaluates candidate plans with the analytical models."""

    def __init__(
        self,
        catalog: StatisticsCatalog,
        costs: Optional[CostModel] = None,
        effort_resolution: int = 64,
        feasibility_margin: float = 0.0,
        vectorized: bool = True,
        use_engine: bool = True,
        observability: Optional[ObservabilityContext] = None,
        prune: bool = False,
    ) -> None:
        self.catalog = catalog
        self.costs = costs or CostModel()
        #: tracing/metrics context; defaults to the no-op context
        self.observability = ensure_observability(observability)
        #: run the analytical models through the array kernels
        #: (``False`` keeps the scalar reference paths — same results
        #: within 1e-9, used for golden tests and benchmarks)
        self.vectorized = vectorized
        #: answer feasibility via the shared plan-curve engine instead of
        #: re-bisecting each plan per requirement; results are identical
        self.use_engine = use_engine
        if effort_resolution < 2:
            raise ValueError("effort_resolution must be at least 2")
        self.effort_resolution = effort_resolution
        if feasibility_margin < 0.0:
            raise ValueError("feasibility_margin must be non-negative")
        #: Overprovisioning factor on τg: the optimizer plans for
        #: ``τg · (1 + margin)`` good tuples.  The analytical models can
        #: overestimate a plan's asymptotic reach by 5-15% (the paper
        #: reports the same tendency), so a small margin keeps near-ceiling
        #: requirements from being assigned plans that just miss them.
        #: 0.0 reproduces the paper's optimizer exactly.
        self.feasibility_margin = feasibility_margin
        # Models are requirement-independent; cache them per plan so that
        # sweeping many (τg, τb) levels re-uses every constructed model,
        # and memoize predictions per (plan, effort) since bisection from
        # different requirements frequently probes the same efforts.
        self._predictors: Dict[
            JoinPlanSpec, Tuple[Callable[[float], QualityPrediction], float]
        ] = {}
        self._prediction_memo: Dict[
            JoinPlanSpec, Dict[float, QualityPrediction]
        ] = {}
        # Constructed analytical models per plan, kept so telemetry can
        # scrape their passive cache tallies (OIJN issue-probability LRU).
        self._models: Dict[JoinPlanSpec, object] = {}
        self._engine = PlanEvaluationEngine(self)
        #: bound-based pruning (DESIGN §6.7): discard plans whose quality
        #: ceilings prove them infeasible before building their models,
        #: and run requirement evaluation as a joint bisection descent
        #: that drops provably-dominated or provably-τb-infeasible plans
        #: between levels.  Results are equivalent to the unpruned path
        #: (identical chosen plan, byte-identical surviving evaluations);
        #: pruned plans are marked instead of fully predicted.  Off by
        #: default so existing consumers (service plan responses, drift
        #: telemetry) keep their full evaluation sets.
        self.prune = prune
        self.pruning = PruningTallies()
        self._bounds_cache: Dict[JoinPlanSpec, Optional[PlanBounds]] = {}
        #: probe triples effort -> (n_good, n_bad, time) imported from a
        #: persisted curve store; consulted by the descent before paying
        #: for a raw model prediction
        self._probe_triples: Dict[
            JoinPlanSpec, Dict[float, Tuple[float, float, float]]
        ] = {}
        #: raw imported payload (plan.describe() keyed), kept so exports
        #: round-trip records for plans this session never evaluated
        self._imported_payload: Dict[str, dict] = {}
        #: plans whose observed probes violated the monotone-curve model
        #: contract; they are never pruned again (deterministic fallback)
        self._non_monotone: set = set()
        #: per-plan descent runtimes, keyed by ``id(plan)`` so the sweep
        #: hot loop never re-hashes plan dataclasses (identity is
        #: re-checked against the held reference before reuse)
        self._runtimes: Dict[int, _PlanRuntime] = {}

    # -- per-plan evaluation ------------------------------------------------------

    def evaluate(
        self, plan: JoinPlanSpec, requirement: QualityRequirement
    ) -> PlanEvaluation:
        """Find the plan's cheapest operating point meeting (τg, τb).

        Plans whose strategies lack the needed offline parameters (an AQG
        side without query statistics, an FS side without a classifier
        profile) are reported infeasible rather than crashing the sweep.
        """
        observability = self.observability
        if not observability.enabled:
            return self._evaluate(plan, requirement)
        with observability.span(
            SpanKind.PLAN_EVALUATION,
            f"evaluate.{plan.join.value.lower()}",
            plan=plan.describe(),
        ) as span:
            evaluation = self._evaluate(plan, requirement)
            span.set(
                feasible=evaluation.feasible,
                effort_fraction=evaluation.effort_fraction,
            )
            if evaluation.prediction is not None:
                span.set(predicted_time=evaluation.predicted_time)
        observability.metrics.counter(
            "repro_plan_evaluations_total", feasible=evaluation.feasible
        ).inc()
        return evaluation

    def _evaluate(
        self, plan: JoinPlanSpec, requirement: QualityRequirement
    ) -> PlanEvaluation:
        try:
            predictor, max_effort = self._cached_predictor(plan)
        except ValueError:
            return PlanEvaluation(plan=plan, feasible=False, prediction=None)
        target_good = requirement.tau_good * (1.0 + self.feasibility_margin)
        if self.use_engine:
            fraction = self._engine.minimal_fraction(plan, target_good)
        else:
            fraction = self._minimal_fraction(
                predictor, max_effort, target_good
            )
        if fraction is None:
            return PlanEvaluation(plan=plan, feasible=False, prediction=None)
        prediction = predictor(fraction * max_effort)
        feasible = prediction.meets(requirement.tau_good, requirement.tau_bad)
        return PlanEvaluation(
            plan=plan,
            feasible=feasible,
            prediction=prediction,
            effort_fraction=fraction,
        )

    def _cached_predictor(
        self, plan: JoinPlanSpec
    ) -> Tuple[Callable[[float], QualityPrediction], float]:
        if plan not in self._predictors:
            raw, max_effort = self._predictor(plan)
            memo = self._prediction_memo.setdefault(plan, {})

            def memoized(
                effort: float,
                _raw: Callable[[float], QualityPrediction] = raw,
                _memo: Dict[float, QualityPrediction] = memo,
            ) -> QualityPrediction:
                # Keyed on the exact effort: every probe the bisection,
                # grid, or sweeps produce is a dyadic fraction of
                # max_effort, so keys are reproducible floats — rounding
                # (the old key) made distinct efforts on large axes
                # collide and return a neighbouring point's prediction.
                # One dict per plan keeps the hot path from re-hashing
                # the whole plan dataclass on every probe.
                found = _memo.get(effort)
                if found is None:
                    found = _raw(effort)
                    _memo[effort] = found
                return found

            self._predictors[plan] = (memoized, max_effort)
        return self._predictors[plan]

    def _predictor(
        self, plan: JoinPlanSpec
    ) -> Tuple[Callable[[float], QualityPrediction], float]:
        statistics = self.catalog.at(plan.extractor1.theta, plan.extractor2.theta)
        per_value = self.catalog.per_value
        overlap = self.catalog.overlap
        if plan.join is JoinKind.IDJN:
            model = IDJNModel(
                statistics,
                plan.retrieval1,
                plan.retrieval2,
                costs=self.costs,
                per_value=per_value,
                overlap=overlap,
                vectorized=self.vectorized,
            )
            self._models[plan] = model
            max1, max2 = model.max_effort(1), model.max_effort(2)

            def predict(effort: float) -> QualityPrediction:
                t = effort / max(max1, max2, 1)
                return model.predict(t * max1, t * max2)

            return predict, float(max(max1, max2))
        if plan.join is JoinKind.OIJN:
            model = OIJNModel(
                statistics,
                plan.outer_retrieval,
                outer=plan.outer,
                costs=self.costs,
                per_value=per_value,
                overlap=overlap,
                vectorized=self.vectorized,
            )
            self._models[plan] = model
            return model.predict, float(model.max_effort)
        model = ZGJNModel(
            statistics,
            costs=self.costs,
            per_value=per_value,
            overlap=overlap,
            vectorized=self.vectorized,
        )
        self._models[plan] = model
        return model.predict, float(model.max_queries_from_r1())

    def _minimal_fraction(
        self,
        predictor: Callable[[float], QualityPrediction],
        max_effort: float,
        tau_good: float,
    ) -> Optional[float]:
        """Smallest effort fraction whose predicted good count reaches τg.

        Bisection over the effort axis; the predicted good count is
        monotone non-decreasing in effort for every model.
        """
        if max_effort <= 0:
            return None
        if predictor(max_effort).n_good < tau_good:
            return None
        lo, hi = 0.0, 1.0
        for _ in range(self._bisection_steps(max_effort)):
            mid = (lo + hi) / 2.0
            if predictor(mid * max_effort).n_good >= tau_good:
                hi = mid
            else:
                lo = mid
        return hi

    def _bisection_steps(self, max_effort: float) -> int:
        steps = 1
        while (1 << steps) < max(self.effort_resolution, int(max_effort)):
            steps += 1
        return min(steps, 16)

    # -- bound-based pruning (tier A + descent tier B) ---------------------------

    def plan_bounds(self, plan: JoinPlanSpec) -> Optional[PlanBounds]:
        """Guaranteed quality ceilings for the plan (cached; None = unknown)."""
        if plan not in self._bounds_cache:
            self._bounds_cache[plan] = plan_bounds(self.catalog, plan)
        return self._bounds_cache[plan]

    def predict_full_effort(
        self, plan: JoinPlanSpec
    ) -> Optional[QualityPrediction]:
        """The plan's prediction at maximum effort (None when unbuildable).

        This is the point the tier-A bounds cap, so ``bound / actual`` here
        is the q-error the bound-tightness report measures.
        """
        runtime = self._runtime(plan)
        if not self._activate(runtime):
            return None
        return runtime.predictor(runtime.max_effort)

    def _runtime(self, plan: JoinPlanSpec) -> _PlanRuntime:
        """The plan's descent runtime, bounds computed, predictor lazy."""
        runtime = self._runtimes.get(id(plan))
        if runtime is None or runtime.plan is not plan:
            runtime = _PlanRuntime(plan, self.plan_bounds(plan))
            runtime.non_monotone = plan in self._non_monotone
            self._runtimes[id(plan)] = runtime
        return runtime

    def _activate(self, runtime: _PlanRuntime) -> bool:
        """Attach the model predictor on first use; False when unusable."""
        if runtime.predictor is not None:
            return True
        if runtime.error:
            return False
        try:
            predictor, max_effort = self._cached_predictor(runtime.plan)
        except ValueError:
            runtime.error = True
            return False
        if max_effort <= 0:
            runtime.error = True
            return False
        runtime.predictor = predictor
        runtime.max_effort = float(max_effort)
        runtime.steps = self._bisection_steps(max_effort)
        runtime.memo = self._prediction_memo[runtime.plan]
        runtime.imported = self._probe_triples.setdefault(runtime.plan, {})
        return True

    def _probe(
        self, runtime: _PlanRuntime, fraction: float
    ) -> Tuple[float, float, float]:
        """(n_good, n_bad, time) at a fraction of the plan's effort axis.

        Resolution order: this optimizer's own probe triples (free), the
        exact-effort prediction memo, imported persisted triples (skips
        the raw model entirely; counted as a curve-cache hit on first
        use), then one raw prediction.  Effort keys are the same
        ``fraction * max_effort`` floats the legacy bisection produces, so
        every answer is byte-identical to a fresh probe.
        """
        effort = fraction * runtime.max_effort
        triple = runtime.triples.get(effort)
        if triple is not None:
            return triple
        prediction = runtime.memo.get(effort)
        if prediction is None:
            triple = runtime.imported.get(effort)
            if triple is not None:
                self.pruning.curve_import_hits += 1
                runtime.triples[effort] = triple
                return triple
            prediction = runtime.predictor(effort)
            self.pruning.descent_probes += 1
        triple = (prediction.n_good, prediction.n_bad, prediction.total_time)
        runtime.triples[effort] = triple
        return triple

    def _evaluate_pruned(
        self,
        plans: Sequence[JoinPlanSpec],
        requirement: QualityRequirement,
    ) -> List[PlanEvaluation]:
        """Joint bisection descent over all plans with pruning between levels.

        Every plan runs the *identical* bisection the legacy path runs —
        same midpoint sequence, same floats — so any plan that survives to
        the end produces a byte-identical evaluation.  Between bisection
        levels, plans that are provably worthless are dropped:

        * **tier A** (before any probe): the plan's guaranteed good-tuple
          ceiling cannot reach the target — reported exactly like the
          unpruned infeasible case (no prediction, ``pruned`` unset);
        * **τb**: the bracket's low end already produces more than τb bad
          tuples; since the final operating point lies above it and n_bad
          is non-decreasing in effort, the plan can never be feasible;
        * **dominance**: the bracket's low-end time already exceeds the
          best *certain* feasible competitor's high-end time, so the
          plan's final time is strictly worse than some feasible plan's.

        Monotonicity of (n_good, n_bad, time) in effort is the model
        contract the τb/dominance rules lean on; a guard cross-checks
        every probed bracket and permanently exempts any violating plan
        from pruning (it then completes its full descent).
        """
        tally = self.pruning
        target_good = requirement.tau_good * (1.0 + self.feasibility_margin)
        tau_bad = requirement.tau_bad
        evaluations: List[Optional[PlanEvaluation]] = [None] * len(plans)
        alive: List[_DescentState] = []
        for index, plan in enumerate(plans):
            runtime = self._runtime(plan)
            bounds = runtime.bounds
            if bounds is not None and bounds.cannot_reach(target_good):
                tally.infeasible_bound += 1
                evaluations[index] = PlanEvaluation(
                    plan=plan, feasible=False, prediction=None
                )
                continue
            if not self._activate(runtime):
                evaluations[index] = PlanEvaluation(
                    plan=plan, feasible=False, prediction=None
                )
                continue
            state = _DescentState(index, runtime, runtime.non_monotone)
            root = self._probe(runtime, 1.0)
            if root[0] < target_good:
                evaluations[index] = PlanEvaluation(
                    plan=plan, feasible=False, prediction=None
                )
                continue
            state.hi_vals = root
            alive.append(state)

        best_time = float("inf")
        while alive:
            # Cheapest certain completion time: finished feasible plans'
            # exact times plus the bracket ceilings of plans whose bracket
            # already guarantees feasibility (n_bad at hi within τb).
            threshold = best_time
            for state in alive:
                if not state.guard_failed and state.hi_vals[1] <= tau_bad:
                    threshold = min(threshold, state.hi_vals[2])
            survivors: List[_DescentState] = []
            for state in alive:
                runtime = state.runtime
                lo_vals = state.lo_vals
                if not state.guard_failed and lo_vals is not None:
                    if lo_vals[1] > tau_bad:
                        tally.infeasible_tau_bad += 1
                        evaluations[state.index] = PlanEvaluation(
                            plan=runtime.plan,
                            feasible=False,
                            prediction=None,
                            pruned=True,
                        )
                        continue
                    if lo_vals[2] > threshold:
                        tally.dominated += 1
                        evaluations[state.index] = PlanEvaluation(
                            plan=runtime.plan,
                            feasible=False,
                            prediction=None,
                            pruned=True,
                        )
                        continue
                if state.steps_left <= 0:
                    prediction = runtime.predictor(
                        state.hi * runtime.max_effort
                    )
                    feasible = prediction.meets(
                        requirement.tau_good, requirement.tau_bad
                    )
                    evaluations[state.index] = PlanEvaluation(
                        plan=runtime.plan,
                        feasible=feasible,
                        prediction=prediction,
                        effort_fraction=state.hi,
                    )
                    if feasible and prediction.total_time < best_time:
                        best_time = prediction.total_time
                    continue
                mid = (state.lo + state.hi) / 2.0
                probed = self._probe(runtime, mid)
                if not state.guard_failed:
                    above = state.hi_vals
                    monotone = (
                        probed[0] <= above[0]
                        and probed[1] <= above[1]
                        and probed[2] <= above[2]
                        and (
                            lo_vals is None
                            or (
                                lo_vals[0] <= probed[0]
                                and lo_vals[1] <= probed[1]
                                and lo_vals[2] <= probed[2]
                            )
                        )
                    )
                    if not monotone:
                        state.guard_failed = True
                        runtime.non_monotone = True
                        tally.monotonicity_fallbacks += 1
                        self._non_monotone.add(runtime.plan)
                if probed[0] >= target_good:
                    state.hi, state.hi_vals = mid, probed
                else:
                    state.lo, state.lo_vals = mid, probed
                state.steps_left -= 1
                survivors.append(state)
            alive = survivors
        return list(evaluations)

    def _publish_pruning(self, before: Dict[str, int]) -> None:
        """Increment the pruning counters by this optimization's deltas."""
        observability = self.observability
        if not observability.enabled:
            return
        after = self.pruning.as_dict()
        metrics = observability.metrics
        for reason in ("infeasible_bound", "infeasible_tau_bad", "dominated"):
            delta = after[reason] - before.get(reason, 0)
            if delta:
                metrics.counter(
                    "repro_plans_pruned_total", reason=reason
                ).inc(delta)
        delta = after["curve_import_hits"] - before.get("curve_import_hits", 0)
        if delta:
            metrics.counter(
                "repro_curve_cache_hits_total", source="store"
            ).inc(delta)

    # -- persisted probe curves ---------------------------------------------------

    def export_probes(self) -> Dict[str, dict]:
        """Every known probe triple, keyed by plan signature.

        Payload shape (JSON-serializable; floats round-trip exactly):
        ``{plan.describe(): {"max_effort": float,
        "probes": [[effort, n_good, n_bad, time], ...]}}``.  Merges this
        session's predictions with any imported payload, so re-persisting
        never loses probes for plans the session didn't touch.
        """
        merged: Dict[str, Tuple[float, Dict[float, Tuple[float, float, float]]]] = {}
        for key, record in self._imported_payload.items():
            probes = {
                float(row[0]): (float(row[1]), float(row[2]), float(row[3]))
                for row in record.get("probes", ())
            }
            merged[key] = (float(record.get("max_effort", 0.0)), probes)
        for plan, (_, max_effort) in self._predictors.items():
            key = plan.describe()
            entry = merged.get(key)
            if entry is None or entry[0] != float(max_effort):
                entry = (float(max_effort), {})
            probes = entry[1]
            for effort, triple in self._probe_triples.get(plan, {}).items():
                probes.setdefault(effort, triple)
            for effort, prediction in self._prediction_memo.get(plan, {}).items():
                probes[effort] = (
                    prediction.n_good,
                    prediction.n_bad,
                    prediction.total_time,
                )
            merged[key] = (entry[0], probes)
        return {
            key: {
                "max_effort": max_effort,
                "probes": [
                    [effort, *triple]
                    for effort, triple in sorted(probes.items())
                ],
            }
            for key, (max_effort, probes) in merged.items()
        }

    def probe_count(self) -> int:
        """Total distinct probe triples an export would carry."""
        return sum(
            len(record["probes"]) for record in self.export_probes().values()
        )

    def import_probes(
        self, payload: Dict[str, dict], plans: Sequence[JoinPlanSpec]
    ) -> int:
        """Seed the descent with persisted probe triples; returns count loaded.

        Entries are matched to *plans* by ``describe()`` signature; probes
        are keyed by absolute effort, so statistics drift cannot cause a
        stale hit (staleness is additionally gated by the store's
        generation check before the payload ever reaches here).  Unmatched
        records are retained for re-export.
        """
        by_key = {plan.describe(): plan for plan in plans}
        loaded = 0
        for key, record in payload.items():
            if not isinstance(record, dict):
                continue
            rows = record.get("probes", ())
            self._imported_payload[key] = {
                "max_effort": record.get("max_effort", 0.0),
                "probes": [list(row) for row in rows],
            }
            plan = by_key.get(key)
            if plan is None:
                continue
            triples = self._probe_triples.setdefault(plan, {})
            for row in rows:
                try:
                    effort, n_good, n_bad, time = (
                        float(row[0]),
                        float(row[1]),
                        float(row[2]),
                        float(row[3]),
                    )
                except (TypeError, ValueError, IndexError):
                    continue
                if effort not in triples:
                    triples[effort] = (n_good, n_bad, time)
                    loaded += 1
        return loaded

    # -- full optimization -------------------------------------------------------

    def optimize(
        self,
        plans: Sequence[JoinPlanSpec],
        requirement: QualityRequirement,
        workers: Optional[int] = None,
        prune: Optional[bool] = None,
    ) -> OptimizationResult:
        """Assess all candidates; choose the fastest feasible one.

        ``workers > 1`` fans the per-plan evaluations out over fork-based
        processes; results are reassembled in plan order and are identical
        to the serial run (falls back to serial where fork is unavailable).
        Telemetry from forked children (spans, counters) is shipped back
        and merged in worker-index order, so traces stay deterministic in
        structure.

        ``prune`` overrides the constructor's pruning default for this
        call.  The pruned path picks the identical plan at the identical
        operating point; provably-dominated or provably-τb-infeasible
        candidates come back with ``pruned=True`` instead of a full
        prediction.  Pruning runs serially — it typically does less work
        than a single fork fan-out costs — so ``workers`` only applies to
        the unpruned path (results are identical either way).
        """
        effective_prune = self.prune if prune is None else prune
        observability = self.observability
        with observability.span(
            SpanKind.OPTIMIZE,
            "optimize",
            plans=len(plans),
            tau_good=requirement.tau_good,
            tau_bad=requirement.tau_bad,
        ) as span:
            evaluations = None
            if effective_prune:
                before = self.pruning.as_dict()
                evaluations = self._evaluate_pruned(list(plans), requirement)
                self._publish_pruning(before)
                if observability.enabled:
                    # One batched inc per label value, not one label-key
                    # resolution per evaluation: sweeps call optimize()
                    # once per tau and the per-call lookup cost dominates
                    # the enabled-path overhead.
                    feasible = sum(1 for e in evaluations if e.feasible)
                    infeasible = len(evaluations) - feasible
                    if feasible:
                        observability.metrics.counter(
                            "repro_plan_evaluations_total", feasible=True
                        ).inc(feasible)
                    if infeasible:
                        observability.metrics.counter(
                            "repro_plan_evaluations_total", feasible=False
                        ).inc(infeasible)
            elif workers is not None and workers > 1:
                global _FORK_STATE
                _FORK_STATE = (self, list(plans), requirement)
                try:
                    indexed = fork_map(
                        _evaluate_plan_index, len(plans), workers
                    )
                finally:
                    _FORK_STATE = None
                if indexed is not None:
                    evaluations = [evaluation for evaluation, _ in indexed]
                    for _, payload in indexed:
                        observability.merge_child(payload)
            if evaluations is None:
                evaluations = [
                    self.evaluate(plan, requirement) for plan in plans
                ]
            feasible = [e for e in evaluations if e.feasible]
            chosen = (
                min(feasible, key=lambda e: e.predicted_time)
                if feasible
                else None
            )
            span.set(
                feasible=len(feasible),
                chosen=chosen.plan.describe() if chosen is not None else None,
            )
        self.scrape_cache_metrics()
        return OptimizationResult(
            requirement=requirement,
            chosen=chosen,
            evaluations=tuple(evaluations),
        )

    def optimize_many(
        self,
        plans: Sequence[JoinPlanSpec],
        requirements: Sequence[QualityRequirement],
        workers: Optional[int] = None,
        prune: Optional[bool] = True,
    ) -> List[OptimizationResult]:
        """Answer many (τg, τb) requirements over one shared plan space.

        This is the tau-sweep entry point: with pruning on (the default
        here; pass ``None`` to inherit the constructor setting), all
        requirements share one set of tier-A bounds, one model
        per plan, and one pool of memoized effort probes — a requirement
        whose descent revisits an effort another requirement already
        probed pays a dict lookup instead of a model prediction, so the
        whole sweep approaches one frontier pass over the shared curves.
        Results are position-matched to *requirements* and each is
        identical to ``optimize(plans, requirement)`` called alone.
        """
        effective_prune = self.prune if prune is None else prune
        plans = list(plans)
        return [
            self.optimize(
                plans, requirement, workers=workers, prune=effective_prune
            )
            for requirement in requirements
        ]

    # -- telemetry helpers -------------------------------------------------------

    def scrape_cache_metrics(self) -> None:
        """Publish the passive cache tallies as gauges.

        The caches themselves count hits/misses with plain ints (zero
        behavioural coupling); this scrape turns the current totals into
        ``repro_cache_requests{cache,result}`` gauges.  No-op when
        observability is disabled.
        """
        observability = self.observability
        if not observability.enabled:
            return
        metrics = observability.metrics
        metrics.gauge(
            "repro_cache_requests", cache="catalog_side", result="hit"
        ).set(self.catalog.cache_hits)
        metrics.gauge(
            "repro_cache_requests", cache="catalog_side", result="miss"
        ).set(self.catalog.cache_misses)
        hits = misses = 0
        for model in self._models.values():
            hits += getattr(model, "_issue_cache_hits", 0)
            misses += getattr(model, "_issue_cache_misses", 0)
        metrics.gauge(
            "repro_cache_requests", cache="oijn_issue", result="hit"
        ).set(hits)
        metrics.gauge(
            "repro_cache_requests", cache="oijn_issue", result="miss"
        ).set(misses)

    def curve_points(
        self, plan: JoinPlanSpec
    ) -> Optional[
        Tuple[Tuple[float, ...], Tuple[float, ...], Tuple[float, ...]]
    ]:
        """The plan's predicted effort curve (fractions, good, bad).

        Built on first use (the pruned path never warms the engine's
        curve cache, and drift telemetry still wants the chosen plan's
        shape); None when the plan's models cannot be built — drift
        snapshots attach it so a refit records the shape the optimizer
        believed, not just the point estimate.
        """
        try:
            curve = self._engine.curve(plan)
        except ValueError:
            return None
        return (
            tuple(float(x) for x in curve.fractions),
            tuple(float(x) for x in curve.n_good),
            tuple(float(x) for x in curve.n_bad),
        )

    # -- alternate preference model: time-budgeted quality ------------------------

    def optimize_within_time(
        self,
        plans: Sequence[JoinPlanSpec],
        time_budget: float,
        precision_weight: float = 0.5,
        reference_good: Optional[float] = None,
    ) -> OptimizationResult:
        """Maximize ``w·precision + (1-w)·recall`` within a time budget.

        The paper's Section III-C names this cost function as one of the
        higher-level preferences that map onto the (τg, τb) machinery.
        Each plan is pushed to the largest effort whose predicted time fits
        the budget; recall is measured against ``reference_good`` — by
        default the largest predicted good-tuple count any candidate can
        reach at full effort (the reachable ceiling of the plan space).
        """
        if time_budget <= 0:
            raise ValueError("time_budget must be positive")
        if not 0.0 <= precision_weight <= 1.0:
            raise ValueError("precision_weight must be within [0, 1]")
        if reference_good is None:
            reference_good = 0.0
            for plan in plans:
                try:
                    predictor, max_effort = self._cached_predictor(plan)
                except ValueError:
                    continue
                reference_good = max(
                    reference_good, predictor(max_effort).n_good
                )
        reference_good = max(reference_good, 1.0)

        def score(prediction: QualityPrediction) -> float:
            total = prediction.n_good + prediction.n_bad
            if total <= 0:
                # An empty result has vacuous precision; rank it last so a
                # too-small budget never "wins" with zero output.
                return 0.0
            precision = prediction.n_good / total
            recall = min(prediction.n_good / reference_good, 1.0)
            return (
                precision_weight * precision
                + (1.0 - precision_weight) * recall
            )

        evaluations: List[PlanEvaluation] = []
        for plan in plans:
            try:
                predictor, max_effort = self._cached_predictor(plan)
            except ValueError:
                evaluations.append(
                    PlanEvaluation(plan=plan, feasible=False, prediction=None)
                )
                continue
            if predictor(0.0).total_time > time_budget:
                evaluations.append(
                    PlanEvaluation(plan=plan, feasible=False, prediction=None)
                )
                continue
            # Largest effort fraction fitting the budget (predicted time is
            # monotone non-decreasing in effort for every model).
            lo, hi = 0.0, 1.0
            if predictor(max_effort).total_time <= time_budget:
                lo = 1.0
            else:
                for _ in range(self._bisection_steps(max_effort)):
                    mid = (lo + hi) / 2.0
                    if predictor(mid * max_effort).total_time <= time_budget:
                        lo = mid
                    else:
                        hi = mid
            prediction = predictor(lo * max_effort)
            evaluations.append(
                PlanEvaluation(
                    plan=plan,
                    feasible=True,
                    prediction=prediction,
                    effort_fraction=lo,
                )
            )
        feasible = [e for e in evaluations if e.feasible]
        chosen = (
            max(feasible, key=lambda e: score(e.prediction))
            if feasible
            else None
        )
        return OptimizationResult(
            requirement=QualityRequirement(tau_good=0, tau_bad=2**62),
            chosen=chosen,
            evaluations=tuple(evaluations),
        )


# Inputs for the fork workers of ``optimize(workers=...)``.  Set just
# before forking so copy-on-write hands the children the optimizer and
# plan list without pickling (catalogs hold closures); cleared right
# after.  Fork-based pools require this to be module-level state.
_FORK_STATE: Optional[
    Tuple[JoinOptimizer, List[JoinPlanSpec], QualityRequirement]
] = None


def _evaluate_plan_index(
    index: int,
) -> Tuple[int, Tuple[PlanEvaluation, Optional[dict]]]:
    optimizer, plans, requirement = _FORK_STATE
    observability = optimizer.observability
    # Re-base the forked copy-on-write context onto fresh buffers so only
    # this child's telemetry ships back (tid = worker lane in the trace).
    observability.begin_child(tid=index + 1)
    evaluation = optimizer.evaluate(plans[index], requirement)
    return index, (evaluation, observability.export_child_state())
