"""Monte Carlo simulation of join-quality outcomes.

The analytical models give expectations (and, via
:mod:`repro.models.uncertainty`, normal-approximation intervals).  For
questions the normal approximation answers poorly — small τg, skewed
per-value products, "what is the *probability* my contract is met at this
operating point?" — this module samples synthetic outcomes directly from
the same observation model:

* per value and side, the extracted occurrence count is drawn
  ``Binomial(f, rate·coverage)`` (the models' channel);
* the join composition is the per-value product sum (Equation 1);
* repeating ``n_samples`` times yields the empirical distribution of
  (good, bad), from which satisfaction probabilities and quantiles follow.

Sampling is vectorized over values and samples; 10⁴ samples of a
several-hundred-value side take milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.preferences import QualityRequirement
from .parameters import SideStatistics


@dataclass(frozen=True)
class SimulatedOutcomes:
    """Empirical distribution of (good, bad) join-tuple counts."""

    good: np.ndarray
    bad: np.ndarray

    @property
    def n_samples(self) -> int:
        return len(self.good)

    def probability_of_meeting(self, requirement: QualityRequirement) -> float:
        """Empirical P{good ≥ τg and bad ≤ τb}."""
        hits = (self.good >= requirement.tau_good) & (
            self.bad <= requirement.tau_bad
        )
        return float(hits.mean())

    def quantiles(
        self, probabilities=(0.05, 0.5, 0.95)
    ) -> Dict[float, Tuple[float, float]]:
        """{p: (good quantile, bad quantile)}."""
        return {
            p: (
                float(np.quantile(self.good, p)),
                float(np.quantile(self.bad, p)),
            )
            for p in probabilities
        }

    @property
    def mean_good(self) -> float:
        return float(self.good.mean())

    @property
    def mean_bad(self) -> float:
        return float(self.bad.mean())


def _side_arrays(side: SideStatistics, values) -> Tuple[np.ndarray, ...]:
    g = np.array([side.good_frequency.get(v, 0.0) for v in values])
    b_good = np.array(
        [side.bad_in_good_frequency.get(v, 0.0) for v in values]
    )
    b_bad = np.array([side.bad_in_bad(v) for v in values])
    return g, b_good, b_bad


def simulate_idjn(
    side1: SideStatistics,
    side2: SideStatistics,
    rho1: Tuple[float, float],
    rho2: Tuple[float, float],
    n_samples: int = 2000,
    seed: int = 0,
) -> SimulatedOutcomes:
    """Sample IDJN join compositions at given per-side coverages.

    ``rho_i = (rho_good, rho_bad)`` are the document-class coverage
    fractions of side i (from its retrieval model).  Sides and values are
    sampled independently, matching the analytical independence structure.
    """
    for rho in (*rho1, *rho2):
        if not 0.0 <= rho <= 1.0:
            raise ValueError("coverage fractions must be within [0, 1]")
    rng = np.random.default_rng(seed)
    values = sorted(
        (set(side1.good_frequency) | set(side1.bad_frequency))
        & (set(side2.good_frequency) | set(side2.bad_frequency))
    )
    if not values:
        zeros = np.zeros(n_samples)
        return SimulatedOutcomes(good=zeros, bad=zeros.copy())

    def draw(side: SideStatistics, rho: Tuple[float, float]):
        g, b_good, b_bad = _side_arrays(side, values)
        rho_good, rho_bad = rho
        gr = rng.binomial(
            g.astype(int)[None, :].repeat(n_samples, axis=0),
            min(side.tp * rho_good, 1.0),
        )
        br = rng.binomial(
            b_good.astype(int)[None, :].repeat(n_samples, axis=0),
            min(side.fp * rho_good, 1.0),
        ) + rng.binomial(
            b_bad.astype(int)[None, :].repeat(n_samples, axis=0),
            min(side.fp * rho_bad, 1.0),
        )
        return gr, br

    gr1, br1 = draw(side1, rho1)
    gr2, br2 = draw(side2, rho2)
    good = (gr1 * gr2).sum(axis=1)
    total = ((gr1 + br1) * (gr2 + br2)).sum(axis=1)
    return SimulatedOutcomes(
        good=good.astype(float), bad=(total - good).astype(float)
    )
