"""End-to-end tests of the adaptive optimizer (Section VI pipeline)."""

import pytest

from repro.core import QualityRequirement
from repro.optimizer import (
    AdaptiveJoinExecutor,
    PosteriorQuality,
    TuplePosterior,
    enumerate_plans,
)


@pytest.fixture(scope="module")
def adaptive_factory(hq_ex_task):
    plans = enumerate_plans(
        hq_ex_task.extractor1.name, hq_ex_task.extractor2.name
    )

    def build(**kwargs):
        defaults = dict(
            environment=hq_ex_task.environment(),
            characterization1=hq_ex_task.characterization1,
            characterization2=hq_ex_task.characterization2,
            plans=plans,
            pilot_documents=100,
            classifier_profile1=hq_ex_task.offline_classifier_profile1,
            classifier_profile2=hq_ex_task.offline_classifier_profile2,
            query_stats1=hq_ex_task.offline_query_stats1,
            query_stats2=hq_ex_task.offline_query_stats2,
        )
        defaults.update(kwargs)
        return AdaptiveJoinExecutor(**defaults)

    return build


class TestTuplePosterior:
    def test_without_reference_uses_share(self):
        posterior = TuplePosterior(None, good_share=0.7)
        assert posterior(0.2) == pytest.approx(0.7)
        assert posterior(0.9) == pytest.approx(0.7)

    def test_with_reference_high_scores_more_likely_good(self, hq_ex_task):
        reference = hq_ex_task.characterization1.confidences
        posterior = TuplePosterior(reference, good_share=0.6)
        assert posterior(0.9) > posterior(0.45)

    def test_share_clamped(self):
        posterior = TuplePosterior(None, good_share=0.0)
        assert 0.0 < posterior(0.5) < 1.0


class TestPosteriorQuality:
    def test_estimates_track_reality(self, hq_ex_task):
        """Running IDJN with the posterior estimator: the estimate should be
        within a modest factor of the true composition (it sees no labels)."""
        from repro.joins import Budgets, IndependentJoin
        from repro.retrieval import ScanRetriever

        estimator = PosteriorQuality(
            side1=TuplePosterior(
                hq_ex_task.characterization1.confidences, 0.6, theta=0.4
            ),
            side2=TuplePosterior(
                hq_ex_task.characterization2.confidences, 0.6, theta=0.4
            ),
        )
        inputs = hq_ex_task.inputs()
        execution = IndependentJoin(
            inputs,
            ScanRetriever(inputs.database1),
            ScanRetriever(inputs.database2),
            estimator=estimator,
        ).run(budgets=Budgets(max_documents1=250, max_documents2=250))
        est_good, est_bad = estimator.estimate(execution.state)
        actual = execution.report.composition
        assert est_good == pytest.approx(actual.n_good, rel=0.4)
        assert est_good + est_bad == pytest.approx(actual.n_total)


class TestAdaptiveExecutor:
    def test_meets_requirement_without_labels(self, adaptive_factory):
        requirement = QualityRequirement(tau_good=60, tau_bad=10**6)
        result = adaptive_factory().run(requirement)
        assert result.chosen is not None
        assert result.execution is not None
        assert result.execution.report.composition.n_good >= 60

    def test_impossible_requirement_returns_no_plan(self, adaptive_factory):
        result = adaptive_factory(cross_validate=False).run(
            QualityRequirement(tau_good=10**8, tau_bad=10**8)
        )
        assert result.chosen is None
        assert result.execution is None
        assert result.pilot is not None

    def test_rounds_bounded(self, adaptive_factory):
        result = adaptive_factory(max_rounds=2).run(
            QualityRequirement(tau_good=40, tau_bad=10**6)
        )
        assert 1 <= result.rounds <= 2

    def test_no_cross_validation_single_round(self, adaptive_factory):
        result = adaptive_factory(cross_validate=False).run(
            QualityRequirement(tau_good=40, tau_bad=10**6)
        )
        assert result.rounds == 1

    def test_total_time_includes_pilot(self, adaptive_factory):
        result = adaptive_factory(cross_validate=False).run(
            QualityRequirement(tau_good=40, tau_bad=10**6)
        )
        assert result.total_time > result.execution.report.time.total

    def test_estimates_exposed(self, adaptive_factory):
        result = adaptive_factory(cross_validate=False).run(
            QualityRequirement(tau_good=40, tau_bad=10**6)
        )
        estimate1, estimate2 = result.estimates
        assert estimate1.parameters.n_good_values > 0
        assert estimate2.parameters.n_good_values > 0

    def test_pilot_documents_validated(self, adaptive_factory):
        with pytest.raises(ValueError):
            adaptive_factory(pilot_documents=0)

    def test_reoptimization_points_validated(self, adaptive_factory):
        with pytest.raises(ValueError):
            adaptive_factory(reoptimization_points=(0.0,))
        with pytest.raises(ValueError):
            adaptive_factory(reoptimization_points=(1.2,))

    def test_midflight_reoptimization_still_meets(self, adaptive_factory):
        result = adaptive_factory(
            cross_validate=False,
            feasibility_margin=0.3,
            reoptimization_points=(0.4, 0.7),
        ).run(QualityRequirement(tau_good=80, tau_bad=10**6))
        assert result.execution is not None
        assert result.execution.report.composition.n_good >= 80
        assert result.plan_switches >= 0  # switching is possible, not forced

    def test_switch_carries_tuples_forward(self, hq_ex_task):
        """When a mid-flight switch happens, prior base tuples survive."""
        from repro.optimizer.adaptive import AdaptiveJoinExecutor

        # Force a switch by restricting the plan space after the first
        # milestone would prefer a different family: run with a tiny
        # milestone so the second optimization sees fresh statistics.
        plans = enumerate_plans(
            hq_ex_task.extractor1.name,
            hq_ex_task.extractor2.name,
            thetas1=(0.4,),
            thetas2=(0.4,),
        )
        executor = AdaptiveJoinExecutor(
            environment=hq_ex_task.environment(),
            characterization1=hq_ex_task.characterization1,
            characterization2=hq_ex_task.characterization2,
            plans=plans,
            pilot_documents=60,
            classifier_profile1=hq_ex_task.offline_classifier_profile1,
            classifier_profile2=hq_ex_task.offline_classifier_profile2,
            query_stats1=hq_ex_task.offline_query_stats1,
            query_stats2=hq_ex_task.offline_query_stats2,
            cross_validate=False,
            feasibility_margin=0.3,
            reoptimization_points=(0.25, 0.5, 0.75),
        )
        result = executor.run(QualityRequirement(tau_good=120, tau_bad=10**6))
        assert result.execution is not None
        # Whether or not a switch occurred, the accumulated result set is
        # consistent and the contract's good bound is met.
        assert result.execution.report.composition.n_good >= 120
