"""Independent Join (IDJN) — Figure 3.

Extracts the two relations independently — each through its own document
retrieval strategy (Scan, Filtered Scan, or AQG) — and joins everything
extracted so far after every step, traversing the Cartesian product
D1 × D2 ripple-style (Figure 4).  The default is the paper's "square"
traversal (one document from each side per round); passing unequal
``rates`` gives the generalized "rectangle" version that consumes the two
databases at different speeds.

Executors are resumable: each ``run()`` call continues the same session
(retriever cursors, accumulated relations, time) under that call's
requirement and budgets.  Budgets are absolute totals for the session.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.preferences import QualityRequirement
from ..core.quality import TimeBreakdown
from ..observability.tracer import SpanKind
from ..retrieval.base import DocumentRetriever
from .base import (
    UNLIMITED,
    Budgets,
    JoinAlgorithm,
    JoinExecution,
    JoinInputs,
    QualityEstimator,
)
from .costs import CostModel


class IndependentJoin(JoinAlgorithm):
    """IDJN executor over two pre-built retrievers (resumable)."""

    algorithm = "idjn"

    def __init__(
        self,
        inputs: JoinInputs,
        retriever1: DocumentRetriever,
        retriever2: DocumentRetriever,
        costs: Optional[CostModel] = None,
        estimator: Optional[QualityEstimator] = None,
        rates: Tuple[int, int] = (1, 1),
        resilience=None,
        observability=None,
    ) -> None:
        super().__init__(inputs, costs, estimator, resilience, observability)
        if retriever1.database is not inputs.database1:
            raise ValueError("retriever1 must read from database1")
        if retriever2.database is not inputs.database2:
            raise ValueError("retriever2 must read from database2")
        if rates[0] <= 0 or rates[1] <= 0:
            raise ValueError("rates must be positive")
        self._retrievers = {1: retriever1, 2: retriever2}
        self._rates = {1: rates[0], 2: rates[1]}

    def retriever(self, side: int) -> DocumentRetriever:
        """This side's document retriever (checkpointing)."""
        return self._retrievers[side]

    def run(
        self,
        requirement: QualityRequirement = UNLIMITED,
        budgets: Budgets = Budgets(),
    ) -> JoinExecution:
        session = self.session
        state = session.state
        collector = session.collector
        time = session.time
        processed = session.processed
        filtered: Dict[int, int] = {1: 0, 2: 0}

        def side_open(side: int) -> bool:
            cap = budgets.max_documents(side)
            if cap is not None and processed[side] >= cap:
                return False
            retriever = self._retrievers[side]
            rcap = budgets.max_retrieved(side)
            if rcap is not None and retriever.counters.retrieved >= rcap:
                return False
            qcap = budgets.max_queries(side)
            if qcap is not None and retriever.counters.queries_issued >= qcap:
                return False
            return not retriever.exhausted

        observability = self.observability
        rounds = 0
        while True:
            est_good, est_bad = self.estimator.estimate(state)
            if self._should_stop(requirement, est_good, est_bad):
                break
            if not side_open(1) and not side_open(2):
                break
            rounds += 1
            with observability.span(
                SpanKind.JOIN_ROUND,
                f"idjn.round.{rounds}",
                algorithm=self.algorithm,
                round=rounds,
            ):
                for side in (1, 2):
                    for _ in range(self._rates[side]):
                        if not side_open(side):
                            break
                        self._step(side, state, collector, time, processed)
            self._report_progress(state, time)
            # Re-check quality between rounds happens at loop top.

        for side in (1, 2):
            if self._retrievers[side].filters_documents:
                filtered[side] = self._retrievers[side].counters.retrieved
        exhausted = (
            self._retrievers[1].exhausted and self._retrievers[2].exhausted
        )
        return self._finish(
            state=state,
            time=time,
            requirement=requirement,
            collector=collector,
            documents_retrieved={
                side: self._retrievers[side].counters.retrieved for side in (1, 2)
            },
            documents_processed=dict(processed),
            documents_filtered=dict(filtered),
            queries_issued={
                side: self._retrievers[side].counters.queries_issued
                for side in (1, 2)
            },
            exhausted=exhausted,
        )

    def _step(
        self,
        side: int,
        state,
        collector,
        time: TimeBreakdown,
        processed: Dict[int, int],
    ) -> None:
        """Retrieve and process one document on one side."""
        observability = self.observability
        retriever = self._retrievers[side]
        before = retriever.counters.snapshot()
        with observability.span(
            SpanKind.DOCUMENT_RETRIEVAL,
            f"retrieve.side{side}",
            side=side,
            strategy=type(retriever).__name__,
        ) as span:
            doc = retriever.next_document()
            delta_retrieved = retriever.counters.retrieved - before.retrieved
            delta_queries = (
                retriever.counters.queries_issued - before.queries_issued
            )
            span.set(retrieved=delta_retrieved, queries=delta_queries)
        costs = self.costs.side(side)
        filtered = delta_retrieved if retriever.filters_documents else 0
        time.add(
            costs.charge(
                retrieved=delta_retrieved,
                queries=delta_queries,
                filtered=filtered,
            )
        )
        if doc is None:
            return
        with observability.span(
            SpanKind.EXTRACTION,
            f"extract.side{side}",
            side=side,
            document=doc.doc_id,
        ) as span:
            tuples = self.inputs.extractor(side).extract(doc)
            span.set(tuples=len(tuples))
        time.add(costs.charge(processed=1))
        processed[side] += 1
        self._observe_document(side, len(tuples))
        collector.record(side, tuples)
        if side == 1:
            state.add_left(tuples)
        else:
            state.add_right(tuples)
