"""Parameter containers the analytical models consume.

A model needs, per join side (Table I):

* database composition |D|, |Dg|, |Db| (|De| follows);
* per-value good/bad document frequencies g(a), b(a) — with b(a) split by
  the class of document carrying the bad occurrence, since Filtered Scan
  passes good and bad documents at different rates;
* the extractor's operating point tp(θ), fp(θ);
* retrieval-strategy parameters — classifier profile for FS, per-query
  statistics for AQG, the search interface's top-k for query-driven plans.

:class:`SideStatistics` can be built from ground truth (a
:class:`~repro.textdb.stats.DatabaseProfile`, for the "perfect knowledge"
model-accuracy experiments) or synthesized from MLE estimates
(:mod:`repro.estimation`), giving the models one uniform interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..retrieval.classifier import ClassifierProfile
from ..retrieval.queries import QueryStats
from ..textdb.stats import DatabaseProfile, FrequencyHistogram


@dataclass(frozen=True)
class SideStatistics:
    """Everything the models need to know about one join side."""

    relation: str
    n_documents: int
    n_good_docs: int
    n_bad_docs: int
    #: g(a): value -> number of good documents carrying a good occurrence
    good_frequency: Mapping[str, float]
    #: b(a): value -> number of documents (any class) carrying a bad occurrence
    bad_frequency: Mapping[str, float]
    #: portion of b(a) carried by *good* documents
    bad_in_good_frequency: Mapping[str, float]
    #: extractor operating point at the plan's θ
    tp: float
    fp: float
    #: search-interface result limit of this side's database
    top_k: int = 100
    #: histogram of extractable occurrences per non-empty document (the
    #: zig-zag graph's "attributes generated per document" distribution);
    #: None falls back to a degenerate average in the ZGJN model
    values_per_document: Optional[Mapping[int, int]] = None

    def __post_init__(self) -> None:
        if self.n_good_docs + self.n_bad_docs > self.n_documents:
            raise ValueError("document class sizes exceed the database size")
        if not 0.0 <= self.fp <= 1.0 or not 0.0 <= self.tp <= 1.0:
            raise ValueError("tp/fp must be within [0, 1]")

    @property
    def n_empty_docs(self) -> int:
        return self.n_documents - self.n_good_docs - self.n_bad_docs

    def bad_in_bad(self, value: str) -> float:
        """Portion of b(a) carried by bad documents."""
        return self.bad_frequency.get(value, 0.0) - self.bad_in_good_frequency.get(
            value, 0.0
        )

    @property
    def good_values(self) -> frozenset:
        return frozenset(self.good_frequency)

    @property
    def bad_values(self) -> frozenset:
        return frozenset(self.bad_frequency)

    @property
    def total_good_occurrences(self) -> float:
        return float(sum(self.good_frequency.values()))

    @property
    def total_bad_occurrences(self) -> float:
        return float(sum(self.bad_frequency.values()))

    @classmethod
    def from_profile(
        cls,
        profile: DatabaseProfile,
        tp: float,
        fp: float,
        top_k: int = 100,
    ) -> "SideStatistics":
        """Ground-truth statistics at a given extractor operating point."""
        return cls(
            relation=profile.relation,
            n_documents=profile.n_documents,
            n_good_docs=profile.n_good_docs,
            n_bad_docs=profile.n_bad_docs,
            good_frequency=dict(profile.good_frequency),
            bad_frequency=dict(profile.bad_frequency),
            bad_in_good_frequency=dict(profile.bad_in_good_frequency),
            tp=tp,
            fp=fp,
            top_k=top_k,
            values_per_document=dict(profile.mentions_per_document),
        )

    @classmethod
    def from_histograms(
        cls,
        relation: str,
        n_documents: int,
        n_good_docs: int,
        n_bad_docs: int,
        good_histogram: FrequencyHistogram,
        bad_histogram: FrequencyHistogram,
        tp: float,
        fp: float,
        top_k: int = 100,
        bad_in_good_share: float = 0.5,
        value_prefix: str = "v",
    ) -> "SideStatistics":
        """Synthesize per-value tables from frequency histograms.

        Estimation works at histogram level (how many values occur k
        times); the models work per value.  This constructor materializes
        one synthetic value per histogram slot, preserving the histogram
        exactly, so estimated and ground-truth statistics flow through
        identical model code.  ``bad_in_good_share`` apportions each bad
        value's occurrences to good documents (estimators cannot observe
        the split, so a global share is assumed).
        """
        good: Dict[str, float] = {}
        bad: Dict[str, float] = {}
        bad_in_good: Dict[str, float] = {}
        i = 0
        for k in sorted(good_histogram.counts):
            for _ in range(good_histogram.counts[k]):
                good[f"{value_prefix}g{i}"] = float(k)
                i += 1
        i = 0
        for k in sorted(bad_histogram.counts):
            for _ in range(bad_histogram.counts[k]):
                name = f"{value_prefix}b{i}"
                bad[name] = float(k)
                bad_in_good[name] = float(k) * bad_in_good_share
                i += 1
        return cls(
            relation=relation,
            n_documents=n_documents,
            n_good_docs=n_good_docs,
            n_bad_docs=n_bad_docs,
            good_frequency=good,
            bad_frequency=bad,
            bad_in_good_frequency=bad_in_good,
            tp=tp,
            fp=fp,
            top_k=top_k,
        )


@dataclass(frozen=True)
class ValueOverlapModel:
    """How join-attribute values of the two sides overlap.

    In per-value mode overlap is implicit (shared value strings).  In
    histogram mode — and for estimated statistics, whose synthetic value
    names never collide — the models instead need the *counts* |Agg|,
    |Agb|, |Abg|, |Abb| (Section V-A) plus the convention for pairing
    frequencies; :meth:`overlap_fraction` exposes the normalized share of
    each side's values that participate in each class.
    """

    n_gg: float
    n_gb: float
    n_bg: float
    n_bb: float

    @classmethod
    def from_side_values(
        cls, side1: SideStatistics, side2: SideStatistics
    ) -> "ValueOverlapModel":
        ag1, ab1 = side1.good_values, side1.bad_values
        ag2, ab2 = side2.good_values, side2.bad_values
        return cls(
            n_gg=len(ag1 & ag2),
            n_gb=len(ag1 & ab2),
            n_bg=len(ab1 & ag2),
            n_bb=len(ab1 & ab2),
        )


@dataclass(frozen=True)
class JoinStatistics:
    """Bundle of both sides plus retrieval-strategy parameters."""

    side1: SideStatistics
    side2: SideStatistics
    classifier1: Optional[ClassifierProfile] = None
    classifier2: Optional[ClassifierProfile] = None
    queries1: Tuple[QueryStats, ...] = ()
    queries2: Tuple[QueryStats, ...] = ()

    def side(self, index: int) -> SideStatistics:
        if index == 1:
            return self.side1
        if index == 2:
            return self.side2
        raise ValueError("side index must be 1 or 2")

    def classifier(self, index: int) -> Optional[ClassifierProfile]:
        return self.classifier1 if index == 1 else self.classifier2

    def queries(self, index: int) -> Tuple[QueryStats, ...]:
        return self.queries1 if index == 1 else self.queries2
