"""Scan (SC): sequential retrieval of every database document.

Guaranteed to eventually process all good documents — maximal reachable
recall — but also processes every bad and empty document, paying their
retrieval/extraction time and admitting every extractable bad tuple
(Section III-B).

Under a resilience context, a document whose fetch fails permanently is
*skipped* (counted as lost, never as retrieved) so a flaky store degrades
recall instead of aborting the scan; an open circuit propagates as
:class:`~repro.robustness.context.AccessPathUnavailable` without advancing
the cursor, so a later resume retries the same document.
"""

from __future__ import annotations

from typing import List, Optional

from ..robustness.context import AccessFailedError, ResilienceContext
from ..textdb.database import TextDatabase
from ..textdb.document import Document
from .base import DocumentRetriever


class ScanRetriever(DocumentRetriever):
    """Sequential cursor over the database's scan order."""

    def __init__(
        self,
        database: TextDatabase,
        resilience: Optional[ResilienceContext] = None,
        observability=None,
    ) -> None:
        super().__init__(database, resilience, observability)
        self._order: List[int] = database.scan_order()
        self._position = 0

    @property
    def exhausted(self) -> bool:
        return self._position >= len(self._order)

    @property
    def position(self) -> int:
        """How many documents have been retrieved so far."""
        return self._position

    def restore_position(self, position: int) -> None:
        """Move the cursor (checkpoint restore)."""
        if not 0 <= position <= len(self._order):
            raise ValueError(f"scan position {position} out of range")
        self._position = position

    def next_document(self) -> Optional[Document]:
        while self._position < len(self._order):
            doc_id = self._order[self._position]
            try:
                doc = self._access("fetch", lambda: self.database.get(doc_id))
            except AccessFailedError:
                # Unreachable document: skip it without counting it as
                # retrieved — a failed access must never masquerade as a
                # successful (or empty) one.
                self._position += 1
                if self.resilience is not None:
                    self.resilience.documents_lost += 1
                continue
            self._position += 1
            self.counters.retrieved += 1
            return doc
        return None
