"""Pinned regressions for the latent bugs the validation harness exposed.

Each test fails on the pre-fix code.  The bugs were found by the
deterministic JSON-surface fuzzer and the runtime invariant layer
(`repro.validation`); see DESIGN.md §6.5 for the full inventory.
"""

import json

import pytest

from repro.estimation.mle import EstimatedParameters
from repro.robustness.breaker import CircuitBreaker
from repro.robustness.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    CheckpointManager,
    restore_execution,
)
from repro.robustness.faults import SWALLOWED_EXCEPTIONS, FaultProfile
from repro.joins import Budgets, IndependentJoin, JoinInputs
from repro.retrieval import ScanRetriever
from repro.service import (
    JoinRequest,
    StatisticsStore,
    StoreError,
    WarmStartPolicy,
    corpus_fingerprint,
)
from repro.service.service import _side_statistics
from repro.service.store import _parameters_from_dict


def _parameters_dict(**overrides):
    data = {
        "relation": "HQ",
        "n_good_values": 120.0,
        "n_bad_values": 30.0,
        "beta_good": 1.1,
        "beta_bad": 0.9,
        "n_good_docs": 200.0,
        "n_bad_docs": 50.0,
        "k_max_good": 12,
        "k_max_bad": 6,
        "log_likelihood": -512.5,
        "good_occurrence_share": 0.7,
    }
    data.update(overrides)
    return {k: v for k, v in data.items() if v is not ...}


def _store_file(sides=None, tasks=None):
    return {
        "version": 1,
        "sides": sides if sides is not None else {},
        "tasks": tasks if tasks is not None else {},
    }


def _side_record(**overrides):
    record = {
        "fingerprint": "ab" * 16,
        "database": "nyt96",
        "extractor": "HQ",
        "theta": 0.4,
        "documents_processed": 90,
        "distinct_values": 40,
        "created_at": 100.0,
        "parameters": _parameters_dict(),
    }
    record.update(overrides)
    return record


def _task_record(**overrides):
    record = {
        "fingerprints": ["ab" * 16, "cd" * 16],
        "pilot_snapshot": {"version": 1, "algorithm": "X"},
        "pilot_documents": 90,
        "rounds": 2,
        "created_at": 100.0,
    }
    record.update(overrides)
    return record


class TestRequestPayloadOverflow:
    """json.loads accepts ``Infinity``; int(inf) raised OverflowError
    straight through the HTTP surface before the fix."""

    def test_infinite_tau_is_a_value_error(self):
        payload = json.loads('{"tau_good": Infinity, "tau_bad": 5}')
        with pytest.raises(ValueError, match="integer tau_good"):
            JoinRequest.from_payload(payload)

    def test_nan_tau_is_a_value_error(self):
        payload = json.loads('{"tau_good": NaN, "tau_bad": 5}')
        with pytest.raises(ValueError):
            JoinRequest.from_payload(payload)


class TestCheckpointRestoreErrors:
    """Malformed snapshots raised raw KeyError/TypeError before the fix;
    the contract is CheckpointError, nothing else."""

    def _executor(self, mini_db1, mini_db2, mini_extractor1, mini_extractor2):
        inputs = JoinInputs(
            database1=mini_db1,
            database2=mini_db2,
            extractor1=mini_extractor1,
            extractor2=mini_extractor2,
        )
        return IndependentJoin(
            inputs, ScanRetriever(mini_db1), ScanRetriever(mini_db2)
        )

    @pytest.mark.parametrize(
        "snapshot",
        [
            "junk",
            [],
            {"version": -1},
            {"version": CHECKPOINT_VERSION},  # everything else missing
            {
                "version": CHECKPOINT_VERSION,
                "algorithm": "IndependentJoin",
                "processed": "junk",
            },
            {
                "version": CHECKPOINT_VERSION,
                "algorithm": "IndependentJoin",
                "processed": {"1": 0, "2": 0},
                "time": None,
            },
            {
                "version": CHECKPOINT_VERSION,
                "algorithm": "IndependentJoin",
                "processed": {"1": 0, "2": 0},
                "time": {
                    "retrieval": 0.0,
                    "extraction": 0.0,
                    "filtering": 0.0,
                    "querying": 0.0,
                },
                "left": [{"relation": "HQ"}],  # tuple fields missing
            },
        ],
    )
    def test_malformed_snapshot_raises_checkpoint_error(
        self, snapshot, mini_db1, mini_db2, mini_extractor1, mini_extractor2
    ):
        executor = self._executor(
            mini_db1, mini_db2, mini_extractor1, mini_extractor2
        )
        with pytest.raises(CheckpointError):
            restore_execution(executor, snapshot)


class TestStoredParameterValidation:
    """`_parameters_from_dict` trusted the stored dict wholesale before
    the fix — missing keys became TypeError, Infinity round-tripped into
    the models."""

    def test_valid_dict_converts(self):
        parameters = _parameters_from_dict(_parameters_dict())
        assert isinstance(parameters, EstimatedParameters)
        assert parameters.k_max_good == 12

    def test_unknown_field_rejected(self):
        with pytest.raises(StoreError, match="unknown"):
            _parameters_from_dict(_parameters_dict(surprise=1.0))

    def test_missing_field_rejected(self):
        with pytest.raises(StoreError, match="missing"):
            _parameters_from_dict(_parameters_dict(beta_good=...))

    def test_non_finite_value_rejected(self):
        with pytest.raises(StoreError, match="finite"):
            _parameters_from_dict(_parameters_dict(n_good_docs=float("inf")))

    def test_bool_value_rejected(self):
        with pytest.raises(StoreError):
            _parameters_from_dict(_parameters_dict(n_good_values=True))

    def test_non_numeric_value_rejected(self):
        with pytest.raises(StoreError):
            _parameters_from_dict(_parameters_dict(beta_bad="junk"))

    def test_non_string_relation_rejected(self):
        with pytest.raises(StoreError, match="relation"):
            _parameters_from_dict(_parameters_dict(relation=7))

    def test_fractional_k_max_rejected_integral_coerced(self):
        with pytest.raises(StoreError):
            _parameters_from_dict(_parameters_dict(k_max_good=2.5))
        parameters = _parameters_from_dict(_parameters_dict(k_max_good=2.0))
        assert parameters.k_max_good == 2


class TestStoreLoadCoherence:
    """Schema-valid but incoherent records (wrong key, malformed
    fingerprint, bool-as-int) survived load before the fix."""

    def _load(self, tmp_path, payload):
        store = StatisticsStore(str(tmp_path))
        store.path.write_text(json.dumps(payload))
        store.load()
        return store

    def test_valid_records_survive(self, tmp_path):
        store = self._load(
            tmp_path,
            _store_file(
                sides={"nyt96/HQ@0.4": _side_record()},
                tasks={"sig": _task_record()},
            ),
        )
        assert set(store.sides) == {"nyt96/HQ@0.4"}
        assert set(store.tasks) == {"sig"}

    def test_bool_as_int_task_field_dropped(self, tmp_path):
        store = self._load(
            tmp_path, _store_file(tasks={"sig": _task_record(rounds=True)})
        )
        assert store.tasks == {}

    def test_key_field_mismatch_dropped(self, tmp_path):
        record = _side_record(theta=float("inf"))
        store = self._load(
            tmp_path, _store_file(sides={"nyt96/HQ@0.4": record})
        )
        assert store.sides == {}

    def test_wrong_database_key_dropped(self, tmp_path):
        record = _side_record(database="other")
        store = self._load(
            tmp_path, _store_file(sides={"nyt96/HQ@0.4": record})
        )
        assert store.sides == {}

    def test_malformed_fingerprint_dropped(self, tmp_path):
        store = self._load(
            tmp_path,
            _store_file(sides={"nyt96/HQ@0.4": _side_record(fingerprint="junk")}),
        )
        assert store.sides == {}

    def test_malformed_task_fingerprints_dropped(self, tmp_path):
        store = self._load(
            tmp_path,
            _store_file(tasks={"sig": _task_record(fingerprints=["ab" * 16, 3])}),
        )
        assert store.tasks == {}

    def test_non_finite_parameters_dropped(self, tmp_path):
        record = _side_record(
            parameters=_parameters_dict(log_likelihood=float("-inf"))
        )
        store = self._load(
            tmp_path, _store_file(sides={"nyt96/HQ@0.4": record})
        )
        assert store.sides == {}


class TestSideStatisticsFloors:
    """Stored document-class counts beyond the database size (or below
    zero) crashed SideStatistics construction before the fix."""

    def _parameters(self, n_good_docs, n_bad_docs):
        return EstimatedParameters(
            relation="HQ",
            n_good_values=50.0,
            n_bad_values=10.0,
            beta_good=1.0,
            beta_bad=1.0,
            n_good_docs=n_good_docs,
            n_bad_docs=n_bad_docs,
            k_max_good=5,
            k_max_bad=5,
            log_likelihood=-1.0,
        )

    def test_oversized_counts_clamped(self, mini_db1, mini_char1):
        side = _side_statistics(
            mini_db1, mini_char1, self._parameters(1e9, 1e9), theta=0.4
        )
        assert side.n_good_docs == len(mini_db1)
        assert side.n_bad_docs == 0
        assert side.n_good_docs + side.n_bad_docs <= side.n_documents

    def test_negative_counts_floored(self, mini_db1, mini_char1):
        side = _side_statistics(
            mini_db1, mini_char1, self._parameters(-5.0, -3.0), theta=0.4
        )
        assert side.n_good_docs == 0
        assert side.n_bad_docs == 0


class TestClockInjection:
    """Stores, warm-start gates, and checkpoint pruning take an injected
    clock; no inline time.time() decides retention."""

    def test_record_side_uses_injected_clock(self, tmp_path, mini_db1):
        import types

        store = StatisticsStore(str(tmp_path), clock=lambda: 12345.0)
        parameters = _parameters_from_dict(_parameters_dict())
        key = store.record_side(
            mini_db1,
            "HQ",
            0.4,
            types.SimpleNamespace(parameters=parameters),
            documents_processed=80,
            distinct_values=30,
        )
        assert store.sides[key]["created_at"] == 12345.0

    def test_warm_start_freshness_follows_clock(
        self, tmp_path, mini_db1, mini_db2
    ):
        now = [1000.0]
        store = StatisticsStore(str(tmp_path), clock=lambda: now[0])
        store.tasks["sig"] = _task_record(
            fingerprints=[
                corpus_fingerprint(mini_db1),
                corpus_fingerprint(mini_db2),
            ],
            pilot_documents=100,
            created_at=1000.0,
        )
        policy = WarmStartPolicy(min_documents=50, max_age=100.0)
        databases = (mini_db1, mini_db2)
        assert store.warm_start_for("sig", databases, policy) is not None
        now[0] = 1000.0 + 500.0
        assert store.warm_start_for("sig", databases, policy) is None

    def test_checkpoint_prune_follows_clock(self, tmp_path):
        import os

        now = [0.0]
        manager = CheckpointManager(
            str(tmp_path), max_age=10.0, clock=lambda: now[0]
        )
        victim = tmp_path / f"run{CheckpointManager.SUFFIX}"
        victim.write_text("{}")
        now[0] = os.stat(victim).st_mtime + 5.0
        assert manager.prune() == []
        now[0] = os.stat(victim).st_mtime + 100.0
        assert manager.prune() == [str(victim)]


class TestSwallowedEventObservability:
    """Silently-ignored events are counted, not dropped."""

    def test_breaker_counts_ignored_successes(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.is_open
        breaker.record_success()
        assert breaker.is_open  # a stray success must not close it
        assert breaker.ignored_successes == 1

    def test_open_breaker_success_emits_metric(self):
        from repro.observability import ObservabilityContext
        from repro.robustness.context import ResilienceContext

        context = ResilienceContext(failure_threshold=1)
        context.observability = ObservabilityContext()
        breaker = context.breaker("db:search")

        def succeed_after_trip():
            breaker.record_failure()  # trips OPEN mid-flight
            return 42

        assert context.call("db:search", succeed_after_trip) == 42
        assert breaker.ignored_successes == 1
        rendered = context.observability.metrics.render()
        assert "repro_swallowed_events_total" in rendered
        assert "breaker_open_success" in rendered

    def test_fault_profile_parse_counts_fallthrough(self):
        key = "fault_profile_not_bare_rate"
        before = SWALLOWED_EXCEPTIONS[key]
        profile = FaultProfile.parse("transient=0.1")
        assert profile.transient == 0.1
        assert SWALLOWED_EXCEPTIONS[key] == before + 1
        FaultProfile.parse("0.25")  # bare rate: no exception swallowed
        assert SWALLOWED_EXCEPTIONS[key] == before + 1

    def test_service_metrics_expose_swallowed_exceptions(
        self, hq_ex_task, tmp_path
    ):
        from repro.service import JoinService

        FaultProfile.parse("transient=0.05")  # ensure a non-zero counter
        service = JoinService(hq_ex_task, str(tmp_path), workers=1)
        try:
            rendered = service.render_metrics()
        finally:
            service.close()
        assert "repro_swallowed_exceptions" in rendered
        assert "fault_profile_not_bare_rate" in rendered
