"""Joint key profiles for multiway composition.

:func:`repro.textdb.stats.profile_database` keys every frequency on a
single attribute, which is all a binary join needs.  A chain-interior
relation participates in joins on *two* (or more) attributes at once,
so the planner's composition model needs document frequencies of the
joint key — the tuple of join-attribute values.  :func:`profile_keys`
computes exactly the profile_database statistics, but keyed on a value
tuple, with the same per-document deduplication semantics.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Mapping, Sequence, Tuple

from ..core.types import DocumentClass
from ..textdb.database import TextDatabase

Key = Tuple[str, ...]


@dataclass(frozen=True)
class KeyProfile:
    """Ground-truth joint-key statistics of one (database, relation) pair.

    The three mappings mirror :class:`DatabaseProfile` exactly, keyed on
    the tuple of values at ``attribute_indexes`` instead of one value:

    * ``good_frequency[key]`` — good documents with a good occurrence;
    * ``bad_frequency[key]`` — any documents with a bad occurrence;
    * ``bad_in_good_frequency[key]`` — good documents with a bad occurrence.
    """

    relation: str
    attribute_indexes: Tuple[int, ...]
    good_frequency: Mapping[Key, int]
    bad_frequency: Mapping[Key, int]
    bad_in_good_frequency: Mapping[Key, int]

    def bad_in_bad(self, key: Key) -> int:
        return self.bad_frequency.get(key, 0) - self.bad_in_good_frequency.get(key, 0)


def profile_keys(
    database: TextDatabase,
    relation: str,
    attribute_indexes: Sequence[int],
) -> KeyProfile:
    """Joint-key analogue of :func:`profile_database`."""
    indexes = tuple(attribute_indexes)
    if not indexes:
        raise ValueError("profile_keys needs at least one attribute index")
    good_frequency: Counter = Counter()
    bad_frequency: Counter = Counter()
    bad_in_good: Counter = Counter()
    for doc in database.documents:
        mentions = doc.mentions_of(relation)
        if not mentions:
            continue
        doc_class = doc.classify(relation)
        seen_good: set = set()
        seen_bad: set = set()
        for mention in mentions:
            key = tuple(mention.fact.value_of(i) for i in indexes)
            if mention.fact.is_true:
                if key not in seen_good:
                    good_frequency[key] += 1
                    seen_good.add(key)
            else:
                if key not in seen_bad:
                    bad_frequency[key] += 1
                    if doc_class is DocumentClass.GOOD:
                        bad_in_good[key] += 1
                    seen_bad.add(key)
    return KeyProfile(
        relation=relation,
        attribute_indexes=indexes,
        good_frequency=dict(good_frequency),
        bad_frequency=dict(bad_frequency),
        bad_in_good_frequency=dict(bad_in_good),
    )


def scale_key_profile(profile: KeyProfile, factor: float) -> KeyProfile:
    """A copy with every frequency multiplied by *factor*.

    Used by the adaptive driver to extrapolate pilot observations to the
    full corpus (frequencies stay floats; the composition model never
    requires integers).
    """
    if factor < 0:
        raise ValueError("scale factor must be non-negative")
    return KeyProfile(
        relation=profile.relation,
        attribute_indexes=profile.attribute_indexes,
        good_frequency={k: v * factor for k, v in profile.good_frequency.items()},
        bad_frequency={k: v * factor for k, v in profile.bad_frequency.items()},
        bad_in_good_frequency={
            k: v * factor for k, v in profile.bad_in_good_frequency.items()
        },
    )
