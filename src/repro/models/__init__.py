"""Analytical output-quality and execution-time models (Section V).

One model class per join algorithm (IDJN, OIJN, ZGJN), built on shared
pieces: per-strategy retrieval models, the Section V-B composition scheme,
probability helpers, and the generating-function machinery used by the
zig-zag analysis.
"""

from .distributions import (
    binomial_pmf,
    expected_distinct_sampled,
    hypergeom_pmf,
    probability_none_extracted,
    thinned_hypergeom_mean,
    thinned_hypergeom_pmf,
)
from .generating import GeneratingFunction
from .idjn_model import IDJNModel
from .oijn_model import InnerReach, OIJNModel, best_outer
from .parameters import JoinStatistics, SideStatistics, ValueOverlapModel
from .predictions import QualityPrediction, charge_events
from .retrieval_models import (
    AQGModel,
    ClassMix,
    EffortEvents,
    FilteredScanModel,
    RetrievalModel,
    ScanModel,
    build_retrieval_model,
)
from .scheme import (
    CompositionEstimate,
    SideFactors,
    compose_aggregate,
    compose_per_value,
    occurrence_factors,
)
from .simulate import SimulatedOutcomes, simulate_idjn
from .uncertainty import (
    IntervalEstimate,
    SideVariances,
    compose_with_variance,
    occurrence_variances,
)
from .zgjn_model import ZGJNModel, ZGJNReach

__all__ = [
    "AQGModel",
    "ClassMix",
    "CompositionEstimate",
    "EffortEvents",
    "FilteredScanModel",
    "GeneratingFunction",
    "IDJNModel",
    "IntervalEstimate",
    "InnerReach",
    "JoinStatistics",
    "OIJNModel",
    "QualityPrediction",
    "RetrievalModel",
    "ScanModel",
    "SideFactors",
    "SideStatistics",
    "SideVariances",
    "SimulatedOutcomes",
    "ValueOverlapModel",
    "ZGJNModel",
    "ZGJNReach",
    "best_outer",
    "binomial_pmf",
    "build_retrieval_model",
    "charge_events",
    "compose_aggregate",
    "compose_per_value",
    "compose_with_variance",
    "expected_distinct_sampled",
    "hypergeom_pmf",
    "occurrence_factors",
    "occurrence_variances",
    "probability_none_extracted",
    "simulate_idjn",
    "thinned_hypergeom_mean",
    "thinned_hypergeom_pmf",
]
