"""Persistent statistics: what a finished run learned, kept for the next one.

Every one-shot invocation of the adaptive optimizer pays for a pilot that
re-derives the same database statistics the previous invocation already
estimated.  The :class:`StatisticsStore` is the service's memory: a
versioned JSON file holding

* **side records** — per (database, extractor, θ) MLE estimates
  (:class:`~repro.estimation.mle.EstimatedParameters` fields) plus the
  sample counts behind them, so freshness is a measurable quantity and
  ``/v1/stats`` can show what the service believes about each corpus;
* **task records** — per join-task signature: the final pilot executor's
  checkpoint (the exact observations a warm start resumes from), the
  estimated overlap-class sizes |Agg|/|Agb|/|Abg|/|Abb|, the convergence
  round count, the chosen plan, and the run's drift snapshots.

Both record kinds carry **corpus fingerprints**.  A fingerprint digests
the database's identity, scan permutation seed, and every document's id
and token count — if a corpus is regenerated, rescaled, or reseeded, its
fingerprint changes and every stored record keyed to the old fingerprint
is rejected (and dropped on the next save) instead of silently steering
the optimizer with statistics of a corpus that no longer exists.

Writes are atomic (temp file + ``os.replace``) and every load is schema-
checked; a corrupt or future-versioned file degrades to an empty store
rather than crashing the service.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import os
import pathlib
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..estimation.mle import EstimatedParameters
from ..estimation.online import SideEstimate
from ..models.parameters import ValueOverlapModel
from ..optimizer.adaptive import AdaptiveResult, PilotWarmStart
from ..textdb.database import TextDatabase
from ..validation.invariants import active_checker

STORE_VERSION = 1

#: required keys (and their types) of each record kind; load-time schema
#: checking drops records that do not conform instead of crashing later
_SIDE_SCHEMA: Dict[str, type] = {
    "fingerprint": str,
    "database": str,
    "extractor": str,
    "theta": float,
    "documents_processed": int,
    "distinct_values": int,
    "created_at": float,
    "parameters": dict,
}
_TASK_SCHEMA: Dict[str, type] = {
    "fingerprints": list,
    "pilot_snapshot": dict,
    "pilot_documents": int,
    "rounds": int,
    "created_at": float,
}
#: persisted plan effort-curve probes: per task signature, the probe
#: triples every plan's optimizer descent computed, valid only at the
#: exact statistics generation they were computed under
_CURVE_SCHEMA: Dict[str, type] = {
    "fingerprints": list,
    "generation": int,
    "created_at": float,
    "plans": dict,
}


class StoreError(RuntimeError):
    """A store payload failed validation."""


def corpus_fingerprint(database: TextDatabase) -> str:
    """A stable digest of a corpus's identity and contents.

    Covers the database name, search-interface cap, scan/rank seed, and
    each document's (id, token count) pair — cheap to compute, yet any
    regeneration that changes the document set, their sizes, or the scan
    order produces a different digest.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(
        f"{database.name}|{len(database)}|{database.max_results}|"
        f"{database.rank_seed}".encode()
    )
    for document in database.documents:
        n_tokens = sum(len(sentence) for sentence in document.sentences)
        digest.update(f"|{document.doc_id}:{n_tokens}".encode())
    return digest.hexdigest()


def task_signature(
    database1: TextDatabase,
    extractor1: str,
    database2: TextDatabase,
    extractor2: str,
    pilot_theta: float,
) -> str:
    """The store key of one join task shape."""
    return (
        f"{database1.name}/{extractor1}|{database2.name}/{extractor2}"
        f"|pilot@{pilot_theta:g}"
    )


@dataclass(frozen=True)
class WarmStartPolicy:
    """When stored statistics are trustworthy enough to skip pilot work.

    ``min_documents`` is the per-side pilot sample size below which the
    stored estimates are considered too noisy to reuse (the store tracks
    sample counts precisely so this is a hard gate, not a heuristic);
    ``max_age`` optionally expires records by wall-clock seconds.
    """

    min_documents: int = 50
    max_age: Optional[float] = None

    def fresh(self, record: Dict[str, Any], now: Optional[float] = None) -> bool:
        if record["pilot_documents"] < self.min_documents:
            return False
        if self.max_age is not None:
            now = time.time() if now is None else now
            if now - record["created_at"] > self.max_age:
                return False
        return True


def _parameters_to_dict(parameters: EstimatedParameters) -> Dict[str, Any]:
    return dataclasses.asdict(parameters)


def _parameters_from_dict(data: Dict[str, Any]) -> EstimatedParameters:
    fields = {f.name for f in dataclasses.fields(EstimatedParameters)}
    unknown = set(data) - fields
    if unknown:
        raise StoreError(f"unknown parameter fields {sorted(unknown)}")
    required = fields - {"good_occurrence_share"}
    missing = required - set(data)
    if missing:
        raise StoreError(f"missing parameter fields {sorted(missing)}")
    if not isinstance(data["relation"], str):
        raise StoreError("parameter field 'relation' must be a string")
    for name in set(data) - {"relation"}:
        value = data[name]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise StoreError(f"parameter field {name!r} must be numeric")
        # json.loads happily parses Infinity/NaN; round() on either raises
        # deep inside SideStatistics construction instead of here.
        if not math.isfinite(value):
            raise StoreError(f"parameter field {name!r} must be finite")
    for name in ("k_max_good", "k_max_bad"):
        if data[name] != int(data[name]):
            raise StoreError(f"parameter field {name!r} must be an integer")
        data = {**data, name: int(data[name])}
    return EstimatedParameters(**data)


def _valid_parameters(data: Dict[str, Any]) -> bool:
    """Whether a stored parameters dict converts cleanly (load-time gate)."""
    try:
        _parameters_from_dict(data)
    except StoreError:
        return False
    return True


def _well_formed_fingerprint(value: Any) -> bool:
    """A corpus fingerprint is a 32-hex-char blake2b digest."""
    return (
        isinstance(value, str)
        and len(value) == 32
        and all(c in "0123456789abcdef" for c in value)
    )


def _coherent_side(key: str, record: Dict[str, Any]) -> bool:
    """The record's own fields must reproduce the key it is stored under.

    A hand-edited or corrupted file can hold a schema-valid record under
    the wrong key; serving it would answer a (database, extractor, θ)
    lookup with another operating point's statistics.
    """
    expected = StatisticsStore.side_key(
        record["database"], record["extractor"], record["theta"]
    )
    return key == expected and _well_formed_fingerprint(record["fingerprint"])


def _coherent_task(record: Dict[str, Any]) -> bool:
    return all(_well_formed_fingerprint(f) for f in record["fingerprints"])


def _check_schema(record: Dict[str, Any], schema: Dict[str, type]) -> bool:
    for key, kind in schema.items():
        if key not in record:
            return False
        value = record[key]
        # JSON has no separate bool/int distinction problem, but Python's
        # bool subclasses int — reject it for both numeric kinds so a
        # fuzzed `"rounds": true` cannot masquerade as a count.
        if kind is float:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                return False
        elif kind is int:
            if not isinstance(value, int) or isinstance(value, bool):
                return False
        elif not isinstance(value, kind):
            return False
    return True


class StatisticsStore:
    """Versioned JSON-on-disk statistics with atomic writes.

    One store file serves many concurrent requests; mutation goes through
    :meth:`save`, which rewrites the whole file atomically.  The in-memory
    dicts are the source of truth between saves — the
    :class:`~repro.service.service.JoinService` serializes access with its
    own lock, and standalone users get last-writer-wins semantics, never a
    torn file.
    """

    FILENAME = "statistics.json"

    def __init__(
        self, root: str, clock: Callable[[], float] = time.time
    ) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / self.FILENAME
        #: time source for record timestamps and freshness gates; injected
        #: so retention/warm-start behaviour is deterministic under test
        self.clock = clock
        #: monotone generation counter, bumped on every mutation; the plan
        #: cache keys optimizer reuse on it so statistics updates invalidate
        self.generation = 0
        self._saved_generation = 0
        self.sides: Dict[str, Dict[str, Any]] = {}
        self.tasks: Dict[str, Dict[str, Any]] = {}
        #: task signature -> persisted plan curve probes (advisory cache:
        #: recording or dropping them never bumps the generation)
        self.curves: Dict[str, Dict[str, Any]] = {}
        self.load()

    # -- persistence ----------------------------------------------------------

    def load(self) -> None:
        """Read the store file; invalid content degrades to empty."""
        self.sides = {}
        self.tasks = {}
        self.curves = {}
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return
        if not isinstance(payload, dict) or payload.get("version") != STORE_VERSION:
            return
        sides = payload.get("sides", {})
        tasks = payload.get("tasks", {})
        curves = payload.get("curves", {})
        if isinstance(sides, dict):
            self.sides = {
                key: record
                for key, record in sides.items()
                if isinstance(record, dict)
                and _check_schema(record, _SIDE_SCHEMA)
                and _valid_parameters(record["parameters"])
                and _coherent_side(key, record)
            }
        if isinstance(tasks, dict):
            self.tasks = {
                key: record
                for key, record in tasks.items()
                if isinstance(record, dict)
                and _check_schema(record, _TASK_SCHEMA)
                and _coherent_task(record)
            }
        if isinstance(curves, dict):
            self.curves = {
                key: record
                for key, record in curves.items()
                if isinstance(record, dict)
                and _check_schema(record, _CURVE_SCHEMA)
                and _coherent_task(record)
            }
        self._check_coherence("store.load")

    def save(self) -> str:
        """Atomically rewrite the store file; return its path."""
        self._check_coherence("store.save")
        payload = {
            "version": STORE_VERSION,
            "sides": self.sides,
            "tasks": self.tasks,
            "curves": self.curves,
        }
        tmp = self.path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, self.path)
        self._saved_generation = self.generation
        return str(self.path)

    def _check_coherence(self, where: str) -> None:
        """Selfcheck hook: stored records stay schema- and key-coherent."""
        checker = active_checker()
        if not checker.enabled:
            return
        checker.check(
            self.generation >= self._saved_generation,
            where,
            f"generation counter moved backwards ({self.generation} < "
            f"{self._saved_generation})",
        )
        for key, record in self.sides.items():
            checker.check(
                _check_schema(record, _SIDE_SCHEMA),
                where,
                f"side record {key!r} violates the side schema",
            )
            expected = self.side_key(
                record.get("database", ""),
                record.get("extractor", ""),
                record.get("theta", 0.0),
            )
            checker.check(
                key == expected,
                where,
                f"side record stored under {key!r} but its fields say "
                f"{expected!r}",
            )
            fingerprint = record.get("fingerprint", "")
            checker.check(
                isinstance(fingerprint, str) and len(fingerprint) == 32,
                where,
                f"side record {key!r} carries a malformed fingerprint",
            )
        for key, record in self.tasks.items():
            checker.check(
                _check_schema(record, _TASK_SCHEMA),
                where,
                f"task record {key!r} violates the task schema",
            )
            checker.check(
                all(
                    isinstance(f, str) and len(f) == 32
                    for f in record.get("fingerprints", [])
                ),
                where,
                f"task record {key!r} carries a malformed fingerprint",
            )
        for key, record in self.curves.items():
            checker.check(
                _check_schema(record, _CURVE_SCHEMA),
                where,
                f"curve record {key!r} violates the curve schema",
            )
            checker.check(
                all(
                    isinstance(f, str) and len(f) == 32
                    for f in record.get("fingerprints", [])
                ),
                where,
                f"curve record {key!r} carries a malformed fingerprint",
            )

    # -- side records ---------------------------------------------------------

    @staticmethod
    def side_key(database: str, extractor: str, theta: float) -> str:
        return f"{database}/{extractor}@{theta:g}"

    def record_side(
        self,
        database: TextDatabase,
        extractor: str,
        theta: float,
        estimate: SideEstimate,
        documents_processed: int,
        distinct_values: int,
        now: Optional[float] = None,
    ) -> str:
        """Store one side's MLE estimate; returns the record key."""
        key = self.side_key(database.name, extractor, theta)
        self.sides[key] = {
            "fingerprint": corpus_fingerprint(database),
            "database": database.name,
            "extractor": extractor,
            "theta": float(theta),
            "documents_processed": int(documents_processed),
            "distinct_values": int(distinct_values),
            "created_at": self.clock() if now is None else now,
            "parameters": _parameters_to_dict(estimate.parameters),
        }
        self.generation += 1
        return key

    def side_record(
        self, database: TextDatabase, extractor: str, theta: float
    ) -> Optional[Dict[str, Any]]:
        """The stored record for this side, or None if absent/stale.

        A fingerprint mismatch deletes the record: statistics of a corpus
        that no longer exists must never be served again.
        """
        key = self.side_key(database.name, extractor, theta)
        record = self.sides.get(key)
        if record is None:
            return None
        if record["fingerprint"] != corpus_fingerprint(database):
            del self.sides[key]
            self.generation += 1
            return None
        return record

    def side_parameters(
        self, database: TextDatabase, extractor: str, theta: float
    ) -> Optional[EstimatedParameters]:
        record = self.side_record(database, extractor, theta)
        if record is None:
            return None
        return _parameters_from_dict(record["parameters"])

    # -- task records ---------------------------------------------------------

    def record_task(
        self,
        signature: str,
        databases: Tuple[TextDatabase, TextDatabase],
        result: AdaptiveResult,
        overlap: Optional[ValueOverlapModel] = None,
        drift_snapshots: Tuple[Dict[str, Any], ...] = (),
        now: Optional[float] = None,
    ) -> str:
        """Store everything a finished adaptive run learned about a task.

        Requires the run to have been made with ``snapshot_pilot=True`` —
        the pilot checkpoint *is* the warm-start payload.
        """
        if result.pilot_snapshot is None:
            raise StoreError(
                "adaptive result carries no pilot snapshot; construct the "
                "driver with snapshot_pilot=True"
            )
        record: Dict[str, Any] = {
            "fingerprints": [corpus_fingerprint(db) for db in databases],
            "pilot_snapshot": result.pilot_snapshot,
            "pilot_documents": int(result.pilot_size),
            "rounds": int(result.rounds),
            "created_at": self.clock() if now is None else now,
            "chosen_plan": (
                result.chosen.plan.describe() if result.chosen is not None else None
            ),
            "drift_snapshots": list(drift_snapshots),
        }
        if overlap is not None:
            record["overlap"] = {
                "n_gg": overlap.n_gg,
                "n_gb": overlap.n_gb,
                "n_bg": overlap.n_bg,
                "n_bb": overlap.n_bb,
            }
        self.tasks[signature] = record
        self.generation += 1
        return signature

    def task_record(
        self,
        signature: str,
        databases: Tuple[TextDatabase, TextDatabase],
    ) -> Optional[Dict[str, Any]]:
        """The stored task record, or None if absent or fingerprint-stale."""
        record = self.tasks.get(signature)
        if record is None:
            return None
        current = [corpus_fingerprint(db) for db in databases]
        if record["fingerprints"] != current:
            del self.tasks[signature]
            self.generation += 1
            return None
        return record

    def warm_start_for(
        self,
        signature: str,
        databases: Tuple[TextDatabase, TextDatabase],
        policy: Optional[WarmStartPolicy] = None,
        now: Optional[float] = None,
    ) -> Optional[PilotWarmStart]:
        """A driver-ready warm start, or None when nothing fresh is stored."""
        record = self.task_record(signature, databases)
        if record is None:
            return None
        policy = policy if policy is not None else WarmStartPolicy()
        if not policy.fresh(record, now=self.clock() if now is None else now):
            return None
        return PilotWarmStart(
            snapshot=record["pilot_snapshot"],
            documents=record["pilot_documents"],
            rounds=record["rounds"],
        )

    # -- curve records (persisted plan effort probes) --------------------------

    def record_curves(
        self,
        signature: str,
        databases: Tuple[TextDatabase, TextDatabase],
        generation: int,
        plans: Dict[str, Any],
        now: Optional[float] = None,
    ) -> str:
        """Persist the optimizer's computed probe triples for a task.

        ``plans`` is :meth:`JoinOptimizer.export_probes` output.  The
        record is keyed to the *exact* statistics generation it was
        computed under — curve shapes are functions of the stored
        statistics, so any later mutation makes them unusable.  Recording
        curves deliberately does **not** bump the generation: it is a
        derived cache, and bumping would invalidate the very plan-cache
        entries it exists to warm.
        """
        self.curves[signature] = {
            "fingerprints": [corpus_fingerprint(db) for db in databases],
            "generation": int(generation),
            "created_at": self.clock() if now is None else now,
            "plans": plans,
        }
        return signature

    def curves_for(
        self,
        signature: str,
        databases: Tuple[TextDatabase, TextDatabase],
        generation: int,
    ) -> Optional[Dict[str, Any]]:
        """Stored probe triples for (signature, generation), or None.

        A record written under a different generation or a corpus whose
        fingerprint has changed is deleted rather than served: a stale
        probe answered as current would silently corrupt the byte-identity
        guarantee of the pruned optimizer.
        """
        record = self.curves.get(signature)
        if record is None:
            return None
        current = [corpus_fingerprint(db) for db in databases]
        if (
            record["fingerprints"] != current
            or record["generation"] != int(generation)
        ):
            del self.curves[signature]
            return None
        return record

    def record_run(
        self,
        signature: str,
        databases: Tuple[TextDatabase, TextDatabase],
        extractors: Tuple[str, str],
        pilot_theta: float,
        result: AdaptiveResult,
        drift_snapshots: Tuple[Dict[str, Any], ...] = (),
    ) -> None:
        """Persist every statistic a finished adaptive run produced.

        One call records both side estimates (at the pilot θ, the operating
        point they were measured at), the overlap classes, and the task's
        warm-start payload, then saves the file.
        """
        from ..estimation.online import estimate_overlap

        estimate1, estimate2 = result.estimates
        observations = result.pilot.observations
        for side, database, extractor, estimate in (
            (1, databases[0], extractors[0], estimate1),
            (2, databases[1], extractors[1], estimate2),
        ):
            side_obs = observations.side(side)
            self.record_side(
                database,
                extractor,
                pilot_theta,
                estimate,
                documents_processed=side_obs.documents_processed,
                distinct_values=side_obs.distinct_values,
            )
        overlap = estimate_overlap(
            estimate1, estimate2, observations.side(1), observations.side(2)
        )
        self.record_task(
            signature,
            databases,
            result,
            overlap=overlap,
            drift_snapshots=drift_snapshots,
        )
        self.save()

    # -- reporting ------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """A JSON-ready view for ``/v1/stats``."""
        return {
            "path": str(self.path),
            "generation": self.generation,
            "sides": {
                key: {
                    k: record[k]
                    for k in (
                        "database",
                        "extractor",
                        "theta",
                        "documents_processed",
                        "distinct_values",
                        "created_at",
                        "fingerprint",
                    )
                }
                for key, record in sorted(self.sides.items())
            },
            "tasks": {
                key: {
                    "pilot_documents": record["pilot_documents"],
                    "rounds": record["rounds"],
                    "created_at": record["created_at"],
                    "chosen_plan": record.get("chosen_plan"),
                    "overlap": record.get("overlap"),
                    "drift_snapshots": len(record.get("drift_snapshots", [])),
                }
                for key, record in sorted(self.tasks.items())
            },
            "curves": {
                key: {
                    "generation": record["generation"],
                    "created_at": record["created_at"],
                    "plans": len(record["plans"]),
                    "probes": sum(
                        len(entry.get("probes", ()))
                        for entry in record["plans"].values()
                        if isinstance(entry, dict)
                    ),
                }
                for key, record in sorted(self.curves.items())
            },
        }


__all__ = [
    "STORE_VERSION",
    "StatisticsStore",
    "StoreError",
    "WarmStartPolicy",
    "corpus_fingerprint",
    "task_signature",
]
