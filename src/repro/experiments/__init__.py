"""Experiment harness: the Section VII testbed and figure/table runners."""

from .calibration import CalibrationRow, format_calibration, run_calibration
from .figures import (
    AccuracyRow,
    DocumentsRow,
    run_figure9,
    run_figure10,
    run_figure11,
    run_figure12,
    task_statistics,
)
from .report import generate_report, write_report
from .reporting import (
    format_accuracy_rows,
    format_documents_rows,
    format_table,
    format_table2_rows,
)
from .sweeps import FrontierPoint, format_frontier, quality_frontier
from .table2 import (
    TABLE2_REQUIREMENTS,
    PlanTrajectory,
    Table2Row,
    build_trajectories,
    record_trajectory,
    run_table2,
)
from .testbed import (
    CHARACTERIZATION_THETAS,
    MULTIWAY_SCENARIOS,
    JoinTask,
    MultiwayConfig,
    MultiwayScenario,
    MultiwayTestbed,
    Testbed,
    TestbedConfig,
    build_multiway_testbed,
    build_testbed,
)

__all__ = [
    "AccuracyRow",
    "CHARACTERIZATION_THETAS",
    "CalibrationRow",
    "DocumentsRow",
    "FrontierPoint",
    "JoinTask",
    "MULTIWAY_SCENARIOS",
    "MultiwayConfig",
    "MultiwayScenario",
    "MultiwayTestbed",
    "PlanTrajectory",
    "TABLE2_REQUIREMENTS",
    "Table2Row",
    "Testbed",
    "TestbedConfig",
    "build_multiway_testbed",
    "build_testbed",
    "build_trajectories",
    "format_accuracy_rows",
    "format_documents_rows",
    "format_calibration",
    "format_frontier",
    "format_table",
    "format_table2_rows",
    "generate_report",
    "quality_frontier",
    "record_trajectory",
    "run_calibration",
    "run_figure9",
    "run_figure10",
    "run_figure11",
    "run_figure12",
    "run_table2",
    "task_statistics",
    "write_report",
]
