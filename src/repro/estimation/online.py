"""On-the-fly estimation during join execution (Section VI).

Bridges the raw execution observations to the model-facing parameter
containers: each side's :class:`~repro.estimation.mle.EstimatedParameters`
become synthetic :class:`~repro.models.parameters.SideStatistics`, and the
join-specific overlap-class sizes |Agg|, |Agb|, |Abg|, |Abb| are derived
"numerically from the estimated parameter values for each individual
relation" (the paper's phrasing) — here, by scaling the *observed* value
overlap up through each class's observation probability, using the
per-value good/bad posteriors from the confidence split.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np
from scipy import stats

from ..extraction.characterization import ConfidenceReference
from ..joins.stats_collector import RelationObservations
from ..models.parameters import SideStatistics, ValueOverlapModel
from .mle import (
    EstimatedParameters,
    ObservationContext,
    estimate_parameters,
)
from .powerlaw import PowerLawModel


def class_seen_probability(law: PowerLawModel, p_obs: float) -> float:
    """Pr{a class value has been observed at least once}.

    The value's true frequency follows *law*; each occurrence is observed
    independently with probability *p_obs* (the scan-sampling channel).
    """
    g = law.support()
    prior = law.pmf()
    p_zero = float(prior @ stats.binom.pmf(0, g, p_obs))
    return max(1.0 - p_zero, 1e-12)


@dataclass
class SideEstimate:
    """One side's estimation output, ready for model consumption."""

    parameters: EstimatedParameters
    statistics: SideStatistics
    context: ObservationContext
    posterior: Mapping[str, float]

    @property
    def p_seen_good(self) -> float:
        return class_seen_probability(
            self.parameters.good_power_law(), self.context.p_obs_good
        )

    @property
    def p_seen_bad(self) -> float:
        return class_seen_probability(
            self.parameters.bad_power_law(), self.context.p_obs_bad
        )


def estimate_side(
    observations: RelationObservations,
    context: ObservationContext,
    reference: Optional[ConfidenceReference] = None,
    top_k: int = 100,
    bad_in_good_share: float = 0.5,
) -> SideEstimate:
    """Estimate one side and package it as synthetic SideStatistics."""
    parameters = estimate_parameters(observations, context, reference=reference)
    # Clamp the document classes consistently: the bad-class cap must use
    # the *clamped* good count, or an overshooting estimate (e.g. from a
    # persisted record) yields a negative |Db| and SideStatistics rejects it.
    n_good_docs = max(
        0, int(min(round(parameters.n_good_docs), context.database_size))
    )
    n_bad_docs = max(
        0,
        int(
            min(
                round(parameters.n_bad_docs),
                context.database_size - n_good_docs,
            )
        ),
    )
    statistics = SideStatistics.from_histograms(
        relation=observations.relation,
        n_documents=context.database_size,
        n_good_docs=n_good_docs,
        n_bad_docs=n_bad_docs,
        good_histogram=parameters.good_histogram(),
        bad_histogram=parameters.bad_histogram(),
        tp=context.tp,
        fp=context.fp,
        top_k=top_k,
        bad_in_good_share=bad_in_good_share,
        value_prefix=f"{observations.relation}:",
    )
    posterior = _posteriors(observations, parameters, reference, context)
    return SideEstimate(
        parameters=parameters,
        statistics=statistics,
        context=context,
        posterior=posterior,
    )


def _posteriors(
    observations: RelationObservations,
    parameters: EstimatedParameters,
    reference: Optional[ConfidenceReference],
    context: ObservationContext,
) -> Dict[str, float]:
    """Per-observed-value good posteriors (fallback: fitted share)."""
    share = parameters.good_occurrence_share
    if reference is None or not observations.value_confidences:
        return {v: share for v in observations.sample_frequency}
    log_pg = np.log(np.clip(reference.good_at(context.theta), 1e-12, None))
    log_pb = np.log(np.clip(reference.bad_at(context.theta), 1e-12, None))
    log_share = math.log(max(share, 1e-9))
    log_rest = math.log(max(1.0 - share, 1e-9))
    posterior: Dict[str, float] = {}
    for value, confidences in observations.value_confidences.items():
        indices = [reference.bin_of(c) for c in confidences]
        lg = log_share + float(np.sum(log_pg[indices]))
        lb = log_rest + float(np.sum(log_pb[indices]))
        m = max(lg, lb)
        posterior[value] = math.exp(lg - m) / (
            math.exp(lg - m) + math.exp(lb - m)
        )
    return posterior


def estimate_overlap(
    estimate1: SideEstimate,
    estimate2: SideEstimate,
    observations1: RelationObservations,
    observations2: RelationObservations,
) -> ValueOverlapModel:
    """Estimate |Agg|, |Agb|, |Abg|, |Abb| from the observed overlap.

    Each value observed on *both* sides contributes its posterior class
    mass (π₁π₂ to gg, π₁(1−π₂) to gb, ...), and each class total is scaled
    up by the probability that a value of that class pair is observed on
    both sides.  Results are capped by the estimated class populations.
    """
    shared = sorted(
        set(observations1.sample_frequency)
        & set(observations2.sample_frequency)
    )
    gg = gb = bg = bb = 0.0
    for value in shared:
        p1 = estimate1.posterior.get(value, 0.5)
        p2 = estimate2.posterior.get(value, 0.5)
        gg += p1 * p2
        gb += p1 * (1.0 - p2)
        bg += (1.0 - p1) * p2
        bb += (1.0 - p1) * (1.0 - p2)
    sg1, sb1 = estimate1.p_seen_good, estimate1.p_seen_bad
    sg2, sb2 = estimate2.p_seen_good, estimate2.p_seen_bad
    par1, par2 = estimate1.parameters, estimate2.parameters
    return ValueOverlapModel(
        n_gg=min(gg / (sg1 * sg2), par1.n_good_values, par2.n_good_values),
        n_gb=min(gb / (sg1 * sb2), par1.n_good_values, par2.n_bad_values),
        n_bg=min(bg / (sb1 * sg2), par1.n_bad_values, par2.n_good_values),
        n_bb=min(bb / (sb1 * sb2), par1.n_bad_values, par2.n_bad_values),
    )
