"""Join serving subsystem: statistics persistence, plan caching, serving.

The experiments run the adaptive optimizer as a one-shot batch job; this
package turns it into a long-lived *service*:

* :mod:`~repro.service.store` — the persistent
  :class:`StatisticsStore`: versioned, atomically-written JSON capturing
  what every finished run learned (per-side MLE estimates, overlap-class
  sizes, the final pilot checkpoint, drift snapshots), keyed by corpus
  fingerprint so statistics of a changed corpus are never reused;
* :mod:`~repro.service.plancache` — the :class:`PlanCache` that reuses
  optimizers (memoized model predictors and
  :class:`~repro.optimizer.engine.PlanEvaluationEngine` effort curves)
  and optimization results across requests, invalidated when statistics
  change or an access path degrades;
* :mod:`~repro.service.service` — the :class:`JoinService` front end: a
  bounded-queue worker pool with admission control, per-request
  resilience and observability contexts, warm-started adaptive runs,
  and graceful drain;
* :mod:`~repro.service.http` — a stdlib ``ThreadingHTTPServer`` JSON API
  (``/v1/join``, ``/v1/stats``, ``/v1/healthz``, ``/v1/metrics``)
  exposed as ``repro serve`` / ``repro submit``.
"""

from .plancache import PlanCache
from .service import (
    JoinRequest,
    JoinService,
    ServiceBusyError,
    ServiceClosedError,
)
from .store import (
    StatisticsStore,
    StoreError,
    WarmStartPolicy,
    corpus_fingerprint,
    task_signature,
)

__all__ = [
    "JoinRequest",
    "JoinService",
    "PlanCache",
    "ServiceBusyError",
    "ServiceClosedError",
    "StatisticsStore",
    "StoreError",
    "WarmStartPolicy",
    "corpus_fingerprint",
    "task_signature",
]
