"""Tests for the per-strategy retrieval models against empirical behaviour."""

import pytest

from repro.core import DocumentClass, RetrievalKind
from repro.models import (
    AQGModel,
    FilteredScanModel,
    ScanModel,
    SideStatistics,
    build_retrieval_model,
)
from repro.retrieval import (
    AQGRetriever,
    FilteredScanRetriever,
    RuleClassifier,
    learn_queries,
    measure_learned_queries,
)


@pytest.fixture(scope="module")
def side(mini_profile1, mini_char1, mini_db1):
    return SideStatistics.from_profile(
        mini_profile1,
        tp=mini_char1.tp_at(0.4),
        fp=mini_char1.fp_at(0.4),
        top_k=mini_db1.max_results,
    )


class TestScanModel:
    def test_class_mix_proportional(self, side):
        model = ScanModel(side)
        mix = model.class_mix(side.n_documents // 2)
        assert mix.good == pytest.approx(side.n_good_docs / 2)
        assert mix.bad == pytest.approx(side.n_bad_docs / 2)
        assert mix.empty == pytest.approx(side.n_empty_docs / 2)

    def test_effort_clipped_at_database_size(self, side):
        model = ScanModel(side)
        assert model.class_mix(10**9).good == pytest.approx(side.n_good_docs)

    def test_events(self, side):
        events = ScanModel(side).events(100)
        assert events.retrieved == 100
        assert events.processed == 100
        assert events.filtered == 0
        assert events.queries == 0

    def test_coverage_fractions(self, side):
        model = ScanModel(side)
        assert model.good_fraction_processed(side.n_documents) == pytest.approx(1.0)
        assert model.good_fraction_processed(0) == 0.0


class TestFilteredScanModel:
    def test_classifier_thins_classes(self, side, mini_train, mini_db1):
        classifier = RuleClassifier.train(mini_train, "HQ")
        profile = classifier.measure(mini_db1)
        model = FilteredScanModel(side, profile)
        mix = model.class_mix(side.n_documents)
        assert mix.good == pytest.approx(side.n_good_docs * profile.c_tp)
        assert mix.bad == pytest.approx(side.n_bad_docs * profile.c_fp)

    def test_predicts_empirical_processing(self, side, mini_train, mini_db1):
        classifier = RuleClassifier.train(mini_train, "HQ")
        profile = classifier.measure(mini_db1)
        model = FilteredScanModel(side, profile)
        retriever = FilteredScanRetriever(mini_db1, classifier)
        actual = sum(1 for _ in retriever)
        predicted = model.events(side.n_documents).processed
        assert predicted == pytest.approx(actual, rel=0.02)

    def test_filter_events_charge_all_retrieved(self, side, mini_train, mini_db1):
        classifier = RuleClassifier.train(mini_train, "HQ")
        model = FilteredScanModel(side, classifier.measure(mini_db1))
        events = model.events(200)
        assert events.filtered == 200
        assert events.processed < 200


class TestAQGModel:
    @pytest.fixture(scope="class")
    def queries(self, mini_train, mini_db1):
        learned = learn_queries(mini_train, "HQ", max_queries=10)
        return learned, measure_learned_queries(learned, mini_db1, "HQ")

    def test_good_reach_close_to_empirical(self, side, queries, mini_db1):
        learned, stats = queries
        model = AQGModel(side, stats)
        predicted = model.class_mix(len(stats)).good
        docs = list(AQGRetriever(mini_db1, learned))
        actual = sum(
            1 for d in docs if d.classify("HQ") is DocumentClass.GOOD
        )
        assert predicted == pytest.approx(actual, rel=0.35)

    def test_total_retrieved_close_to_empirical(self, side, queries, mini_db1):
        learned, stats = queries
        model = AQGModel(side, stats)
        predicted = model.events(len(stats)).retrieved
        actual = sum(1 for _ in AQGRetriever(mini_db1, learned))
        assert predicted == pytest.approx(actual, rel=0.35)

    def test_monotone_in_queries(self, side, queries):
        _, stats = queries
        model = AQGModel(side, stats)
        reach = [model.class_mix(q).good for q in range(len(stats) + 1)]
        assert all(a <= b + 1e-9 for a, b in zip(reach, reach[1:]))

    def test_fractional_effort_interpolates(self, side, queries):
        _, stats = queries
        model = AQGModel(side, stats)
        assert (
            model.class_mix(1).good
            <= model.class_mix(1.5).good
            <= model.class_mix(2).good
        )

    def test_reach_never_exceeds_class(self, side, queries):
        _, stats = queries
        model = AQGModel(side, stats)
        assert model.class_mix(10**6).good <= side.n_good_docs + 1e-9

    def test_needs_queries(self, side):
        with pytest.raises(ValueError):
            AQGModel(side, [])


class TestFactory:
    def test_builds_each_kind(self, side, mini_train, mini_db1):
        classifier = RuleClassifier.train(mini_train, "HQ").measure(mini_db1)
        learned = learn_queries(mini_train, "HQ", max_queries=4)
        stats = measure_learned_queries(learned, mini_db1, "HQ")
        assert isinstance(
            build_retrieval_model(RetrievalKind.SCAN, side), ScanModel
        )
        assert isinstance(
            build_retrieval_model(
                RetrievalKind.FILTERED_SCAN, side, classifier=classifier
            ),
            FilteredScanModel,
        )
        assert isinstance(
            build_retrieval_model(RetrievalKind.AQG, side, queries=stats),
            AQGModel,
        )

    def test_missing_parameters_raise(self, side):
        with pytest.raises(ValueError):
            build_retrieval_model(RetrievalKind.FILTERED_SCAN, side)
        with pytest.raises(ValueError):
            build_retrieval_model(RetrievalKind.AQG, side)
        with pytest.raises(ValueError):
            build_retrieval_model(RetrievalKind.JOIN_DRIVEN, side)
