"""Exactness and persistence tests for the bound-based pruning layer.

The pruning contract (DESIGN §6.7) is absolute: pruning may only change
*how much work* the optimizer does, never *what it answers*.  These tests
pin that contract on the seeded testbed grid — the pruned optimizer must
choose the identical plan at the identical operating point as the
unpruned reference, every fully-evaluated plan must match byte-for-byte,
and every pruned-away plan must be provably irrelevant in the reference
(infeasible, or strictly slower than the chosen plan).  The underlying
bound kernels carry their own dominance property tests, and the persisted
curve cache must round-trip through the statistics store without
perturbing a single float.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.core import QualityRequirement
from repro.experiments import quality_frontier
from repro.models.distributions import (
    issue_probability_ceiling,
    none_extracted_lower_bound,
    probability_none_extracted,
)
from repro.optimizer import JoinOptimizer, enumerate_plans
from repro.optimizer.bounds import BOUND_SLACK, PlanBounds
from repro.service.shards import (
    ShardedStatisticsStore,
    decode_journal_record,
    encode_journal_record,
)
from repro.service.store import StatisticsStore

#: the seeded validation grid: dense enough to exercise tier-A prunes,
#: τb-infeasible prunes, and dominance prunes at the session scale
GRID = [
    QualityRequirement(tau_good=good, tau_bad=bad)
    for good in (2, 10, 26, 50, 90, 140)
    for bad in (100, 100000)
]


def _fork_available() -> bool:
    try:
        multiprocessing.get_context("fork")
    except ValueError:
        return False
    return True


@pytest.fixture(scope="module")
def plan_space(hq_ex_task):
    return enumerate_plans(
        hq_ex_task.extractor1.name, hq_ex_task.extractor2.name
    )


def _optimizer(task, **kwargs) -> JoinOptimizer:
    return JoinOptimizer(task.catalog(), costs=task.costs, **kwargs)


@pytest.fixture(scope="module")
def reference(hq_ex_task, plan_space):
    """Unpruned grid results from the default (engine) path."""
    optimizer = _optimizer(hq_ex_task)
    return [
        optimizer.optimize(plan_space, requirement, prune=False)
        for requirement in GRID
    ]


def assert_equivalent(pruned_results, reference_results) -> None:
    """The full exactness contract, per requirement."""
    assert len(pruned_results) == len(reference_results)
    for fast, slow in zip(pruned_results, reference_results):
        if slow.chosen is None:
            assert fast.chosen is None, fast.requirement
            chosen_time = None
        else:
            assert fast.chosen is not None, fast.requirement
            assert fast.chosen.plan == slow.chosen.plan
            assert fast.chosen.effort_fraction == slow.chosen.effort_fraction
            assert (
                fast.chosen.prediction.n_good == slow.chosen.prediction.n_good
            )
            chosen_time = slow.chosen.predicted_time
        for a, b in zip(fast.evaluations, slow.evaluations):
            assert a.plan == b.plan
            if a.pruned:
                # Exactness: a pruned plan must be irrelevant — the
                # reference shows it infeasible or strictly slower.
                assert (not b.feasible) or (
                    chosen_time is not None
                    and b.predicted_time > chosen_time
                ), a.plan
                continue
            assert a.feasible == b.feasible, a.plan
            if not a.feasible:
                continue
            assert a.effort_fraction == b.effort_fraction, a.plan
            assert a.prediction.n_good == b.prediction.n_good, a.plan
            assert a.prediction.n_bad == b.prediction.n_bad, a.plan
            assert a.prediction.total_time == b.prediction.total_time, a.plan


# ---------------------------------------------------------------------------
# exactness on the seeded grid
# ---------------------------------------------------------------------------


class TestPrunedExactness:
    def test_seeded_grid_identical(self, hq_ex_task, plan_space, reference):
        optimizer = _optimizer(hq_ex_task, prune=True)
        results = optimizer.optimize_many(plan_space, GRID)
        assert_equivalent(results, reference)
        # The sweep must actually have pruned something, or the test
        # proves nothing about the pruning layer.
        assert optimizer.pruning.plans_pruned > 0

    def test_prune_flag_on_optimize_overrides_constructor(
        self, hq_ex_task, plan_space, reference
    ):
        optimizer = _optimizer(hq_ex_task, prune=False)
        results = [
            optimizer.optimize(plan_space, requirement, prune=True)
            for requirement in GRID
        ]
        assert_equivalent(results, reference)

    @pytest.mark.skipif(not _fork_available(), reason="fork unavailable")
    def test_matches_unpruned_parallel_workers(self, hq_ex_task, plan_space):
        requirement = GRID[4]
        pruned = _optimizer(hq_ex_task, prune=True).optimize(
            plan_space, requirement
        )
        parallel = _optimizer(hq_ex_task).optimize(
            plan_space, requirement, workers=2, prune=False
        )
        assert_equivalent([pruned], [parallel])

    def test_workers_on_pruned_path_is_inert(self, hq_ex_task, plan_space):
        requirement = GRID[2]
        serial = _optimizer(hq_ex_task, prune=True).optimize(
            plan_space, requirement
        )
        with_workers = _optimizer(hq_ex_task, prune=True).optimize(
            plan_space, requirement, workers=2
        )
        assert_equivalent([with_workers], [serial])

    def test_loosened_bounds_identical(
        self, hq_ex_task, plan_space, reference
    ):
        """Looser (still sound) bounds prune less but answer the same."""
        optimizer = _optimizer(hq_ex_task, prune=True)
        for plan in plan_space:
            bounds = optimizer.plan_bounds(plan)
            if bounds is None:
                continue
            optimizer._bounds_cache[plan] = PlanBounds(
                plan,
                good_upper=bounds.good_upper * 10.0 + 1.0,
                bad_upper=bounds.bad_upper * 10.0 + 1.0,
            )
        results = optimizer.optimize_many(plan_space, GRID)
        assert_equivalent(results, reference)

    def test_tightened_bounds_identical(
        self, hq_ex_task, plan_space, reference
    ):
        """The tightest sound bound — the actual full-effort prediction —
        prunes the most aggressively and still answers the same."""
        optimizer = _optimizer(hq_ex_task, prune=True)
        tightened = _optimizer(hq_ex_task, prune=True)
        for plan in plan_space:
            prediction = optimizer.predict_full_effort(plan)
            if prediction is None:
                continue
            tightened._bounds_cache[plan] = PlanBounds(
                plan,
                good_upper=prediction.n_good,
                bad_upper=prediction.n_bad,
            )
        results = tightened.optimize_many(plan_space, GRID)
        assert_equivalent(results, reference)


# ---------------------------------------------------------------------------
# bound soundness (property tests)
# ---------------------------------------------------------------------------


class TestBoundSoundness:
    def test_jensen_lower_bound_dominated(self):
        """``(1-rate)^{E[K]}`` never exceeds the exact ``E[(1-rate)^K]``."""
        rng = np.random.default_rng(7)
        for _ in range(200):
            population = int(rng.integers(1, 400))
            draws = int(rng.integers(0, population + 1))
            occurrences = int(rng.integers(0, min(population, 40) + 1))
            rate = float(rng.uniform(0.0, 1.0))
            exact = probability_none_extracted(
                population, draws, occurrences, rate
            )
            bound = float(
                none_extracted_lower_bound(
                    population, draws, occurrences, rate
                )
            )
            assert bound <= exact + 1e-12, (
                population, draws, occurrences, rate,
            )

    def test_issue_ceiling_dominates_every_effort(self):
        """The full-retrieval point caps Pr{extracted} at any draw count."""
        rng = np.random.default_rng(13)
        for _ in range(200):
            population = int(rng.integers(1, 300))
            draws = int(rng.integers(0, population + 1))
            good = int(rng.integers(0, min(population, 30) + 1))
            bad = int(rng.integers(0, min(population, 30) + 1))
            tp = float(rng.uniform(0.0, 1.0))
            fp = float(rng.uniform(0.0, 1.0))
            none_good = probability_none_extracted(
                population, draws, good, tp
            )
            none_bad = probability_none_extracted(population, draws, bad, fp)
            extracted = 1.0 - none_good * none_bad
            ceiling = float(issue_probability_ceiling(good, bad, tp, fp))
            assert extracted <= ceiling + 1e-12, (
                population, draws, good, bad, tp, fp,
            )

    def test_tier_a_bound_caps_full_effort_prediction(
        self, hq_ex_task, plan_space
    ):
        optimizer = _optimizer(hq_ex_task, prune=True)
        bounded = 0
        for plan in plan_space:
            bounds = optimizer.plan_bounds(plan)
            prediction = optimizer.predict_full_effort(plan)
            if bounds is None or prediction is None:
                continue
            bounded += 1
            assert bounds.good_upper * BOUND_SLACK >= prediction.n_good, plan
            assert bounds.bad_upper * BOUND_SLACK >= prediction.n_bad, plan
        assert bounded > 0


# ---------------------------------------------------------------------------
# persisted curves: store round-trip and invalidation
# ---------------------------------------------------------------------------


SIGNATURE = "hq-ex/test-signature"


class TestCurvePersistence:
    def _databases(self, task):
        return (task.database1, task.database2)

    def test_round_trip_identical_results(
        self, tmp_path, hq_ex_task, plan_space, reference
    ):
        warm = _optimizer(hq_ex_task, prune=True)
        warm_results = warm.optimize_many(plan_space, GRID)
        payload = warm.export_probes()
        assert warm.probe_count() > 0

        store = StatisticsStore(str(tmp_path))
        databases = self._databases(hq_ex_task)
        store.record_curves(
            SIGNATURE, databases, store.generation, payload
        )
        generation = store.generation
        store.save()

        reloaded = StatisticsStore(str(tmp_path))
        assert reloaded.generation == 0
        record = reloaded.curves_for(SIGNATURE, databases, generation)
        assert record is not None
        assert record["plans"] == payload

        cold = _optimizer(hq_ex_task, prune=True)
        loaded = cold.import_probes(record["plans"], plan_space)
        assert loaded > 0
        results = cold.optimize_many(plan_space, GRID)
        assert_equivalent(results, reference)
        assert_equivalent(results, warm_results)
        # The imported probes must actually have been consumed: the cold
        # optimizer answers from the store, not from fresh model calls.
        assert cold.pruning.curve_import_hits > 0
        assert cold.pruning.descent_probes < warm.pruning.descent_probes

    def test_record_curves_does_not_bump_generation(
        self, tmp_path, hq_ex_task
    ):
        store = StatisticsStore(str(tmp_path))
        before = store.generation
        store.record_curves(
            SIGNATURE, self._databases(hq_ex_task), before, {"plans": {}}
        )
        assert store.generation == before

    def test_generation_invalidation(self, tmp_path, hq_ex_task, plan_space):
        optimizer = _optimizer(hq_ex_task, prune=True)
        optimizer.optimize(plan_space, GRID[0])
        store = StatisticsStore(str(tmp_path))
        databases = self._databases(hq_ex_task)
        store.record_curves(
            SIGNATURE, databases, store.generation, optimizer.export_probes()
        )
        stale = store.generation + 1
        assert store.curves_for(SIGNATURE, databases, stale) is None
        # The stale record is dropped, not retried on the next lookup.
        assert store.curves_for(
            SIGNATURE, databases, store.generation
        ) is None

    def test_fingerprint_invalidation(self, tmp_path, hq_ex_task):
        store = StatisticsStore(str(tmp_path))
        databases = self._databases(hq_ex_task)
        store.record_curves(
            SIGNATURE, databases, store.generation, {"some-plan": {}}
        )
        swapped = (databases[1], databases[0])
        assert store.curves_for(
            SIGNATURE, swapped, store.generation
        ) is None

    def test_sharded_store_round_trips_curves(self, tmp_path, hq_ex_task):
        payload = {"plan-sig": {"max_effort": 10.0, "probes": [[1.0, 2.0, 3.0, 4.0]]}}
        databases = self._databases(hq_ex_task)
        store = ShardedStatisticsStore(str(tmp_path))
        store.record_curves(SIGNATURE, databases, store.generation, payload)
        generation = store.generation
        store.save()

        reloaded = ShardedStatisticsStore(str(tmp_path))
        record = reloaded.curves_for(SIGNATURE, databases, generation)
        assert record is not None
        assert record["plans"] == payload


# ---------------------------------------------------------------------------
# journal back-compat
# ---------------------------------------------------------------------------


class TestJournalCurveRecords:
    def test_legacy_record_decodes_without_curves_key(self):
        line = encode_journal_record(3, {"s": {"x": 1}}, {"t": {"y": 2}})
        body = decode_journal_record(line.rstrip(b"\n"))
        assert body == {
            "generation": 3,
            "sides": {"s": {"x": 1}},
            "tasks": {"t": {"y": 2}},
        }

    def test_curve_record_round_trips(self):
        curves = {SIGNATURE: {"generation": 0, "plans": {}}}
        line = encode_journal_record(4, {}, {}, curves=curves)
        body = decode_journal_record(line.rstrip(b"\n"))
        assert body == {
            "generation": 4,
            "sides": {},
            "tasks": {},
            "curves": curves,
        }

    def test_curve_record_with_non_dict_curves_rejected(self):
        import json
        import zlib

        body = {"generation": 1, "sides": {}, "tasks": {}, "curves": []}
        canonical = json.dumps(body, sort_keys=True).encode("utf-8")
        record = dict(body, crc=zlib.crc32(canonical) & 0xFFFFFFFF)
        line = json.dumps(record, sort_keys=True).encode("utf-8")
        assert decode_journal_record(line) is None


# ---------------------------------------------------------------------------
# frontier identity
# ---------------------------------------------------------------------------


class TestFrontierIdentity:
    def test_frontier_prune_matches_unpruned(self, hq_ex_task, plan_space):
        catalog = hq_ex_task.catalog()
        pruned = quality_frontier(
            catalog, plan_space, costs=hq_ex_task.costs, prune=True
        )
        unpruned = quality_frontier(
            catalog, plan_space, costs=hq_ex_task.costs, prune=False
        )
        assert len(pruned) == len(unpruned)
        for a, b in zip(pruned, unpruned):
            assert a.plan == b.plan
            assert a.effort_fraction == b.effort_fraction
            assert a.n_good == b.n_good
            assert a.n_bad == b.n_bad
            assert a.time == b.time
