"""Quickstart: optimize and execute a quality-aware join in ~30 lines.

Builds the canonical testbed (synthetic corpora standing in for the
paper's NYT95/NYT96/WSJ collections, Snowball-style extractors for
HQ⟨Company, Location⟩ and EX⟨Company, CEO⟩), asks the optimizer for the
fastest plan that delivers at least 50 good join tuples with at most
1,000 bad ones, and runs the chosen plan.

Run:  python examples/quickstart.py
"""

from repro.core import QualityRequirement
from repro.experiments import TestbedConfig, build_testbed
from repro.optimizer import JoinOptimizer, bind_plan, enumerate_plans

# 1. A ready-made world: databases, trained extractors, trained retrieval
#    strategies, and ground-truth statistics for evaluation.
testbed = build_testbed(TestbedConfig(scale=0.6))
task = testbed.task()  # HQ ⋈ EX, as in the paper
print(f"Task: {task.name}  (D1={task.database1.name} with "
      f"{len(task.database1)} docs, D2={task.database2.name} with "
      f"{len(task.database2)} docs)")

# 2. State the quality contract: >= 50 good join tuples, <= 1000 bad ones.
requirement = QualityRequirement(tau_good=50, tau_bad=1000)

# 3. Enumerate the plan space (join algorithm x retrieval strategies x
#    extractor knobs) and pick the fastest plan predicted to meet it.
plans = enumerate_plans(task.extractor1.name, task.extractor2.name)
optimizer = JoinOptimizer(
    task.catalog(), costs=task.costs, feasibility_margin=0.25
)
result = optimizer.optimize(plans, requirement)
chosen = result.chosen
print(f"\nCandidate plans: {len(plans)}; predicted-feasible: "
      f"{len(result.feasible)}")
print(f"Chosen plan:     {chosen.plan.describe()}")
print(f"Predicted:       {chosen.prediction.n_good:.0f} good / "
      f"{chosen.prediction.n_bad:.0f} bad in "
      f"{chosen.prediction.total_time:.0f}s (simulated)")

# 4. Bind the plan to live databases/extractors and execute it.
executor = bind_plan(
    task.environment(chosen.plan.extractor1.theta, chosen.plan.extractor2.theta),
    chosen.plan,
)
execution = executor.run(requirement=requirement)
report = execution.report
print(f"\nActual:          {report.summary()}")
print(f"Requirement met: {report.check(requirement)}")

# 5. Inspect some join results.
print("\nSample join tuples (Company, Location, CEO):")
for joined in execution.state.results[:5]:
    label = "good" if joined.is_good else "BAD"
    print(f"  {joined.values}  [{label}]")
