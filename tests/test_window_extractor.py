"""Tests for the window co-occurrence extractor and the label oracle."""

import pytest

from repro.core import RelationSchema
from repro.extraction import SnowballExtractor, WindowExtractor, characterize
from repro.textdb import database_from_texts

SCHEMA = RelationSchema("Mergers", ("Company", "MergedWith"))
COMPANIES = frozenset({"microsoft", "softricity", "symantec"})
DICTS = {"Company": COMPANIES, "MergedWith": COMPANIES}


def doc_of(text):
    return database_from_texts([text]).get(0)


class TestWindowExtractor:
    def make(self, theta=0.3, **kwargs):
        return WindowExtractor(SCHEMA, DICTS, theta=theta, **kwargs)

    def test_extracts_adjacent_pair(self):
        doc = doc_of("Microsoft acquired Softricity.")
        values = {t.values for t in self.make().extract(doc)}
        assert ("microsoft", "softricity") in values

    def test_proximity_decreases_with_gap(self):
        extractor = self.make(theta=0.0)
        near = doc_of("Microsoft merged Softricity.")
        far = doc_of(
            "Microsoft said a lot of unrelated words before Softricity."
        )
        conf_near = max(
            t.confidence
            for t in extractor.extract(near)
            if t.values == ("microsoft", "softricity")
        )
        conf_far = max(
            t.confidence
            for t in extractor.extract(far)
            if t.values == ("microsoft", "softricity")
        )
        assert conf_near > conf_far

    def test_theta_thresholds(self):
        far = doc_of(
            "Microsoft said many many many many many words before Softricity."
        )
        assert self.make(theta=0.9).extract(far) == []
        assert any(
            t.values == ("microsoft", "softricity")
            for t in self.make(theta=0.05).extract(far)
        )

    def test_pattern_terms_boost(self):
        with_patterns = self.make(
            theta=0.0, pattern_terms=["merged"], pattern_weight=0.5
        )
        without = self.make(theta=0.0)
        doc = doc_of("Microsoft merged Softricity.")

        def conf(extractor):
            return max(
                t.confidence
                for t in extractor.extract(doc)
                if t.values == ("microsoft", "softricity")
            )

        assert conf(with_patterns) >= conf(without) - 1e-9

    def test_label_oracle(self):
        gold = {("microsoft", "softricity")}
        extractor = self.make(
            theta=0.1, label_oracle=lambda values: values in gold
        )
        doc = doc_of("Microsoft merged Softricity and Microsoft met Symantec.")
        labels = {t.values: t.is_good for t in extractor.extract(doc)}
        assert labels[("microsoft", "softricity")]
        assert not labels[("microsoft", "symantec")]

    def test_no_mentions_no_oracle_all_bad(self):
        # Real text without planted mentions or a gold set: everything is
        # conservatively labelled bad.
        doc = doc_of("Microsoft merged Softricity.")
        assert all(not t.is_good for t in self.make(theta=0.0).extract(doc))

    def test_with_theta_preserves_configuration(self):
        extractor = self.make(theta=0.2, pattern_terms=["merged"])
        other = extractor.with_theta(0.7)
        assert other.theta == 0.7
        assert other.proximity_scale == extractor.proximity_scale
        assert other.pattern_weight == extractor.pattern_weight

    def test_monotone_in_theta(self):
        doc = doc_of(
            "Microsoft merged Softricity. Symantec met Microsoft later on."
        )
        lo = {t.values for t in self.make(theta=0.05).extract(doc)}
        hi = {t.values for t in self.make(theta=0.6).extract(doc)}
        assert hi <= lo

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(proximity_scale=0)
        with pytest.raises(ValueError):
            self.make(pattern_weight=1.5)
        with pytest.raises(KeyError):
            WindowExtractor(SCHEMA, {"Company": COMPANIES})

    def test_characterizable(self, mini_world, mini_db1):
        """The window extractor plugs into the knob-characterization harness."""
        extractor = WindowExtractor(
            mini_world.schemas["HQ"],
            mini_world.entity_dictionary("HQ"),
            pattern_terms=[],
            theta=0.3,
        )
        char = characterize(
            extractor, mini_db1, thetas=[0.0, 0.5, 1.0], sample_size=80
        )
        assert char.tp_at(0.0) == pytest.approx(1.0)
        assert char.tp_at(1.0) <= char.tp_at(0.0)


class TestSnowballLabelOracle:
    def test_oracle_overrides_planted_labels(self, mini_world, mini_db1):
        base = SnowballExtractor(
            mini_world.schemas["HQ"],
            mini_world.entity_dictionary("HQ"),
            ["whatever"],
            theta=0.0,
            label_oracle=lambda values: True,
        )
        doc = next(iter(mini_db1.documents))
        for tup in base.extract(doc):
            assert tup.is_good

    def test_oracle_survives_with_theta(self, mini_world):
        extractor = SnowballExtractor(
            mini_world.schemas["HQ"],
            mini_world.entity_dictionary("HQ"),
            ["whatever"],
            theta=0.0,
            label_oracle=lambda values: True,
        )
        assert extractor.with_theta(0.5)._label_oracle is not None
