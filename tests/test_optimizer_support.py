"""Tests for optimizer support pieces: catalog, predictions, environments."""

import pytest

from repro.core import RetrievalKind
from repro.joins import CostModel, SideCosts
from repro.models import QualityPrediction, charge_events
from repro.models.retrieval_models import EffortEvents
from repro.models.scheme import CompositionEstimate
from repro.core.quality import TimeBreakdown
from repro.optimizer import ExecutionEnvironment, StatisticsCatalog


class TestStatisticsCatalog:
    def test_from_profiles_builds_per_theta(self, hq_ex_task):
        catalog = hq_ex_task.catalog()
        stats_low = catalog.at(0.4, 0.4)
        stats_high = catalog.at(0.8, 0.8)
        assert stats_low.side1.tp > stats_high.side1.tp
        assert stats_low.side1.fp > stats_high.side1.fp
        # Frequencies are θ-independent (they describe the corpus).
        assert stats_low.side1.good_frequency == stats_high.side1.good_frequency

    def test_caching(self, hq_ex_task):
        catalog = hq_ex_task.catalog()
        assert catalog.at(0.4, 0.8) is catalog.at(0.4, 0.8)
        assert catalog.at(0.4, 0.8) is not catalog.at(0.8, 0.4)

    def test_carries_strategy_parameters(self, hq_ex_task):
        catalog = hq_ex_task.catalog()
        stats = catalog.at(0.4, 0.4)
        assert stats.classifier1 is not None
        assert stats.queries1

    def test_per_value_flag(self, hq_ex_task):
        assert hq_ex_task.catalog().per_value


class TestChargeEvents:
    def test_per_side_costs_applied(self):
        events = {
            1: EffortEvents(retrieved=10, processed=10, filtered=0, queries=0),
            2: EffortEvents(retrieved=0, processed=0, filtered=0, queries=5),
        }
        costs = CostModel(
            side1=SideCosts(t_retrieve=1, t_extract=2),
            side2=SideCosts(t_query=3),
        )
        time = charge_events(events, costs)
        assert time.retrieval == 10
        assert time.extraction == 20
        assert time.querying == 15
        assert time.total == 45


class TestQualityPrediction:
    def _prediction(self, good, bad, time_total):
        return QualityPrediction(
            composition=CompositionEstimate(
                good=good, good_bad=bad, bad_good=0.0, bad_bad=0.0
            ),
            time=TimeBreakdown(retrieval=time_total),
            efforts={1: 1.0, 2: 1.0},
            events={},
        )

    def test_meets(self):
        prediction = self._prediction(10, 5, 100)
        assert prediction.meets(10, 5)
        assert not prediction.meets(11, 5)
        assert not prediction.meets(10, 4)

    def test_accessors(self):
        prediction = self._prediction(10, 5, 100)
        assert prediction.n_good == 10
        assert prediction.n_bad == 5
        assert prediction.total_time == 100


class TestExecutionEnvironment:
    def test_retriever_construction(self, hq_ex_task):
        environment = hq_ex_task.environment()
        scan = environment.retriever(1, RetrievalKind.SCAN)
        assert scan.database is hq_ex_task.database1
        fs = environment.retriever(2, RetrievalKind.FILTERED_SCAN)
        assert fs.filters_documents
        aqg = environment.retriever(1, RetrievalKind.AQG)
        assert not aqg.exhausted

    def test_join_driven_not_a_standalone_retriever(self, hq_ex_task):
        environment = hq_ex_task.environment()
        with pytest.raises(ValueError):
            environment.retriever(1, RetrievalKind.JOIN_DRIVEN)

    def test_missing_classifier_raises(self, hq_ex_task):
        environment = hq_ex_task.environment()
        environment.classifier1 = None
        with pytest.raises(ValueError):
            environment.retriever(1, RetrievalKind.FILTERED_SCAN)

    def test_extractor_at_theta(self, hq_ex_task):
        environment = hq_ex_task.environment()
        extractor = environment.extractor_at(1, 0.75)
        assert extractor.theta == 0.75
        # The bound base extractor is unchanged.
        assert environment.extractor1.theta != 0.75 or True
