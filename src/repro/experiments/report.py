"""One-shot experiment report generation.

``generate_report`` runs the full evaluation — knob curves, the four
model-accuracy figures, Table II, the quality frontier, and estimation
calibration — and renders everything into a single self-contained markdown
document, timestamped only by content (all experiments are seeded and
deterministic).  Exposed on the CLI as ``repro report``.
"""

from __future__ import annotations

import pathlib
from typing import List, Optional, Sequence, Union

from ..optimizer.enumerator import enumerate_plans
from .calibration import format_calibration, run_calibration
from .figures import (
    run_figure9,
    run_figure10,
    run_figure11,
    run_figure12,
)
from .reporting import (
    format_accuracy_rows,
    format_documents_rows,
    format_table,
    format_table2_rows,
)
from .sweeps import format_frontier, quality_frontier
from .table2 import TABLE2_REQUIREMENTS, build_trajectories, run_table2
from .testbed import CHARACTERIZATION_THETAS, JoinTask


def _block(text: str) -> str:
    return f"```\n{text}\n```\n"


def generate_report(
    task: JoinTask,
    percents: Sequence[int] = (10, 25, 50, 75, 100),
    table2_rows: Optional[int] = 12,
    pilot_sizes: Sequence[int] = (60, 120),
) -> str:
    """Run the evaluation suite on *task*; return the markdown report."""
    sections: List[str] = [
        "# Experiment report — quality-aware join optimization\n",
        f"Task: **{task.name}** "
        f"(D1 = {task.database1.name}, {len(task.database1)} documents; "
        f"D2 = {task.database2.name}, {len(task.database2)} documents)\n",
    ]

    # Knob curves.
    knob_rows = [
        (
            theta,
            f"{task.characterization1.tp_at(theta):.3f}",
            f"{task.characterization1.fp_at(theta):.3f}",
            f"{task.characterization2.tp_at(theta):.3f}",
            f"{task.characterization2.fp_at(theta):.3f}",
        )
        for theta in CHARACTERIZATION_THETAS
    ]
    sections.append("## Knob characterization (Section III-A)\n")
    sections.append(
        _block(
            format_table(
                ["θ", "tp1", "fp1", "tp2", "fp2"],
                knob_rows,
            )
        )
    )

    # Model accuracy figures.
    sections.append("## Model accuracy (Figures 9–12)\n")
    sections.append(
        _block(
            format_accuracy_rows(
                run_figure9(task, percents=percents),
                "Figure 9 — IDJN (Scan/Scan)",
            )
        )
    )
    sections.append(
        _block(
            format_accuracy_rows(
                run_figure10(task, percents=percents),
                "Figure 10 — OIJN (Scan outer)",
            )
        )
    )
    sections.append(
        _block(
            format_accuracy_rows(
                run_figure11(task, percents=percents), "Figure 11 — ZGJN"
            )
        )
    )
    sections.append(
        _block(
            format_documents_rows(
                run_figure12(task, percents=percents),
                "Figure 12 — ZGJN documents retrieved",
            )
        )
    )

    # Table II.
    plans = enumerate_plans(task.extractor1.name, task.extractor2.name)
    trajectories = build_trajectories(task, plans)
    requirements = (
        TABLE2_REQUIREMENTS[:table2_rows]
        if table2_rows
        else TABLE2_REQUIREMENTS
    )
    rows = run_table2(
        task,
        requirements=requirements,
        plans=plans,
        trajectories=trajectories,
    )
    sections.append("## Optimizer choices (Table II)\n")
    sections.append(
        _block(format_table2_rows(rows, "Table II — HQ ⋈ EX"))
    )

    # Quality frontier.
    frontier = quality_frontier(task.catalog(), plans, costs=task.costs)
    sections.append("## Quality/time frontier\n")
    sections.append(
        _block(format_frontier(frontier, "Pareto-optimal operating points"))
    )

    # Estimation calibration.
    calibration = run_calibration(task, pilot_sizes=pilot_sizes)
    sections.append("## Estimation calibration (Section VI)\n")
    sections.append(
        _block(
            format_calibration(
                calibration, "Relative estimation errors vs ground truth"
            )
        )
    )

    return "\n".join(sections)


def write_report(
    task: JoinTask,
    path: Union[str, pathlib.Path],
    **kwargs,
) -> pathlib.Path:
    """Generate and write the report; returns the path written."""
    path = pathlib.Path(path)
    path.write_text(generate_report(task, **kwargs), encoding="utf-8")
    return path
