"""Chain join across three relations with *different* join attributes.

Beyond both the paper (binary joins) and the star extension (one shared
attribute): an analyst asks "for every recent merger, where does the
acquirer's CEO live?" — a chain

    MG⟨Company, MergedWith⟩ ⋈ EX⟨Company, CEO⟩ on Company
                            ⋈ RES⟨CEO, City⟩   on CEO

The example builds a world where RES's CEO domain chains off EX's CEO
pool, extracts all three relations from separate corpora, and counts the
chain composition with the DP-based :class:`~repro.multiway.ChainJoinState`
— including the expected composition from per-layer factors, the chain
analogue of the paper's Equation 1.

Run:  python examples/chain_join.py
"""

from repro.core import RelationSchema
from repro.extraction import SnowballExtractor
from repro.multiway import ChainEdge, ChainJoinState, chain_expected_composition
from repro.textdb import (
    CorpusConfig,
    HostedRelation,
    RelationSpec,
    World,
    WorldConfig,
    generate_corpus,
    pattern_tokens,
)

# -- a chainable world ---------------------------------------------------------

mg = RelationSpec(
    RelationSchema("MG", ("Company", "MergedWith")),
    secondary_prefix="target",
    n_true_facts=90, n_false_facts=60, n_secondary=140,
)
ex = RelationSpec(
    RelationSchema("EX", ("Company", "CEO")),
    secondary_prefix="person",
    n_true_facts=90, n_false_facts=60, n_secondary=120,
)
res = RelationSpec(
    RelationSchema("RES", ("CEO", "City")),
    secondary_prefix="city",
    n_true_facts=90, n_false_facts=60, n_secondary=140,
    primary_pool="EX",  # RES's CEOs come from EX's CEO pool
)
world = World(WorldConfig(seed=17, n_companies=120, relations=(mg, ex, res)))

databases = []
extractors = []
for i, relation in enumerate(("MG", "EX", "RES")):
    database = generate_corpus(
        world,
        CorpusConfig(
            name=f"db-{relation.lower()}",
            seed=40 + i,
            hosted=(HostedRelation(relation, n_good_docs=160, n_bad_docs=60),),
            n_empty_docs=180,
            max_results=30,
        ),
    )
    databases.append(database)
    extractors.append(
        SnowballExtractor(
            world.schemas[relation],
            world.entity_dictionary(relation),
            pattern_tokens(relation),
            theta=0.4,
        )
    )

print("Chain: MG ⋈ EX on Company, EX ⋈ RES on CEO")
for relation, database in zip(("MG", "EX", "RES"), databases):
    print(f"  {relation:<4} from {database.name} ({len(database)} documents)")

# -- extract and join ------------------------------------------------------------

state = ChainJoinState(
    [world.schemas["MG"], world.schemas["EX"], world.schemas["RES"]],
    [ChainEdge("Company", "Company"), ChainEdge("CEO", "CEO")],
)
for side, (database, extractor) in enumerate(zip(databases, extractors), 1):
    for document in database.documents:
        state.add(side, extractor.extract(document))

composition = state.composition
print(f"\nChain composition: {composition.n_good} good / "
      f"{composition.n_bad} bad results")
assert composition.n_good == state.verify_composition().n_good  # DP is exact

# Expected composition from the exact per-layer pair counts collapses to
# the same numbers — with *model* factors it becomes a prediction.
factor_pairs = [state.pair_factors(side) for side in (1, 2, 3)]
expected_good, expected_total = chain_expected_composition(factor_pairs)
print(f"DP on expected factors: {expected_good:.0f} good / "
      f"{expected_total - expected_good:.0f} bad (matches, as factors are exact)")

print("\nSample answers (Company, MergedWith, CEO, City):")
for i, result in enumerate(state.iter_results()):
    if i >= 5:
        break
    flag = "good" if result.is_good else "BAD"
    print(f"  {result.values}  [{flag}]")
