"""The paper's Figure 1 on real English text.

Builds two tiny text databases from hand-written articles — a financial
blog ("SeekingAlpha") and a newspaper archive ("WSJ") — extracts
Mergers⟨Company, MergedWith⟩ and Executives⟨Company, CEO⟩ with the
out-of-the-box :class:`~repro.extraction.WindowExtractor`, verifies tuples
against a gold set (as the paper does against a Thomson-Reuters gold set),
and joins them.

The run reproduces the figure's punchline: the extractor picks up the
*rumoured* Microsoft–Symantec merger as a tuple (raise θ to 0.5 and it
would also miss the real Microsoft–aQuantive deal, trading errors for
misses), and the erroneous base tuple joins with a perfectly correct
Executives tuple into the wrong answer ⟨Microsoft, Symantec, Steve
Ballmer⟩.

Run:  python examples/real_text_demo.py
"""

from repro.core import RelationSchema
from repro.core.relation import JoinState
from repro.extraction import WindowExtractor
from repro.textdb import database_from_texts

# -- the corpora -------------------------------------------------------------

seeking_alpha = [
    "Microsoft merged with Softricity this week, analysts said. "
    "The deal closed quickly.",
    "Rumors that Microsoft merged with Symantec were never confirmed, "
    "but traders bought anyway.",
    "After months of talks, Microsoft finally merged with aQuantive, "
    "a large advertising firm.",
    "Merck announced strong earnings. Nothing else happened today.",
]

wsj = [
    "Steve Ballmer, the chief executive of Microsoft, spoke at the summit.",
    "Richard Clark leads Merck; the Merck CEO Richard Clark outlined a plan.",
    "Apple veterans recall when Vadim Zlotnikov advised the Apple board.",
]

blog = database_from_texts(seeking_alpha, name="SeekingAlpha")
paper = database_from_texts(wsj, name="WSJ")

# -- the extractors -----------------------------------------------------------

companies = frozenset(
    {"microsoft", "softricity", "symantec", "aquantive", "merck", "apple"}
)
people = frozenset(
    {"steve_ballmer", "richard_clark", "vadim_zlotnikov"}
)
# Multi-word names arrive as separate tokens in raw text; for this demo we
# pre-join them (a real pipeline's NER does this chunking).
def chunk_names(db_texts):
    return [
        t.replace("Steve Ballmer", "steve_ballmer")
        .replace("Richard Clark", "richard_clark")
        .replace("Vadim Zlotnikov", "vadim_zlotnikov")
        for t in db_texts
    ]

paper = database_from_texts(chunk_names(wsj), name="WSJ")

GOLD_MERGERS = {("microsoft", "softricity"), ("microsoft", "aquantive")}
GOLD_EXECUTIVES = {
    ("microsoft", "steve_ballmer"),
    ("merck", "richard_clark"),
}

mergers_extractor = WindowExtractor(
    RelationSchema("Mergers", ("Company", "MergedWith")),
    {"Company": companies, "MergedWith": companies},
    pattern_terms=["merged", "merger", "deal", "acquired"],
    theta=0.3,
    label_oracle=lambda values: values in GOLD_MERGERS,
)
executives_extractor = WindowExtractor(
    RelationSchema("Executives", ("Company", "CEO")),
    {"Company": companies, "CEO": people},
    pattern_terms=["chief", "executive", "ceo", "leads"],
    theta=0.3,
    label_oracle=lambda values: values in GOLD_EXECUTIVES,
)

# -- extract ------------------------------------------------------------------

print("Mergers extracted from SeekingAlpha:")
mergers = []
for document in blog.documents:
    for tup in mergers_extractor.extract(document):
        if tup.values[0] == tup.values[1]:
            continue  # self-pairs from symmetric dictionaries
        mergers.append(tup)
        flag = "good" if tup.is_good else "BAD"
        print(f"  {tup.values}  conf={tup.confidence:.2f}  [{flag}]")

print("\nExecutives extracted from WSJ:")
executives = []
for document in paper.documents:
    for tup in executives_extractor.extract(document):
        executives.append(tup)
        flag = "good" if tup.is_good else "BAD"
        print(f"  {tup.values}  conf={tup.confidence:.2f}  [{flag}]")

# -- join ---------------------------------------------------------------------

state = JoinState(
    mergers_extractor.schema, executives_extractor.schema
)
state.add_left(mergers)
state.add_right(executives)

print("\nJoin results (Company, MergedWith, CEO):")
for joined in state.results:
    flag = "good" if joined.is_good else "WRONG"
    print(f"  {joined.values}  [{flag}]")

comp = state.composition
print(
    f"\nComposition: {comp.n_good} good, {comp.n_bad} bad — the rumoured "
    "Microsoft–Symantec tuple joined a correct CEO tuple into a wrong answer, "
    "exactly the paper's Figure 1."
)
