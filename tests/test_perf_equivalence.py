"""Golden equivalence tests for the performance engineering layer.

Every vectorized kernel keeps its scalar predecessor as the reference
implementation; these tests pin the contract:

* vectorized model predictions match the scalar paths within 1e-9;
* the :class:`~repro.optimizer.engine.PlanEvaluationEngine` answers
  requirements *byte-for-byte* identically to the legacy per-requirement
  bisection (same predictor);
* parallel plan evaluation (``workers=N``) is byte-for-byte identical to
  serial.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest
from scipy import stats

from repro.core import QualityRequirement
from repro.core.plan import RetrievalKind
from repro.estimation.mle import _fit_single_class
from repro.experiments import quality_frontier
from repro.experiments.figures import task_statistics
from repro.models.distributions import (
    NoneExtractedBatch,
    _hypergeom_pmf_table,
    probability_none_extracted,
    thinned_hypergeom_pmf,
    thinned_hypergeom_pmf_batch,
)
from repro.models.generating import GeneratingFunction
from repro.models.idjn_model import IDJNModel
from repro.models.oijn_model import OIJNModel
from repro.models.retrieval_models import AQGModel
from repro.models.zgjn_model import ZGJNModel
from repro.optimizer import JoinOptimizer, enumerate_plans, fork_map

TOL = 1e-9


def _fork_available() -> bool:
    try:
        multiprocessing.get_context("fork")
    except ValueError:
        return False
    return True


# ---------------------------------------------------------------------------
# distribution kernels
# ---------------------------------------------------------------------------


class TestDistributionKernels:
    def test_hypergeom_table_matches_scipy(self):
        population, draws = 500, 120
        successes = np.array([0, 1, 3, 17, 60, 499, 500])
        k = np.arange(0, 130)
        ours = _hypergeom_pmf_table(population, draws, successes, k)
        scipys = stats.hypergeom.pmf(
            k[None, :], population, successes[:, None], draws
        )
        np.testing.assert_allclose(ours, scipys, atol=TOL, rtol=TOL)

    def test_hypergeom_table_out_of_model_defers_to_scipy(self):
        # successes > population is out of model; both paths must agree
        # (scipy flags the bad rows with NaN).
        ours = _hypergeom_pmf_table(
            10, 4, np.array([3, 12]), np.arange(5)
        )
        scipys = stats.hypergeom.pmf(
            np.arange(5)[None, :], 10, np.array([3, 12])[:, None], 4
        )
        np.testing.assert_array_equal(np.isnan(ours), np.isnan(scipys))
        mask = ~np.isnan(scipys)
        np.testing.assert_allclose(ours[mask], scipys[mask], atol=TOL)

    def test_none_extracted_batch_matches_scalar(self):
        occurrences = np.array([0, 1, 2, 2, 5, 13, 40, 0])
        batch = NoneExtractedBatch(occurrences)
        for population, draws, rate in [
            (200, 50, 0.7),
            (200, 0, 0.7),
            (200, 200, 0.3),
            (40, 39, 1.0),
            (40, 17, 0.0),
        ]:
            got = batch.evaluate(population, draws, rate)
            want = np.array(
                [
                    probability_none_extracted(population, draws, int(f), rate)
                    for f in occurrences
                ]
            )
            np.testing.assert_allclose(got, want, atol=TOL, rtol=TOL)

    def test_none_extracted_batch_empty_and_degenerate(self):
        assert NoneExtractedBatch(np.array([])).evaluate(10, 5, 0.5).size == 0
        np.testing.assert_array_equal(
            NoneExtractedBatch(np.array([3, 0])).evaluate(0, 5, 0.5),
            np.ones(2),
        )

    def test_thinned_pmf_batch_matches_scalar(self):
        l_values = np.arange(0, 12)
        occ = np.array([0, 2, 5, 5, 9])
        batch = thinned_hypergeom_pmf_batch(300, 80, occ, 0.6, l_values)
        for i, f in enumerate(occ):
            want = thinned_hypergeom_pmf(300, 80, int(f), 0.6, l_values)
            np.testing.assert_allclose(batch[i], want, atol=TOL, rtol=TOL)


# ---------------------------------------------------------------------------
# generating functions
# ---------------------------------------------------------------------------


class TestGeneratingFunctionMethods:
    def test_power_fft_matches_direct(self):
        coeffs = np.linspace(1.0, 0.01, 150)
        gf = GeneratingFunction(coeffs)
        direct = gf.power(7, max_degree=400, method="direct")
        fft = gf.power(7, max_degree=400, method="fft")
        np.testing.assert_allclose(
            direct.coefficients, fft.coefficients, atol=TOL, rtol=TOL
        )

    def test_compose_fft_matches_direct(self):
        outer = GeneratingFunction(np.linspace(0.5, 0.01, 120))
        inner = GeneratingFunction(np.linspace(1.0, 0.1, 110))
        direct = outer.compose(inner, max_degree=300, method="direct")
        fft = outer.compose(inner, max_degree=300, method="fft")
        np.testing.assert_allclose(
            direct.coefficients, fft.coefficients, atol=TOL, rtol=TOL
        )


# ---------------------------------------------------------------------------
# model predictions: vectorized vs scalar
# ---------------------------------------------------------------------------


def _assert_predictions_close(fast, slow):
    assert fast.n_good == pytest.approx(slow.n_good, abs=TOL, rel=TOL)
    assert fast.n_bad == pytest.approx(slow.n_bad, abs=TOL, rel=TOL)
    assert fast.total_time == pytest.approx(slow.total_time, abs=TOL, rel=TOL)


@pytest.fixture(scope="module")
def statistics(hq_ex_task):
    return task_statistics(hq_ex_task, 0.4, 0.4)


class TestModelEquivalence:
    @pytest.mark.parametrize("per_value", [True, False])
    def test_idjn(self, statistics, per_value):
        fast = IDJNModel(
            statistics,
            RetrievalKind.SCAN,
            RetrievalKind.SCAN,
            per_value=per_value,
            vectorized=True,
        )
        slow = IDJNModel(
            statistics,
            RetrievalKind.SCAN,
            RetrievalKind.SCAN,
            per_value=per_value,
            vectorized=False,
        )
        for share in (0.0, 0.17, 0.5, 1.0):
            e1 = share * statistics.side1.n_documents
            e2 = share * statistics.side2.n_documents
            _assert_predictions_close(fast.predict(e1, e2), slow.predict(e1, e2))

    @pytest.mark.parametrize("outer", [1, 2])
    def test_oijn(self, statistics, outer):
        fast = OIJNModel(
            statistics, RetrievalKind.SCAN, outer=outer, vectorized=True
        )
        slow = OIJNModel(
            statistics, RetrievalKind.SCAN, outer=outer, vectorized=False
        )
        max_effort = fast.outer_model.max_effort
        for share in (0.0, 0.25, 0.75, 1.0):
            effort = share * max_effort
            _assert_predictions_close(fast.predict(effort), slow.predict(effort))

    def test_zgjn(self, statistics):
        fast = ZGJNModel(statistics, vectorized=True)
        slow = ZGJNModel(statistics, vectorized=False)
        for queries in (0.0, 3.0, 11.5, 40.0):
            _assert_predictions_close(
                fast.predict(queries), slow.predict(queries)
            )

    def test_aqg_reach_fast_matches_scalar(self, hq_ex_task, statistics):
        model = AQGModel(statistics.side1, hq_ex_task.query_stats1)
        side = statistics.side1
        for effort in (0.0, 1.0, 2.5, float(model.max_effort)):
            fast = model._reach_fast(effort, side.n_good_docs, "good")
            slow = model._reach(
                effort, side.n_good_docs, lambda s: s.good_hits
            )
            assert fast == slow  # bit-identical by construction

    def test_class_mix_is_memoized(self, statistics, hq_ex_task):
        model = AQGModel(statistics.side1, hq_ex_task.query_stats1)
        assert model.class_mix(2.0) is model.class_mix(2.0)


class TestMLEEquivalence:
    def test_fit_single_class_matches_scalar(self):
        s_values = np.array([1, 2, 3, 5, 8])
        weights = np.array([30.0, 11.0, 4.0, 2.0, 1.0])
        beta_grid = np.linspace(0.5, 3.0, 26)
        fast = _fit_single_class(
            s_values, weights, 0.4, 40, beta_grid, vectorized=True
        )
        slow = _fit_single_class(
            s_values, weights, 0.4, 40, beta_grid, vectorized=False
        )
        assert fast[0] == pytest.approx(slow[0], abs=TOL)
        assert fast[1] == pytest.approx(slow[1], rel=TOL)
        assert fast[2] == pytest.approx(slow[2], rel=TOL)


# ---------------------------------------------------------------------------
# engine and parallel fan-out
# ---------------------------------------------------------------------------

REQUIREMENTS = [
    QualityRequirement(tau_good=g, tau_bad=b)
    for g in (2, 15, 40, 80)
    for b in (30, 100000)
]


@pytest.fixture(scope="module")
def plan_space(hq_ex_task):
    return enumerate_plans(
        hq_ex_task.extractor1.name, hq_ex_task.extractor2.name
    )


class TestEngineEquivalence:
    def test_engine_matches_bisection_byte_for_byte(
        self, hq_ex_task, plan_space
    ):
        engine = JoinOptimizer(hq_ex_task.catalog(), costs=hq_ex_task.costs)
        legacy = JoinOptimizer(
            hq_ex_task.catalog(), costs=hq_ex_task.costs, use_engine=False
        )
        for requirement in REQUIREMENTS:
            got = engine.optimize(plan_space, requirement)
            want = legacy.optimize(plan_space, requirement)
            assert repr(got) == repr(want)

    def test_vectorized_matches_scalar_within_tolerance(
        self, hq_ex_task, plan_space
    ):
        fast = JoinOptimizer(hq_ex_task.catalog(), costs=hq_ex_task.costs)
        slow = JoinOptimizer(
            hq_ex_task.catalog(),
            costs=hq_ex_task.costs,
            vectorized=False,
            use_engine=False,
        )
        for requirement in REQUIREMENTS[:4]:
            got = fast.optimize(plan_space, requirement)
            want = slow.optimize(plan_space, requirement)
            for a, b in zip(got.evaluations, want.evaluations):
                assert a.plan == b.plan
                assert a.feasible == b.feasible
                assert a.effort_fraction == pytest.approx(
                    b.effort_fraction, abs=1e-12
                )
                if a.feasible:
                    assert a.prediction.n_good == pytest.approx(
                        b.prediction.n_good, abs=TOL, rel=TOL
                    )


@pytest.mark.skipif(not _fork_available(), reason="fork start method unavailable")
class TestParallelDeterminism:
    def test_parallel_optimize_identical_to_serial(
        self, hq_ex_task, plan_space
    ):
        serial = JoinOptimizer(hq_ex_task.catalog(), costs=hq_ex_task.costs)
        parallel = JoinOptimizer(hq_ex_task.catalog(), costs=hq_ex_task.costs)
        for requirement in REQUIREMENTS[:3]:
            want = serial.optimize(plan_space, requirement)
            got = parallel.optimize(plan_space, requirement, workers=2)
            assert repr(got) == repr(want)

    def test_parallel_frontier_identical_to_serial(
        self, hq_ex_task, plan_space
    ):
        want = quality_frontier(
            hq_ex_task.catalog(), plan_space, costs=hq_ex_task.costs
        )
        got = quality_frontier(
            hq_ex_task.catalog(),
            plan_space,
            costs=hq_ex_task.costs,
            workers=2,
        )
        assert repr(got) == repr(want)


class TestForkMap:
    def test_serial_requests_return_none(self):
        assert fork_map(_double_index, 5, None) is None
        assert fork_map(_double_index, 5, 1) is None
        assert fork_map(_double_index, 1, 4) is None

    @pytest.mark.skipif(
        not _fork_available(), reason="fork start method unavailable"
    )
    def test_results_ordered_by_index(self):
        assert fork_map(_double_index, 5, 2) == [0, 2, 4, 6, 8]


def _double_index(index):
    return index, index * 2
