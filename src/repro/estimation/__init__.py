"""On-the-fly MLE parameter estimation (Section VI).

Recovers database-specific statistics — value populations, power-law
frequency exponents, document-class sizes, and join-overlap class sizes —
from the observations a running join collects, without any tuple
verification.
"""

from .mle import (
    EstimatedParameters,
    ObservationContext,
    estimate_parameters,
)
from .online import (
    SideEstimate,
    class_seen_probability,
    estimate_overlap,
    estimate_side,
)
from .powerlaw import PowerLawModel, fit_power_law

__all__ = [
    "EstimatedParameters",
    "ObservationContext",
    "PowerLawModel",
    "SideEstimate",
    "class_seen_probability",
    "estimate_overlap",
    "estimate_parameters",
    "estimate_side",
    "fit_power_law",
]
