"""Text-database substrate: documents, search interface, synthetic corpora.

Everything the paper assumes of its text collections (NYT95/NYT96/WSJ) is
reproduced here: scan access, a top-k-limited conjunctive keyword-search
interface, and — since the original corpora are not redistributable — a
seeded generative world + corpus generator with the same statistical
structure (good/bad/empty documents, power-law attribute frequencies).
"""

from .corpus import (
    CorpusConfig,
    CorpusGenerator,
    HostedRelation,
    MentionStyle,
    generate_corpus,
)
from .database import TextDatabase
from .document import Document, Mention
from .index import InvertedIndex
from .io import (
    database_from_texts,
    load_database,
    save_database,
    sentences_from_text,
)
from .stats import DatabaseProfile, FrequencyHistogram, profile_database
from .tokenizer import normalize_token, tokenize
from .vocabulary import (
    BackgroundSampler,
    background_tokens,
    pattern_tokens,
    trigger_tokens,
)
from .world import RelationSpec, World, WorldConfig, zipf_weights

__all__ = [
    "BackgroundSampler",
    "CorpusConfig",
    "CorpusGenerator",
    "DatabaseProfile",
    "Document",
    "FrequencyHistogram",
    "HostedRelation",
    "InvertedIndex",
    "Mention",
    "MentionStyle",
    "RelationSpec",
    "TextDatabase",
    "World",
    "WorldConfig",
    "background_tokens",
    "database_from_texts",
    "generate_corpus",
    "load_database",
    "normalize_token",
    "pattern_tokens",
    "profile_database",
    "save_database",
    "sentences_from_text",
    "tokenize",
    "trigger_tokens",
    "zipf_weights",
]
