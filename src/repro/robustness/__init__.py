"""Fault-tolerant join execution (robustness subsystem).

The paper's algorithms assume database access always succeeds; this
package makes the reproduction survive the real world where it does not:

* :mod:`~repro.robustness.faults` — fault taxonomy and the deterministic,
  seeded :class:`FaultInjectingDatabase` wrapper;
* :mod:`~repro.robustness.retry` — :class:`RetryPolicy`, exponential
  backoff with decorrelated jitter, retry budgets, per-operation deadlines;
* :mod:`~repro.robustness.breaker` — per-access-path
  :class:`CircuitBreaker` (closed/open/half-open);
* :mod:`~repro.robustness.context` — the :class:`ResilienceContext` that
  retrieval strategies and query probes call through instead of hitting
  the database raw;
* :mod:`~repro.robustness.deadline` — :class:`Deadline` /
  :class:`DeadlineExceeded`, end-to-end request deadlines checked on
  every database access, with partial-state capture on expiry;
* :mod:`~repro.robustness.checkpoint` — checkpoint/resume of join
  execution state, so interrupted executions do not re-pay extraction;
* :mod:`~repro.robustness.degradation` — access-path → plan-space mapping
  for the adaptive optimizer's graceful degradation;
* :mod:`~repro.robustness.environment` — :func:`harden`, the one-call
  entry point wiring all of the above into an execution environment.
"""

from .breaker import BreakerState, CircuitBreaker
from .context import (
    AccessFailedError,
    AccessPathUnavailable,
    ResilienceContext,
)
from .deadline import Deadline, DeadlineExceeded
from .degradation import (
    FETCH,
    SEARCH,
    access_path,
    plan_uses_path,
    split_path,
    surviving_plans,
)
from .environment import harden
from .faults import (
    RETRYABLE_ERRORS,
    AccessError,
    AccessTimeout,
    FaultInjectingDatabase,
    FaultProfile,
    RateLimitError,
    TransientAccessError,
    raw_database,
)
from .retry import RetryPolicy

#: checkpoint names are loaded lazily (PEP 562): the checkpoint module
#: imports the join executors, which themselves import this package — an
#: eager import here would be circular.
_CHECKPOINT_EXPORTS = (
    "CheckpointError",
    "CheckpointInfo",
    "CheckpointManager",
    "checkpoint_execution",
    "load_checkpoint",
    "restore_execution",
    "save_checkpoint",
)


def __getattr__(name: str):
    if name in _CHECKPOINT_EXPORTS:
        from . import checkpoint

        return getattr(checkpoint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AccessError",
    "AccessFailedError",
    "AccessPathUnavailable",
    "AccessTimeout",
    "BreakerState",
    "CheckpointError",
    "CheckpointInfo",
    "CheckpointManager",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "FETCH",
    "FaultInjectingDatabase",
    "FaultProfile",
    "RETRYABLE_ERRORS",
    "RateLimitError",
    "ResilienceContext",
    "RetryPolicy",
    "SEARCH",
    "TransientAccessError",
    "access_path",
    "checkpoint_execution",
    "harden",
    "load_checkpoint",
    "plan_uses_path",
    "raw_database",
    "restore_execution",
    "save_checkpoint",
    "split_path",
    "surviving_plans",
]
