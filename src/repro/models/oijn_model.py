"""Analytical model of the Outer/Inner Join (Section V-D).

The outer relation behaves exactly like a single IDJN side: its expected
occurrence factors follow from its retrieval model.  The inner relation is
reached through keyword probes on join values extracted from the outer
relation, so its analysis has three ingredients:

* **issuance** — the query ``[a]`` exists only once the outer execution has
  extracted at least one occurrence (good or bad) of ``a``; the model
  computes ``p_issue(a)`` from the outer side's sampling + thinning law;
* **own-query reach** — the query matches ``H(q) = g(a) + b(a)`` documents
  (every document carrying an occurrence of ``a``), of which the top-k
  interface returns ``min(H(q), k)`` in rank-random order, so each
  matching document is retrieved with probability ``min(H(q), k)/H(q)``
  (the hypergeometric sampling over ``Hg(q)`` of the paper, in
  expectation);
* **rest reach** — documents carrying ``a`` that the own query's top-k
  missed can still arrive via *other* values' queries; the model follows
  the paper in treating this as sampling the inner database's good (bad)
  documents at the execution's aggregate coverage.

Execution time charges the outer side's events plus, for the inner side,
``E[Qs]·tQ`` for the issued queries and ``E[|Dr|]·(tR + tE)`` for the
documents they retrieve.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.plan import RetrievalKind
from ..joins.costs import CostModel
from .distributions import (
    NoneExtractedBatch,
    probability_none_extracted,
)
from .kernels import compose_aggregate_arrays, composition_kernel, side_kernel
from .parameters import JoinStatistics, SideStatistics, ValueOverlapModel
from .predictions import QualityPrediction, charge_events
from .retrieval_models import (
    ClassMix,
    EffortEvents,
    RetrievalModel,
    build_retrieval_model,
)
from .scheme import (
    SideFactors,
    compose_aggregate,
    compose_per_value,
    occurrence_factors,
)


def best_outer(
    statistics: JoinStatistics,
    outer_retrieval: RetrievalKind,
    tau_good: float,
    costs: Optional[CostModel] = None,
    per_value: bool = True,
    overlap: Optional[ValueOverlapModel] = None,
    steps: int = 12,
) -> Tuple[int, Dict[int, Optional[float]]]:
    """Which relation should play the outer role (Section IV-B).

    The paper notes its Section V analysis "can be used to identify which
    relation should serve as the outer relation in a join execution"; this
    helper does exactly that: for each outer choice, it finds (by bisection
    on the monotone predicted good count) the minimal outer effort whose
    prediction reaches *tau_good* and compares the predicted times.

    Returns ``(winning side, {side: predicted time or None})`` — None when
    that outer choice cannot reach the target at all; ties (including both
    unreachable) break toward side 1.
    """
    times: Dict[int, Optional[float]] = {}
    for outer in (1, 2):
        model = OIJNModel(
            statistics,
            outer_retrieval,
            outer=outer,
            costs=costs,
            per_value=per_value,
            overlap=overlap,
        )
        max_effort = float(model.max_effort)
        if model.predict(max_effort).n_good < tau_good:
            times[outer] = None
            continue
        lo, hi = 0.0, 1.0
        for _ in range(steps):
            mid = (lo + hi) / 2.0
            if model.predict(mid * max_effort).n_good >= tau_good:
                hi = mid
            else:
                lo = mid
        times[outer] = model.predict(hi * max_effort).total_time
    if times[1] is None and times[2] is None:
        return 1, times
    if times[1] is None:
        return 2, times
    if times[2] is None:
        return 1, times
    return (1 if times[1] <= times[2] else 2), times


@dataclass(frozen=True)
class InnerReach:
    """Aggregate inner-side expectations at one outer effort level."""

    queries: float
    good_docs: float
    bad_docs: float

    @property
    def documents(self) -> float:
        return self.good_docs + self.bad_docs


#: Bound on the class-mean issuance cache.  The previous implementation
#: kept exactly one entry, so bisection alternating between two mixes
#: recomputed the class means on every probe.
_ISSUE_CACHE_SIZE = 256


def _occurrence_arrays(
    side: SideStatistics, values: List[str]
) -> Tuple[NoneExtractedBatch, NoneExtractedBatch, NoneExtractedBatch]:
    """(good, bad-in-good, bad-in-bad) occurrence counts of *values* in *side*.

    Counts go through ``int(...)`` exactly as the scalar
    :meth:`OIJNModel.issue_probability` converts them, and are wrapped as
    :class:`NoneExtractedBatch` so their unique/inverse decompositions are
    computed once rather than per effort probe.
    """
    occ_good = np.array(
        [int(side.good_frequency.get(v, 0)) for v in values], dtype=int
    )
    occ_bad_good = np.array(
        [int(side.bad_in_good_frequency.get(v, 0)) for v in values], dtype=int
    )
    occ_bad_bad = np.array(
        [int(side.bad_in_bad(v)) for v in values], dtype=int
    )
    return (
        NoneExtractedBatch(occ_good),
        NoneExtractedBatch(occ_bad_good),
        NoneExtractedBatch(occ_bad_bad),
    )


class _OIJNVectors:
    """Effort-independent arrays behind the vectorized OIJN hot path.

    Everything here is a pure function of the statistics bundle: value
    orderings, occurrence counts (for issuance), own-query reach per inner
    value, and the alignment of the inner value union onto the side
    kernel's good/bad orderings.  Built once per model, shared across all
    effort levels and requirements.
    """

    def __init__(
        self,
        statistics: JoinStatistics,
        outer: int,
        inner: int,
        overlap: Optional[ValueOverlapModel],
    ) -> None:
        outer_side = statistics.side(outer)
        inner_side = statistics.side(inner)
        self.outer_values = sorted(
            set(outer_side.good_frequency) | set(outer_side.bad_frequency)
        )
        self.outer_occ = _occurrence_arrays(outer_side, self.outer_values)
        self.inner_values = sorted(
            set(inner_side.good_frequency) | set(inner_side.bad_frequency)
        )
        #: outer-side occurrences of the inner values (per-value issuance)
        self.inner_occ = _occurrence_arrays(outer_side, self.inner_values)
        self.is_good_inner = np.array(
            [v in inner_side.good_frequency for v in self.inner_values]
        )
        g = np.array(
            [inner_side.good_frequency.get(v, 0.0) for v in self.inner_values]
        )
        b = np.array(
            [inner_side.bad_frequency.get(v, 0.0) for v in self.inner_values]
        )
        bad_in_good = np.array(
            [
                inner_side.bad_in_good_frequency.get(v, 0.0)
                for v in self.inner_values
            ]
        )
        hits = g + b
        matched = hits > 0
        good_matches = g + bad_in_good
        safe_hits = np.where(matched, hits, 1.0)
        self.rate = np.where(
            matched, np.minimum(hits, inner_side.top_k) / safe_hits, 0.0
        )
        self.good_matches = np.where(matched, good_matches, 0.0)
        self.bad_matches = np.where(matched, hits - good_matches, 0.0)
        # class-mean issuance inputs (aggregate mode)
        good_values = list(outer_side.good_frequency)
        bad_only = [
            v
            for v in outer_side.bad_frequency
            if v not in outer_side.good_frequency
        ]
        self.mean_good_occ = _occurrence_arrays(outer_side, good_values)
        self.mean_bad_occ = _occurrence_arrays(outer_side, bad_only)
        # alignment of the union ordering onto the inner kernel's orderings
        self.inner_kernel = side_kernel(inner_side)
        index_of = {value: i for i, value in enumerate(self.inner_values)}
        self.idx_good = np.array(
            [index_of[v] for v in self.inner_kernel.good_values], dtype=int
        )
        self.idx_bad = np.array(
            [index_of[v] for v in self.inner_kernel.bad_values], dtype=int
        )
        #: masks mirroring the scalar inner_factors dict membership (the
        #: scalar walk only records a factor when it is non-zero; aggregate
        #: composition takes moments over the recorded entries)
        self.good_mask = self.inner_kernel.g != 0
        self.bad_mask = (self.inner_kernel.bg != 0) | (
            self.inner_kernel.bb != 0
        )
        # overlap shares of _inner_issue_probability (aggregate mode)
        if overlap is not None:
            population_good = max(len(inner_side.good_frequency), 1)
            population_bad = max(len(inner_side.bad_frequency), 1)
            if inner == 2:
                from_good_g, from_bad_g = overlap.n_gg, overlap.n_bg
                from_good_b, from_bad_b = overlap.n_gb, overlap.n_bb
            else:
                from_good_g, from_bad_g = overlap.n_gg, overlap.n_gb
                from_good_b, from_bad_b = overlap.n_bg, overlap.n_bb
            self.share_good_g = min(from_good_g / population_good, 1.0)
            self.share_bad_g = min(from_bad_g / population_good, 1.0)
            self.share_good_b = min(from_good_b / population_bad, 1.0)
            self.share_bad_b = min(from_bad_b / population_bad, 1.0)


class OIJNModel:
    """Predicts output quality and time of OIJN plans.

    ``outer`` is the side index (1 or 2) playing the outer role, retrieved
    with ``outer_retrieval``; the other side is probed by query.
    """

    def __init__(
        self,
        statistics: JoinStatistics,
        outer_retrieval: RetrievalKind,
        outer: int = 1,
        costs: Optional[CostModel] = None,
        per_value: bool = True,
        overlap: Optional[ValueOverlapModel] = None,
        vectorized: bool = True,
    ) -> None:
        if outer not in (1, 2):
            raise ValueError("outer must be 1 or 2")
        self.statistics = statistics
        self.outer = outer
        self.inner = 2 if outer == 1 else 1
        self.costs = costs or CostModel()
        self.per_value = per_value
        #: ``True`` runs issuance/reach/composition on precomputed arrays
        #: (:class:`_OIJNVectors`); ``False`` walks the scalar reference
        #: loops.  Both agree within 1e-9 (golden-tested).
        self.vectorized = vectorized
        self.outer_model: RetrievalModel = build_retrieval_model(
            outer_retrieval,
            statistics.side(outer),
            classifier=statistics.classifier(outer),
            queries=statistics.queries(outer),
        )
        if per_value:
            self.overlap = None
        else:
            self.overlap = overlap or ValueOverlapModel.from_side_values(
                statistics.side1, statistics.side2
            )
        self._issue_cache: "OrderedDict[Tuple[float, float], Tuple[float, float]]" = (
            OrderedDict()
        )
        # Passive LRU hit/miss tallies, scraped into the metrics registry
        # by the optimizer when observability is on.
        self._issue_cache_hits = 0
        self._issue_cache_misses = 0
        # p_issue arrays per (draws_good, draws_bad): one prediction needs
        # the same batch for reach and for the inner factors, bisection
        # revisits operating points across requirements, and nearby effort
        # levels quantize to the same integer draws.
        self._inner_issue_cache: "OrderedDict[Tuple[int, int], np.ndarray]" = (
            OrderedDict()
        )
        self._outer_issue_cache: "OrderedDict[Tuple[int, int], np.ndarray]" = (
            OrderedDict()
        )
        self._vectors: Optional[_OIJNVectors] = None

    @property
    def max_effort(self) -> int:
        """Effort axis: documents retrieved (queries for AQG) on the outer side."""
        return self.outer_model.max_effort

    # -- issuance ---------------------------------------------------------------

    def issue_probability(self, value: str, mix: ClassMix) -> float:
        """p_issue(a): the outer execution extracted some occurrence of a."""
        side = self.statistics.side(self.outer)
        p_missed = probability_none_extracted(
            population=max(side.n_good_docs, 1),
            draws=int(round(mix.good)),
            occurrences=int(side.good_frequency.get(value, 0)),
            rate=side.tp,
        )
        p_missed *= probability_none_extracted(
            population=max(side.n_good_docs, 1),
            draws=int(round(mix.good)),
            occurrences=int(side.bad_in_good_frequency.get(value, 0)),
            rate=side.fp,
        )
        p_missed *= probability_none_extracted(
            population=max(side.n_bad_docs, 1),
            draws=int(round(mix.bad)),
            occurrences=int(side.bad_in_bad(value)),
            rate=side.fp,
        )
        return 1.0 - p_missed

    def _own_query_reach(self, inner: SideStatistics, value: str) -> Tuple[float, float, float]:
        """(retrieval probability, good matches, bad matches) of query [a]."""
        g = inner.good_frequency.get(value, 0.0)
        b = inner.bad_frequency.get(value, 0.0)
        hits = g + b
        if hits <= 0:
            return 0.0, 0.0, 0.0
        rate = min(hits, inner.top_k) / hits
        good_matches = g + inner.bad_in_good_frequency.get(value, 0.0)
        return rate, good_matches, hits - good_matches

    def _vec(self) -> _OIJNVectors:
        if self._vectors is None:
            self._vectors = _OIJNVectors(
                self.statistics, self.outer, self.inner, self.overlap
            )
        return self._vectors

    def _issue_batch(
        self,
        occurrences: Tuple[
            NoneExtractedBatch, NoneExtractedBatch, NoneExtractedBatch
        ],
        mix: ClassMix,
    ) -> np.ndarray:
        """:meth:`issue_probability` over precomputed occurrence batches."""
        side = self.statistics.side(self.outer)
        occ_good, occ_bad_good, occ_bad_bad = occurrences
        draws_good = int(round(mix.good))
        draws_bad = int(round(mix.bad))
        p_missed = occ_good.evaluate(
            max(side.n_good_docs, 1), draws_good, side.tp
        )
        p_missed = p_missed * occ_bad_good.evaluate(
            max(side.n_good_docs, 1), draws_good, side.fp
        )
        p_missed = p_missed * occ_bad_bad.evaluate(
            max(side.n_bad_docs, 1), draws_bad, side.fp
        )
        return 1.0 - p_missed

    def _class_mean_issue(self, mix: ClassMix) -> Tuple[float, float]:
        """Mean issuance probability over the outer side's value classes."""
        if self.vectorized:
            vec = self._vec()
            mean_good = (
                float(np.mean(self._issue_batch(vec.mean_good_occ, mix)))
                if vec.mean_good_occ[0].shape[0]
                else 0.0
            )
            mean_bad = (
                float(np.mean(self._issue_batch(vec.mean_bad_occ, mix)))
                if vec.mean_bad_occ[0].shape[0]
                else 0.0
            )
            return mean_good, mean_bad
        outer_side = self.statistics.side(self.outer)
        good_values = list(outer_side.good_frequency)
        bad_values = [
            v
            for v in outer_side.bad_frequency
            if v not in outer_side.good_frequency
        ]
        mean_good = (
            sum(self.issue_probability(v, mix) for v in good_values)
            / len(good_values)
            if good_values
            else 0.0
        )
        mean_bad = (
            sum(self.issue_probability(v, mix) for v in bad_values)
            / len(bad_values)
            if bad_values
            else 0.0
        )
        return mean_good, mean_bad

    def _inner_issue_probability(
        self, value: str, is_good_value: bool, mix: ClassMix
    ) -> float:
        """p_issue for an *inner* value.

        Per-value mode reads the outer side's frequencies of the same
        value.  Aggregate mode (estimated statistics, synthetic value
        names) combines the class-mean outer issuance with the estimated
        probability that the inner value is shared at all (the overlap
        class counts of Section V-A).
        """
        if self.per_value:
            return self.issue_probability(value, mix)
        mean_good, mean_bad = self._mean_issue_cache(mix)
        inner_side = self.statistics.side(self.inner)
        if is_good_value:
            population = max(len(inner_side.good_frequency), 1)
            n_from_good, n_from_bad = (
                (self.overlap.n_gg, self.overlap.n_bg)
                if self.inner == 2
                else (self.overlap.n_gg, self.overlap.n_gb)
            )
        else:
            population = max(len(inner_side.bad_frequency), 1)
            n_from_good, n_from_bad = (
                (self.overlap.n_gb, self.overlap.n_bb)
                if self.inner == 2
                else (self.overlap.n_bg, self.overlap.n_bb)
            )
        share_good = min(n_from_good / population, 1.0)
        share_bad = min(n_from_bad / population, 1.0)
        return min(share_good * mean_good + share_bad * mean_bad, 1.0)

    def _mean_issue_cache(self, mix: ClassMix) -> Tuple[float, float]:
        """Bounded LRU over the class-mean issuance probabilities.

        Keyed on the (rounded) mix so that bisection probes alternating
        between effort levels hit instead of thrashing.
        """
        key = (round(mix.good, 6), round(mix.bad, 6))
        cache = self._issue_cache
        found = cache.get(key)
        if found is not None:
            self._issue_cache_hits += 1
            cache.move_to_end(key)
            return found
        self._issue_cache_misses += 1
        result = self._class_mean_issue(mix)
        cache[key] = result
        if len(cache) > _ISSUE_CACHE_SIZE:
            cache.popitem(last=False)
        return result

    def inner_reach(self, outer_effort: float) -> InnerReach:
        """Expected queries issued and inner documents retrieved.

        Good-document coverage uses the Equation-2 overlap correction: the
        probability a good inner document escapes every issued query is the
        product of per-query misses.  Queries are counted over the *outer*
        side's values (each observed value spawns one query, whether or not
        it matches anything in the inner database); coverage is accumulated
        over the *inner* side's values (only they can be matched).
        """
        mix = self.outer_model.class_mix(outer_effort)
        if self.vectorized:
            return self._inner_reach_from_mix(mix)
        outer_side = self.statistics.side(self.outer)
        inner_side = self.statistics.side(self.inner)
        outer_values = sorted(
            set(outer_side.good_frequency) | set(outer_side.bad_frequency)
        )
        n_queries = sum(
            self.issue_probability(value, mix) for value in outer_values
        )
        log_miss_good = 0.0
        log_miss_bad = 0.0
        n_good = max(inner_side.n_good_docs, 1)
        n_bad = max(inner_side.n_bad_docs, 1)
        inner_values = sorted(
            set(inner_side.good_frequency) | set(inner_side.bad_frequency)
        )
        for value in inner_values:
            is_good_value = value in inner_side.good_frequency
            p_issue = self._inner_issue_probability(value, is_good_value, mix)
            if p_issue <= 0.0:
                continue
            rate, good_matches, bad_matches = self._own_query_reach(
                inner_side, value
            )
            if rate <= 0.0:
                continue
            p_good = min(p_issue * rate * good_matches / n_good, 1.0)
            p_bad = min(p_issue * rate * bad_matches / n_bad, 1.0)
            if p_good < 1.0:
                log_miss_good += math.log1p(-p_good)
            else:
                log_miss_good = -math.inf
            if p_bad < 1.0:
                log_miss_bad += math.log1p(-p_bad)
            else:
                log_miss_bad = -math.inf
        good_docs = inner_side.n_good_docs * (1.0 - math.exp(log_miss_good))
        bad_docs = inner_side.n_bad_docs * (1.0 - math.exp(log_miss_bad))
        return InnerReach(queries=n_queries, good_docs=good_docs, bad_docs=bad_docs)

    def _inner_issue_batch(self, mix: ClassMix) -> np.ndarray:
        """p_issue for every inner value (union ordering), one mix."""
        vec = self._vec()
        if self.per_value:
            key = (int(round(mix.good)), int(round(mix.bad)))
            cache = self._inner_issue_cache
            found = cache.get(key)
            if found is not None:
                cache.move_to_end(key)
                return found
            result = self._issue_batch(vec.inner_occ, mix)
            cache[key] = result
            if len(cache) > _ISSUE_CACHE_SIZE:
                cache.popitem(last=False)
            return result
        mean_good, mean_bad = self._mean_issue_cache(mix)
        p_good_class = min(
            vec.share_good_g * mean_good + vec.share_bad_g * mean_bad, 1.0
        )
        p_bad_class = min(
            vec.share_good_b * mean_good + vec.share_bad_b * mean_bad, 1.0
        )
        return np.where(vec.is_good_inner, p_good_class, p_bad_class)

    def _inner_reach_from_mix(self, mix: ClassMix) -> InnerReach:
        """Array evaluation of :meth:`inner_reach` at one outer mix."""
        vec = self._vec()
        inner_side = self.statistics.side(self.inner)
        key = (int(round(mix.good)), int(round(mix.bad)))
        cache = self._outer_issue_cache
        outer_issue = cache.get(key)
        if outer_issue is None:
            outer_issue = self._issue_batch(vec.outer_occ, mix)
            cache[key] = outer_issue
            if len(cache) > _ISSUE_CACHE_SIZE:
                cache.popitem(last=False)
        else:
            cache.move_to_end(key)
        n_queries = float(outer_issue.sum())
        p_issue = self._inner_issue_batch(mix)
        n_good = max(inner_side.n_good_docs, 1)
        n_bad = max(inner_side.n_bad_docs, 1)
        p_good = np.minimum(
            p_issue * vec.rate * vec.good_matches / n_good, 1.0
        )
        p_bad = np.minimum(p_issue * vec.rate * vec.bad_matches / n_bad, 1.0)
        # Masked log1p instead of an errstate block: numpy 2 implements
        # errstate with ContextVar writes, measurable at this call rate.
        # Entries with p == 1 contribute -inf either way.
        log_miss_good = float(
            np.log1p(
                -p_good,
                where=p_good < 1.0,
                out=np.full_like(p_good, -np.inf),
            ).sum()
        )
        log_miss_bad = float(
            np.log1p(
                -p_bad,
                where=p_bad < 1.0,
                out=np.full_like(p_bad, -np.inf),
            ).sum()
        )
        good_docs = inner_side.n_good_docs * (1.0 - math.exp(log_miss_good))
        bad_docs = inner_side.n_bad_docs * (1.0 - math.exp(log_miss_bad))
        return InnerReach(
            queries=n_queries, good_docs=good_docs, bad_docs=bad_docs
        )

    # -- factors and prediction ----------------------------------------------------

    def inner_factors(self, outer_effort: float) -> SideFactors:
        """Expected inner occurrence factors at one outer effort level."""
        mix = self.outer_model.class_mix(outer_effort)
        inner_side = self.statistics.side(self.inner)
        reach = self.inner_reach(outer_effort)
        rho_good_rest = min(reach.good_docs / max(inner_side.n_good_docs, 1), 1.0)
        rho_bad_rest = min(reach.bad_docs / max(inner_side.n_bad_docs, 1), 1.0)
        good: Dict[str, float] = {}
        bad: Dict[str, float] = {}

        def coverage(p_issue: float, rate: float, rho_rest: float) -> float:
            own = p_issue * rate
            return own + (1.0 - own) * rho_rest

        inner_values = sorted(
            set(inner_side.good_frequency) | set(inner_side.bad_frequency)
        )
        for value in inner_values:
            is_good_value = value in inner_side.good_frequency
            p_issue = self._inner_issue_probability(value, is_good_value, mix)
            rate, _, _ = self._own_query_reach(inner_side, value)
            cov_good = coverage(p_issue, rate, rho_good_rest)
            cov_bad = coverage(p_issue, rate, rho_bad_rest)
            g = inner_side.good_frequency.get(value, 0.0)
            if g:
                good[value] = inner_side.tp * g * cov_good
            b_good = inner_side.bad_in_good_frequency.get(value, 0.0)
            b_bad = inner_side.bad_in_bad(value)
            if b_good or b_bad:
                bad[value] = inner_side.fp * (b_good * cov_good + b_bad * cov_bad)
        return SideFactors(good=good, bad=bad)

    def _inner_factor_arrays(
        self, mix: ClassMix, reach: InnerReach
    ) -> Tuple[np.ndarray, np.ndarray]:
        """:meth:`inner_factors` on arrays, aligned to the inner kernel."""
        vec = self._vec()
        inner_side = self.statistics.side(self.inner)
        rho_good_rest = min(
            reach.good_docs / max(inner_side.n_good_docs, 1), 1.0
        )
        rho_bad_rest = min(reach.bad_docs / max(inner_side.n_bad_docs, 1), 1.0)
        p_issue = self._inner_issue_batch(mix)
        own = p_issue * vec.rate
        cov_good = own + (1.0 - own) * rho_good_rest
        cov_bad = own + (1.0 - own) * rho_bad_rest
        kernel = vec.inner_kernel
        good = inner_side.tp * kernel.g * cov_good[vec.idx_good]
        bad = inner_side.fp * (
            kernel.bg * cov_good[vec.idx_bad]
            + kernel.bb * cov_bad[vec.idx_bad]
        )
        return good, bad

    def _compose_vectorized(
        self,
        rho_good: float,
        rho_bad: float,
        mix: ClassMix,
        reach: InnerReach,
    ):
        """Kernel composition of the separable outer and array inner factors."""
        outer_side = self.statistics.side(self.outer)
        outer_kernel = side_kernel(outer_side)
        outer_good = outer_kernel.good_factors(rho_good)
        outer_bad = outer_kernel.bad_factors(rho_good, rho_bad)
        inner_good, inner_bad = self._inner_factor_arrays(mix, reach)
        if not self.per_value:
            vec = self._vec()
            inner_good = inner_good[vec.good_mask]
            inner_bad = inner_bad[vec.bad_mask]
        if self.outer == 1:
            good1, bad1, good2, bad2 = (
                outer_good,
                outer_bad,
                inner_good,
                inner_bad,
            )
        else:
            good1, bad1, good2, bad2 = (
                inner_good,
                inner_bad,
                outer_good,
                outer_bad,
            )
        if self.per_value:
            kernel = composition_kernel(
                self.statistics.side1, self.statistics.side2
            )
            return kernel.compose_arrays(good1, bad1, good2, bad2)
        return compose_aggregate_arrays(good1, bad1, good2, bad2, self.overlap)

    def predict(self, outer_effort: float) -> QualityPrediction:
        """Expected join composition and time at one outer effort level."""
        outer_side = self.statistics.side(self.outer)
        rho_good = self.outer_model.good_fraction_processed(outer_effort)
        rho_bad = self.outer_model.bad_fraction_processed(outer_effort)
        if self.vectorized:
            mix = self.outer_model.class_mix(outer_effort)
            reach = self._inner_reach_from_mix(mix)
            composition = self._compose_vectorized(
                rho_good, rho_bad, mix, reach
            )
        else:
            outer_factors = occurrence_factors(
                outer_side, rho_good=rho_good, rho_bad=rho_bad
            )
            inner_factors = self.inner_factors(outer_effort)
            if self.outer == 1:
                factors1, factors2 = outer_factors, inner_factors
            else:
                factors1, factors2 = inner_factors, outer_factors
            if self.per_value:
                composition = compose_per_value(factors1, factors2)
            else:
                composition = compose_aggregate(
                    factors1, factors2, self.overlap
                )
            reach = self.inner_reach(outer_effort)
        events = {
            self.outer: self.outer_model.events(outer_effort),
            self.inner: EffortEvents(
                retrieved=reach.documents,
                processed=reach.documents,
                filtered=0.0,
                queries=reach.queries,
            ),
        }
        return QualityPrediction(
            composition=composition,
            time=charge_events(events, self.costs),
            efforts={self.outer: outer_effort, self.inner: reach.queries},
            events=events,
        )
