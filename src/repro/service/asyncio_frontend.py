"""Asyncio front end for the join service (``repro serve --frontend async``).

The threaded front end (:mod:`~repro.service.http`) holds one thread per
*connection*; a fleet of clients that keep idle keep-alive connections
open therefore costs a thread each before any of them sends a request.
This module replaces connection handling with a single-threaded asyncio
event loop: thousands of idle connections are just registered sockets,
request heads are parsed on the loop, and only *work* consumes threads —
join requests dispatch to the service's bounded worker pool (via a small
``run_in_executor`` bridge sized to the pool + admission queue, so the
event loop never blocks on a lock or a store write).

Everything the threaded path promises is preserved:

* the **admission ladder** runs unchanged inside ``service.submit`` —
  admits queue, degrades answer synchronously, sheds map to 503 with a
  jittered ``Retry-After`` header;
* **deadlines** still start at admission, so queue wait counts against
  the budget, and a service-side expiry maps to the same 504 carrying
  partial progress;
* requests without a deadline are still bounded by the front end's
  ``request_timeout`` backstop (504, connection closed), so a wedged
  worker can never pin a connection forever;
* the read-only API (``/v1/stats``, ``/v1/metrics``, ``/v1/debug/*``)
  is answered through the same :func:`~repro.service.http.route_get`
  table as the threaded handler, so the two front ends cannot drift.

On top of this the front end adds **cross-request coalescing**
(:mod:`~repro.service.coalesce`): plan-mode requests — pure functions of
``(signature, store generation, requirement)`` — that duplicate an
in-flight computation attach as waiters and share its one result.  A
waiter's own deadline expiring detaches it (504) without disturbing the
shared flight; the last waiter detaching cancels the flight.  The
threaded front end deliberately does *not* coalesce: it remains the
uncoalesced reference that byte-identity tests compare against.

Connection-handling discipline (the same keep-alive hygiene the threaded
``do_POST`` bug sweep pinned down): any request whose body cannot be
fully consumed — oversized, truncated, bad ``Content-Length``, stalled
mid-read — is answered with ``Connection: close`` and the connection is
torn down, never left desynchronized with body bytes pending.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from http.client import responses as _STATUS_REASONS
from typing import Any, Dict, Optional, Tuple

from ..robustness.deadline import DeadlineExceeded
from .coalesce import FlightCancelled, Waiter, submit_coalesced
from .http import (
    DEFAULT_REQUEST_TIMEOUT,
    JSON_CONTENT_TYPE,
    MAX_BODY_BYTES,
    _retry_after_header,
    deadline_payload,
    route_get,
)
from .service import (
    JoinRequest,
    JoinService,
    ServiceBusyError,
    ServiceClosedError,
    response_json,
)

#: StreamReader buffer limit: a full request head plus slack
_READ_LIMIT = MAX_BODY_BYTES + 64 * 1024

#: maximum number of request headers accepted
_MAX_HEADERS = 100

#: extra executor threads beyond workers + queue: GET routes and
#: admission probes that overlap in-flight joins
_EXECUTOR_SLACK = 4

_SERVER_NAME = "repro-join-service/1.0 asyncio"


def _prespawn_workers(pool: ThreadPoolExecutor) -> None:
    """Spawn the pool's threads eagerly at construction.

    ``ThreadPoolExecutor`` grows lazily — a submit that finds no idle
    worker *at that instant* adds a thread, so under scheduler pressure
    even sequential traffic keeps growing the pool for a while.  A
    server wants that jitter at startup, not on early requests: parking
    every worker on a barrier once forces the full complement, making
    first-request latency and thread accounting deterministic.
    """
    count = pool._max_workers
    barrier = threading.Barrier(count)

    def _park() -> None:
        try:
            barrier.wait(timeout=10.0)
        except threading.BrokenBarrierError:
            pass

    for future in [pool.submit(_park) for _ in range(count)]:
        future.result(timeout=30.0)


class _HTTPError(Exception):
    """A request that cannot proceed; always answered and then closed."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def _render(
    status: int,
    body: bytes,
    content_type: str,
    extra_headers: Tuple[Tuple[str, str], ...] = (),
    close: bool = False,
) -> bytes:
    reason = _STATUS_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Server: {_SERVER_NAME}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
    ]
    if close:
        lines.append("Connection: close")
    for name, value in extra_headers:
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body


class AsyncServiceServer:
    """An asyncio HTTP server owning its event loop on a daemon thread.

    ``start()`` binds the socket and returns once ``server_address`` is
    known (``port=0`` picks a free port, like the threaded server);
    ``serve_forever()`` blocks the calling thread (the CLI path);
    ``shutdown()`` stops accepting, cancels connection handlers, and
    joins the loop thread.  The service itself is drained separately via
    :func:`shutdown_async`, mirroring :func:`~repro.service.http.shutdown`.
    """

    def __init__(
        self,
        service: JoinService,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout: Optional[float] = DEFAULT_REQUEST_TIMEOUT,
        idle_timeout: Optional[float] = None,
        backlog: int = 512,
        coalesce: bool = True,
        executor_workers: Optional[int] = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        #: bounds reads *within* a request and the no-deadline wait on a
        #: submitted join; an idle connection between requests is not a
        #: request and is governed by ``idle_timeout`` instead
        self.request_timeout = request_timeout
        #: how long a keep-alive connection may sit idle between
        #: requests; None (the default) lets idle connections park —
        #: they cost a socket, not a thread
        self.idle_timeout = idle_timeout
        self.backlog = backlog
        self.coalesce = coalesce
        if executor_workers is None:
            workers = len(getattr(service, "_workers", ())) or 2
            queue = getattr(service, "_queue", None)
            queue_limit = getattr(queue, "maxsize", 8) or 8
            executor_workers = workers + queue_limit + _EXECUTOR_SLACK
        self._pool = ThreadPoolExecutor(
            max_workers=executor_workers, thread_name_prefix="async-frontend"
        )
        _prespawn_workers(self._pool)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._tasks: set = set()
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.server_address: Optional[Tuple[str, int]] = None
        #: loop-confined connection accounting (reads are approximate)
        self.connections_open = 0
        self.connections_peak = 0
        self.requests_served = 0

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "AsyncServiceServer":
        """Bind and serve on a background thread; returns once bound."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._run, name="join-service-asyncio", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30.0):
            raise RuntimeError("asyncio front end failed to start in time")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def serve_forever(self) -> None:
        """Start (if needed) and block until shutdown or interrupt."""
        if self._thread is None:
            self.start()
        assert self._thread is not None
        while self._thread.is_alive():
            self._thread.join(0.5)

    def shutdown(self) -> None:
        """Stop accepting, cancel open connections, join the loop."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and loop.is_running():
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                pass  # loop closed between the check and the call
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self._pool.shutdown(wait=False)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # noqa: BLE001 — surfaced via start()
            self._startup_error = error
        finally:
            self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            backlog=self.backlog,
            limit=_READ_LIMIT,
        )
        self.server_address = server.sockets[0].getsockname()[:2]
        self._started.set()
        try:
            async with server:
                await self._stop.wait()
        finally:
            for task in list(self._tasks):
                task.cancel()
            if self._tasks:
                await asyncio.gather(*self._tasks, return_exceptions=True)

    # -- connection loop -------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
        self.connections_open += 1
        self.connections_peak = max(
            self.connections_peak, self.connections_open
        )
        try:
            await self._connection_loop(reader, writer)
        except asyncio.CancelledError:
            pass  # server shutting down mid-request
        except (ConnectionError, TimeoutError, OSError):
            pass  # peer vanished; nothing to answer
        finally:
            self.connections_open -= 1
            if task is not None:
                self._tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (Exception, asyncio.CancelledError):  # noqa: BLE001
                pass

    async def _connection_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                head = await self._read_request(reader)
            except _HTTPError as error:
                # Parse-level failures leave the stream in an unknown
                # state (unread body bytes, half a head): answer, then
                # always close — never let the next "request line" be
                # someone's body.
                await self._write(
                    writer,
                    error.status,
                    response_json({"error": error.message}),
                    close=True,
                )
                return
            if head is None:
                return  # clean EOF or idle timeout
            method, target, headers = head
            close = self._wants_close(headers)
            try:
                status, body, content_type, extra, force_close = (
                    await self._respond(method, target, reader, headers)
                )
            except _HTTPError as error:
                await self._write(
                    writer,
                    error.status,
                    response_json({"error": error.message}),
                    close=True,
                )
                return
            except asyncio.CancelledError:
                raise
            except Exception as error:  # noqa: BLE001 — keep the loop alive
                status = 500
                body = response_json(
                    {"error": f"{type(error).__name__}: {error}"}
                )
                content_type, extra, force_close = JSON_CONTENT_TYPE, (), False
            close = close or force_close
            await self._write(
                writer, status, body, content_type, extra, close
            )
            self.requests_served += 1
            if close:
                return

    @staticmethod
    def _wants_close(headers: Dict[str, str]) -> bool:
        return headers.get("connection", "").lower() == "close"

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: str,
        content_type: str = JSON_CONTENT_TYPE,
        extra_headers: Tuple[Tuple[str, str], ...] = (),
        close: bool = False,
    ) -> None:
        writer.write(
            _render(
                status,
                body.encode("utf-8"),
                content_type,
                extra_headers,
                close=close,
            )
        )
        await writer.drain()

    # -- request parsing -------------------------------------------------------

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str]]]:
        """Read one request head; None on clean EOF or idle expiry."""
        line = b""
        for _ in range(3):  # tolerate stray CRLFs between requests
            try:
                if self.idle_timeout is not None:
                    line = await asyncio.wait_for(
                        reader.readline(), self.idle_timeout
                    )
                else:
                    line = await reader.readline()
            except asyncio.TimeoutError:
                return None
            except ValueError as error:
                raise _HTTPError(400, "request line too long") from error
            if line.strip():
                break
            if not line:
                return None
        if not line.strip():
            return None
        parts = line.decode("latin-1", "replace").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _HTTPError(400, "malformed request line")
        method, target, _version = parts
        try:
            headers = await asyncio.wait_for(
                self._read_headers(reader), self.request_timeout
            )
        except asyncio.TimeoutError as error:
            raise _HTTPError(408, "request head read timed out") from error
        return method, target, headers

    async def _read_headers(
        self, reader: asyncio.StreamReader
    ) -> Dict[str, str]:
        headers: Dict[str, str] = {}
        for _ in range(_MAX_HEADERS):
            try:
                line = await reader.readline()
            except ValueError as error:
                raise _HTTPError(431, "header line too long") from error
            if not line:
                raise _HTTPError(400, "truncated request head")
            if line in (b"\r\n", b"\n"):
                return headers
            text = line.decode("latin-1", "replace")
            name, sep, value = text.partition(":")
            if not sep:
                raise _HTTPError(400, "malformed header")
            headers[name.strip().lower()] = value.strip()
        raise _HTTPError(431, "too many request headers")

    async def _read_body(
        self, reader: asyncio.StreamReader, headers: Dict[str, str]
    ) -> bytes:
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError as error:
            raise _HTTPError(400, "bad Content-Length") from error
        if length < 0 or length > MAX_BODY_BYTES:
            raise _HTTPError(413, "request body too large")
        if length == 0:
            return b""
        try:
            return await asyncio.wait_for(
                reader.readexactly(length), self.request_timeout
            )
        except asyncio.IncompleteReadError as error:
            raise _HTTPError(400, "truncated request body") from error
        except asyncio.TimeoutError as error:
            raise _HTTPError(408, "request body read timed out") from error

    # -- dispatch --------------------------------------------------------------

    async def _respond(
        self,
        method: str,
        target: str,
        reader: asyncio.StreamReader,
        headers: Dict[str, str],
    ) -> Tuple[int, str, str, Tuple[Tuple[str, str], ...], bool]:
        """Returns ``(status, body, content type, headers, force_close)``."""
        loop = asyncio.get_running_loop()
        if method == "GET":
            # route_get takes service locks and may block (profile);
            # never run it on the event loop.
            status, body, content_type = await loop.run_in_executor(
                self._pool, route_get, self.service, target
            )
            return status, body, content_type, (), False
        if method != "POST":
            return (
                501,
                response_json({"error": f"unsupported method {method}"}),
                JSON_CONTENT_TYPE,
                (),
                True,
            )
        body_bytes = await self._read_body(reader, headers)
        path = target.split("?", 1)[0]
        if path != "/v1/join":
            return (
                404,
                response_json({"error": f"unknown path {path}"}),
                JSON_CONTENT_TYPE,
                (),
                False,
            )
        try:
            payload = json.loads(body_bytes or b"{}")
            request = JoinRequest.from_payload(payload)
        except ValueError as error:
            return (
                400,
                response_json({"error": str(error)}),
                JSON_CONTENT_TYPE,
                (),
                False,
            )
        status, reply, extra, force_close = await self._answer_join(request)
        return (
            status,
            response_json(reply),
            JSON_CONTENT_TYPE,
            extra,
            force_close,
        )

    # -- join handling ---------------------------------------------------------

    def _begin(
        self, request: JoinRequest
    ) -> Tuple["Future[Dict[str, Any]]", Optional[Waiter]]:
        """Submit (possibly coalesced) on an executor thread."""
        if self.coalesce and hasattr(self.service, "coalesce_key"):
            return submit_coalesced(self.service, request)
        return self.service.submit(request), None

    async def _answer_join(
        self, request: JoinRequest
    ) -> Tuple[int, Dict[str, Any], Tuple[Tuple[str, str], ...], bool]:
        loop = asyncio.get_running_loop()
        arrived = loop.time()
        try:
            future, waiter = await loop.run_in_executor(
                self._pool, self._begin, request
            )
        except ServiceBusyError as busy:
            return (
                503,
                {"error": "overloaded", "retry_after": busy.retry_after},
                (("Retry-After", _retry_after_header(busy.retry_after)),),
                False,
            )
        except ServiceClosedError:
            return 503, {"error": "service is draining"}, (), False
        # Coalesced waiters enforce their deadline here (the shared
        # computation runs deadline-free); everyone else is backstopped
        # by request_timeout — the service's own deadline machinery
        # interrupts deadlined requests much earlier.
        if waiter is not None and request.deadline_ms is not None:
            elapsed = loop.time() - arrived
            timeout: Optional[float] = max(
                request.deadline_ms / 1000.0 - elapsed, 0.0
            )
        else:
            timeout = self.request_timeout
        try:
            result = await self._await_future(future, timeout)
        except asyncio.TimeoutError:
            if waiter is not None and request.deadline_ms is not None:
                # This waiter's own deadline expired: detach (the shared
                # flight keeps running unless this was the last waiter)
                # and answer a deadline 504.  The connection is intact.
                waiter.detach()
                return (
                    504,
                    {
                        "error": "deadline exceeded",
                        "where": "frontend.coalesce",
                        "phase": "coalesced-wait",
                        "deadline_ms": request.deadline_ms,
                        "partial": {},
                    },
                    (),
                    False,
                )
            # request_timeout backstop (parity with the threaded fix):
            # cancel what we can and close the connection.
            if waiter is not None:
                waiter.detach()
            else:
                future.cancel()
            return (
                504,
                {
                    "error": "request timed out in service",
                    "timeout_seconds": self.request_timeout,
                },
                (),
                True,
            )
        except DeadlineExceeded as expired:
            return 504, deadline_payload(expired), (), False
        except FlightCancelled:
            return (
                503,
                {"error": "coalesced computation was cancelled"},
                (),
                False,
            )
        except ServiceBusyError as busy:
            # The flight's leader was shed: the whole burst shares the
            # one admission decision.
            return (
                503,
                {"error": "overloaded", "retry_after": busy.retry_after},
                (("Retry-After", _retry_after_header(busy.retry_after)),),
                False,
            )
        except ServiceClosedError:
            return 503, {"error": "service is draining"}, (), False
        except ValueError as error:
            return 409, {"error": str(error)}, (), False
        except Exception as error:  # noqa: BLE001 — surface, keep serving
            return (
                500,
                {"error": f"{type(error).__name__}: {error}"},
                (),
                False,
            )
        return 200, result, (), False

    async def _await_future(
        self, future: "Future[Any]", timeout: Optional[float]
    ) -> Any:
        """Await a concurrent Future without a thread, timeout-safe.

        ``asyncio.wait_for`` cancellation must only cancel *this
        caller's* view — a coalesced flight may have other waiters — so
        the bridge is a per-caller asyncio future fed by a done
        callback, never ``wrap_future`` (whose cancellation propagates
        to the shared future).
        """
        loop = asyncio.get_running_loop()
        bridge: "asyncio.Future[Any]" = loop.create_future()

        def deliver(done: "Future[Any]") -> None:
            def settle() -> None:
                if bridge.cancelled():
                    return
                if done.cancelled():
                    bridge.set_exception(
                        FlightCancelled("computation was cancelled")
                    )
                    return
                error = done.exception()
                if error is not None:
                    bridge.set_exception(error)
                else:
                    bridge.set_result(done.result())

            try:
                loop.call_soon_threadsafe(settle)
            except RuntimeError:
                pass  # loop already closed (shutdown race)

        future.add_done_callback(deliver)
        return await asyncio.wait_for(bridge, timeout)


def serve_async(
    service: JoinService,
    host: str = "127.0.0.1",
    port: int = 0,
    request_timeout: Optional[float] = DEFAULT_REQUEST_TIMEOUT,
    idle_timeout: Optional[float] = None,
    coalesce: bool = True,
) -> AsyncServiceServer:
    """Start an asyncio front end for *service*; returns once bound."""
    return AsyncServiceServer(
        service,
        host=host,
        port=port,
        request_timeout=request_timeout,
        idle_timeout=idle_timeout,
        coalesce=coalesce,
    ).start()


def shutdown_async(server: AsyncServiceServer) -> None:
    """Graceful drain: stop the loop, then drain the join service."""
    server.shutdown()
    server.service.close(wait=True)


__all__ = [
    "AsyncServiceServer",
    "serve_async",
    "shutdown_async",
]
