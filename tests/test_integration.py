"""Cross-module integration scenarios exercised through the public API."""

import pytest

from repro.core import (
    ExtractorConfig,
    QualityRequirement,
    RetrievalKind,
    idjn_plan,
)
from repro.estimation import (
    ObservationContext,
    estimate_overlap,
    estimate_side,
)
from repro.joins import Budgets, IndependentJoin
from repro.optimizer import (
    JoinOptimizer,
    bind_plan,
    budgets_from_evaluation,
    enumerate_plans,
)
from repro.retrieval import ScanRetriever
from repro.textdb import load_database, profile_database, save_database


class TestContractLifecycle:
    """State a contract → optimize → bind → execute → verify."""

    @pytest.mark.parametrize("tau_good", [15, 120])
    def test_full_lifecycle(self, hq_ex_task, tau_good):
        requirement = QualityRequirement(tau_good=tau_good, tau_bad=10**6)
        plans = enumerate_plans(
            hq_ex_task.extractor1.name, hq_ex_task.extractor2.name
        )
        optimizer = JoinOptimizer(
            hq_ex_task.catalog(),
            costs=hq_ex_task.costs,
            feasibility_margin=0.25,
        )
        result = optimizer.optimize(plans, requirement)
        chosen = result.chosen
        assert chosen is not None
        executor = bind_plan(
            hq_ex_task.environment(
                chosen.plan.extractor1.theta, chosen.plan.extractor2.theta
            ),
            chosen.plan,
        )
        execution = executor.run(
            requirement=requirement,
            budgets=budgets_from_evaluation(chosen.plan, chosen, slack=3.0),
        )
        assert execution.report.check(requirement)

    def test_execution_time_close_to_prediction(self, hq_ex_task):
        """Predicted simulated time tracks actual for the chosen plan."""
        requirement = QualityRequirement(tau_good=60, tau_bad=10**6)
        plan = idjn_plan(
            ExtractorConfig(hq_ex_task.extractor1.name, 0.4),
            ExtractorConfig(hq_ex_task.extractor2.name, 0.4),
            RetrievalKind.SCAN,
            RetrievalKind.SCAN,
        )
        optimizer = JoinOptimizer(hq_ex_task.catalog(), costs=hq_ex_task.costs)
        evaluation = optimizer.evaluate(plan, requirement)
        executor = bind_plan(hq_ex_task.environment(0.4, 0.4), plan)
        execution = executor.run(requirement=requirement)
        assert execution.report.time.total == pytest.approx(
            evaluation.predicted_time, rel=0.6
        )


class TestPersistenceRoundTripPipeline:
    def test_saved_database_reproduces_experiments(self, hq_ex_task, tmp_path):
        """A saved+reloaded corpus yields identical executions."""
        path = tmp_path / "nyt96.jsonl"
        save_database(hq_ex_task.database1, path)
        reloaded = load_database(path)

        def run(database):
            from repro.joins import JoinInputs

            inputs = JoinInputs(
                database1=database,
                database2=hq_ex_task.database2,
                extractor1=hq_ex_task.extractor1.with_theta(0.4),
                extractor2=hq_ex_task.extractor2.with_theta(0.4),
            )
            return IndependentJoin(
                inputs,
                ScanRetriever(database),
                ScanRetriever(hq_ex_task.database2),
            ).run(budgets=Budgets(max_documents1=80, max_documents2=80))

        original = run(hq_ex_task.database1).report
        restored = run(reloaded).report
        assert restored.composition.n_good == original.composition.n_good
        assert restored.composition.n_bad == original.composition.n_bad
        assert restored.time.total == original.time.total


class TestEstimationPluggedIntoModels:
    def test_estimated_statistics_feed_models(self, hq_ex_task):
        """Synthetic SideStatistics from estimation flow through a model."""
        from repro.models import IDJNModel, JoinStatistics

        inputs = hq_ex_task.inputs(0.4, 0.4)
        pilot = IndependentJoin(
            inputs,
            ScanRetriever(hq_ex_task.database1),
            ScanRetriever(hq_ex_task.database2),
        ).run(budgets=Budgets(max_documents1=120, max_documents2=120))
        estimates = []
        for side, database, char in (
            (1, hq_ex_task.database1, hq_ex_task.characterization1),
            (2, hq_ex_task.database2, hq_ex_task.characterization2),
        ):
            observations = pilot.observations.side(side)
            context = ObservationContext(
                database_size=len(database),
                coverage=observations.documents_processed / len(database),
                tp=char.tp_at(0.4),
                fp=char.fp_at(0.4),
                theta=0.4,
            )
            estimates.append(
                estimate_side(
                    observations, context, reference=char.confidences
                )
            )
        overlap = estimate_overlap(
            estimates[0],
            estimates[1],
            pilot.observations.side(1),
            pilot.observations.side(2),
        )
        sides = [e.statistics for e in estimates]
        statistics = JoinStatistics(side1=sides[0], side2=sides[1])
        model = IDJNModel(
            statistics,
            RetrievalKind.SCAN,
            RetrievalKind.SCAN,
            per_value=False,
            overlap=overlap,
        )
        prediction = model.predict(
            sides[0].n_documents // 2, sides[1].n_documents // 2
        )
        # Order-of-magnitude agreement with the ground-truth prediction.
        from repro.experiments.figures import task_statistics
        from repro.models import IDJNModel as TruthModel

        truth = TruthModel(
            task_statistics(hq_ex_task, 0.4, 0.4),
            RetrievalKind.SCAN,
            RetrievalKind.SCAN,
        ).predict(
            len(hq_ex_task.database1) // 2, len(hq_ex_task.database2) // 2
        )
        assert prediction.n_good > 0
        assert truth.n_good / 8 <= prediction.n_good <= truth.n_good * 8


class TestAlternateTask:
    def test_mg_ex_task_runs(self, testbed):
        """The non-default task (MG from wsj ⋈ EX from nyt95) works."""
        task = testbed.task(
            relation1="MG", relation2="EX", database1="wsj", database2="nyt95"
        )
        requirement = QualityRequirement(tau_good=10, tau_bad=10**6)
        plans = enumerate_plans(
            task.extractor1.name, task.extractor2.name, thetas1=(0.4,),
            thetas2=(0.4,),
        )
        optimizer = JoinOptimizer(
            task.catalog(), costs=task.costs, feasibility_margin=0.25
        )
        result = optimizer.optimize(plans, requirement)
        assert result.chosen is not None
        executor = bind_plan(task.environment(0.4, 0.4), result.chosen.plan)
        execution = executor.run(requirement=requirement)
        assert execution.report.composition.n_good >= 10

    def test_profiles_consistent_across_hosted_relations(self, testbed):
        """wsj hosts EX and MG; profiles are per-task and disjoint in docs."""
        wsj = testbed.databases["wsj"]
        ex_profile = profile_database(wsj, "EX")
        mg_profile = profile_database(wsj, "MG")
        assert ex_profile.n_good_docs > 0
        assert mg_profile.n_good_docs > 0
        assert (
            ex_profile.n_good_docs
            + ex_profile.n_bad_docs
            + mg_profile.n_good_docs
            + mg_profile.n_bad_docs
            <= len(wsj)
        )
