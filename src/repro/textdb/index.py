"""Inverted index over a document collection.

Backs the keyword-search interface of :class:`~repro.textdb.database.TextDatabase`.
Queries use conjunctive (AND) semantics, matching the behaviour the paper
assumes of the underlying search engine, and results are returned in a
stable document order so the interface's top-k truncation is deterministic.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Set

from .document import Document
from .tokenizer import normalize_token


class InvertedIndex:
    """Token -> sorted list of document ids."""

    def __init__(self, documents: Iterable[Document] = ()) -> None:
        self._postings: Dict[str, List[int]] = defaultdict(list)
        self._doc_count = 0
        for doc in documents:
            self.add(doc)

    def add(self, doc: Document) -> None:
        """Index one document (tokens deduplicated per document)."""
        for token in sorted(doc.token_set()):
            postings = self._postings[token]
            if postings and postings[-1] == doc.doc_id:
                continue
            postings.append(doc.doc_id)
        self._doc_count += 1

    def __len__(self) -> int:
        return self._doc_count

    @property
    def vocabulary_size(self) -> int:
        return len(self._postings)

    def tokens(self) -> List[str]:
        """All indexed tokens (the collection vocabulary)."""
        return list(self._postings)

    def postings(self, token: str) -> List[int]:
        """Document ids containing *token* (empty list if unseen)."""
        return list(self._postings.get(normalize_token(token), ()))

    def document_frequency(self, token: str) -> int:
        return len(self._postings.get(normalize_token(token), ()))

    def search(self, tokens: Sequence[str]) -> List[int]:
        """Documents containing *all* of the query tokens, in id order."""
        if not tokens:
            return []
        normalized = [normalize_token(t) for t in tokens]
        # Intersect starting from the rarest token for efficiency.
        posting_lists = [self._postings.get(t, []) for t in normalized]
        if any(not p for p in posting_lists):
            return []
        posting_lists.sort(key=len)
        result: Set[int] = set(posting_lists[0])
        for postings in posting_lists[1:]:
            result &= set(postings)
            if not result:
                return []
        return sorted(result)
