"""Supporting experiment: tp(θ)/fp(θ) knob characterization (Section III-A).

Regenerates the knob curves for every extraction system in the testbed —
the offline profiling step the quality models are parameterized with — and
asserts the structural properties the analysis needs: curves start at 1.0,
decrease monotonically, and separate good from bad occurrences.
"""

import pytest

from repro.experiments import CHARACTERIZATION_THETAS, format_table
from repro.extraction import characterize


def test_knob_characterization(benchmark, testbed, report_sink):
    def run():
        return {
            relation: characterize(
                extractor, testbed.training, thetas=CHARACTERIZATION_THETAS
            )
            for relation, extractor in testbed.extractors.items()
        }

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []
    for relation, char in sorted(curves.items()):
        rows = [
            (theta, f"{char.tp_at(theta):.3f}", f"{char.fp_at(theta):.3f}")
            for theta in CHARACTERIZATION_THETAS
        ]
        lines.append(
            format_table([f"θ ({relation})", "tp(θ)", "fp(θ)"], rows)
        )
    report_sink(
        "knob_characterization",
        "Knob characterization — Snowball minSim curves per relation\n\n"
        + "\n\n".join(lines),
    )
    for relation, char in curves.items():
        assert char.tp_at(0.0) == pytest.approx(1.0)
        assert char.fp_at(0.0) == pytest.approx(1.0)
        tps = [char.tp_at(t) for t in CHARACTERIZATION_THETAS]
        assert all(a >= b - 1e-9 for a, b in zip(tps, tps[1:])), relation
        assert char.tp_at(0.4) - char.fp_at(0.4) > 0.15, relation
