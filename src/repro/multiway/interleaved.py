"""Tree-shaped join state and the fully-interleaved n-ary strategy.

:class:`TreeJoinState` generalizes :class:`ChainJoinState` from paths to
arbitrary acyclic join graphs: every relation keeps exact (total, good)
counts per *joint key* — the tuple of its join-attribute values — and
the composition is counted by the same upward message-passing DP the
planner's model uses on expected factors (chains and stars are special
cases).

:class:`InterleavedNaryJoin` is the ZGJN-flavoured execution strategy
(cf. Leapfrog Triejoin): instead of advancing every side each round, it
advances only the side with the least accumulated simulated time, so
all n relations stay in lockstep on the time axis and no binary
intermediate result is ever materialized.  It reuses the resumable
ripple machinery of :class:`MultiwayIndependentJoin` unchanged.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.relation import ExtractedRelation
from ..core.types import ExtractedTuple, RelationSchema
from .executor import MultiwayIndependentJoin
from .state import MultiJoinComposition


@dataclass(frozen=True)
class TreeEdge:
    """One join edge between two relations, by 0-based relation index."""

    left: int
    left_attribute: str
    right: int
    right_attribute: str

    def attribute_of(self, index: int) -> str:
        if index == self.left:
            return self.left_attribute
        if index == self.right:
            return self.right_attribute
        raise KeyError(index)

    def other(self, index: int) -> int:
        if index == self.left:
            return self.right
        if index == self.right:
            return self.left
        raise KeyError(index)


@dataclass(frozen=True)
class TreeJoinTuple:
    """One materialized tree-join result (parts in relation order)."""

    parts: Tuple[ExtractedTuple, ...]

    @property
    def is_good(self) -> bool:
        return all(part.is_good for part in self.parts)


class TreeJoinState:
    """Incrementally maintained acyclic multiway join with DP counting."""

    def __init__(
        self,
        schemas: Sequence[RelationSchema],
        edges: Sequence[TreeEdge],
    ) -> None:
        if len(schemas) < 2:
            raise ValueError("a tree join needs at least two relations")
        if len(edges) != len(schemas) - 1:
            raise ValueError("a tree join over n relations needs n-1 edges")
        self.schemas = list(schemas)
        self.edges = list(edges)
        n = len(schemas)
        self._incident: List[List[TreeEdge]] = [[] for _ in range(n)]
        for edge in edges:
            for endpoint in (edge.left, edge.right):
                if not 0 <= endpoint < n:
                    raise ValueError(f"edge endpoint {endpoint} out of range")
            if edge.left == edge.right:
                raise ValueError("edge joins a relation with itself")
            # Raises ValueError via index_of if the attribute is missing.
            for endpoint in (edge.left, edge.right):
                self._key_index(endpoint, edge.attribute_of(endpoint))
            self._incident[edge.left].append(edge)
            self._incident[edge.right].append(edge)
        reached = {0}
        frontier = [0]
        while frontier:
            node = frontier.pop()
            for edge in self._incident[node]:
                other = edge.other(node)
                if other not in reached:
                    reached.add(other)
                    frontier.append(other)
        if len(reached) != n:
            raise ValueError("tree join edges must connect every relation")
        #: per relation: schema indexes of its join attributes, schema order
        self.key_indexes: List[Tuple[int, ...]] = [
            tuple(
                sorted(
                    {
                        self._key_index(i, edge.attribute_of(i))
                        for edge in self._incident[i]
                    }
                )
            )
            for i in range(n)
        ]
        self.relations = [ExtractedRelation(s) for s in schemas]
        #: per relation: joint key -> [total count, good count]
        self._key_counts: List[Dict[Tuple, List[int]]] = [
            defaultdict(lambda: [0, 0]) for _ in schemas
        ]
        self._dirty = True
        self._cached = MultiJoinComposition()

    def _key_index(self, relation: int, attribute: str) -> int:
        try:
            return self.schemas[relation].index_of(attribute)
        except KeyError:
            raise ValueError(
                f"relation {self.schemas[relation].name!r} has no attribute"
                f" {attribute!r}"
            ) from None

    # -- executor protocol -------------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.relations)

    @property
    def join_indexes(self) -> List[int]:
        """First join-attribute index per relation (for observations)."""
        return [indexes[0] for indexes in self.key_indexes]

    def relation(self, side: int) -> ExtractedRelation:
        """1-based side accessor, matching the other executors."""
        return self.relations[side - 1]

    def add(self, side: int, tuples: Iterable[ExtractedTuple]) -> int:
        """Insert tuples into relation *side* (1-based); returns new count."""
        index = side - 1
        relation = self.relations[index]
        key_indexes = self.key_indexes[index]
        added = 0
        for tup in tuples:
            if not relation.add(tup):
                continue
            added += 1
            key = tuple(tup.value_of(i) for i in key_indexes)
            slot = self._key_counts[index][key]
            slot[0] += 1
            if tup.is_good:
                slot[1] += 1
        if added:
            self._dirty = True
        return added

    def key_factors(self, side: int) -> Dict[Tuple, Tuple[float, float]]:
        """Relation *side*'s exact (total, good) counts per joint key.

        The exact-count analogue of the planner model's expected key
        factors; composing them through the same tree DP reproduces the
        exact composition (a property tests rely on).
        """
        return {
            key: (float(total), float(good))
            for key, (total, good) in self._key_counts[side - 1].items()
        }

    # -- composition -------------------------------------------------------------

    def _counts_for(
        self, index: int, key_indexes: Tuple[int, ...]
    ) -> Dict[Tuple, List[int]]:
        if key_indexes == self.key_indexes[index]:
            return self._key_counts[index]
        counts: Dict[Tuple, List[int]] = defaultdict(lambda: [0, 0])
        for tup in self.relations[index]:
            key = tuple(tup.value_of(i) for i in key_indexes)
            slot = counts[key]
            slot[0] += 1
            if tup.is_good:
                slot[1] += 1
        return counts

    def _subset_key_indexes(
        self, index: int, subset: FrozenSet[int]
    ) -> Tuple[int, ...]:
        used = {
            self._key_index(index, edge.attribute_of(index))
            for edge in self._incident[index]
            if edge.other(index) in subset
        }
        if not used:
            return self.key_indexes[index]
        return tuple(sorted(used))

    def _message(
        self,
        index: int,
        parent: Optional[int],
        subset: FrozenSet[int],
    ) -> Dict[Optional[str], List[float]]:
        children = [
            edge.other(index)
            for edge in self._incident[index]
            if edge.other(index) in subset and edge.other(index) != parent
        ]
        key_indexes = self._subset_key_indexes(index, subset)
        counts = self._counts_for(index, key_indexes)
        child_messages = {
            child: self._message(child, index, subset) for child in children
        }
        child_slots = [
            (
                key_indexes.index(
                    self._key_index(
                        index, self._edge_between(index, child).attribute_of(index)
                    )
                ),
                child,
            )
            for child in children
        ]
        parent_slot = (
            key_indexes.index(
                self._key_index(
                    index, self._edge_between(index, parent).attribute_of(index)
                )
            )
            if parent is not None
            else None
        )
        out: Dict[Optional[str], List[float]] = {}
        for key, (total, good) in counts.items():
            total_f, good_f = float(total), float(good)
            for slot, child in child_slots:
                message = child_messages[child].get(key[slot])
                if message is None:
                    total_f = good_f = 0.0
                    break
                total_f *= message[0]
                good_f *= message[1]
            if total_f == 0.0 and good_f == 0.0:
                continue
            out_key = None if parent_slot is None else key[parent_slot]
            slot_out = out.setdefault(out_key, [0.0, 0.0])
            slot_out[0] += total_f
            slot_out[1] += good_f
        return out

    def _edge_between(self, a: int, b: int) -> TreeEdge:
        for edge in self._incident[a]:
            if edge.other(a) == b:
                return edge
        raise ValueError(f"no edge between relations {a} and {b}")

    def subset_composition(self, subset: FrozenSet[int]) -> MultiJoinComposition:
        """Exact composition of joining only the relations in *subset*."""
        if not subset:
            raise ValueError("cannot compose an empty subset")
        root = min(subset)
        message = self._message(root, None, frozenset(subset))
        total = sum(slot[0] for slot in message.values())
        good = sum(slot[1] for slot in message.values())
        return MultiJoinComposition(
            n_good=int(round(good)), n_bad=int(round(total - good))
        )

    @property
    def composition(self) -> MultiJoinComposition:
        if self._dirty:
            self._cached = self.subset_composition(
                frozenset(range(self.arity))
            )
            self._dirty = False
        return self._cached

    # -- materialization (tests, small outputs) ----------------------------------

    def _subtree_choices(
        self,
        index: int,
        parent: Optional[int],
        required: Optional[str],
    ) -> Iterator[Dict[int, ExtractedTuple]]:
        parent_attr_index = (
            self._key_index(
                index, self._edge_between(index, parent).attribute_of(index)
            )
            if parent is not None
            else None
        )
        children = [
            edge.other(index)
            for edge in self._incident[index]
            if edge.other(index) != parent
        ]
        for tup in self.relations[index]:
            if (
                parent_attr_index is not None
                and tup.value_of(parent_attr_index) != required
            ):
                continue
            child_choice_lists = [
                list(
                    self._subtree_choices(
                        child,
                        index,
                        tup.value_of(
                            self._key_index(
                                index,
                                self._edge_between(index, child).attribute_of(index),
                            )
                        ),
                    )
                )
                for child in children
            ]
            for combo in itertools.product(*child_choice_lists):
                merged: Dict[int, ExtractedTuple] = {index: tup}
                for choice in combo:
                    merged.update(choice)
                yield merged

    def iter_results(self) -> Iterator[TreeJoinTuple]:
        """Materialize tree results by recursive index walks (may be large)."""
        for choice in self._subtree_choices(0, None, None):
            yield TreeJoinTuple(
                parts=tuple(choice[i] for i in range(self.arity))
            )

    def verify_composition(self) -> MultiJoinComposition:
        """Recount by materialization — O(result size), for tests."""
        good = total = 0
        for joined in self.iter_results():
            total += 1
            if joined.is_good:
                good += 1
        return MultiJoinComposition(n_good=good, n_bad=total - good)


class InterleavedNaryJoin(MultiwayIndependentJoin):
    """Fully-interleaved n-ary join: one side per round, time-balanced.

    Each round advances only the open side with the least accumulated
    simulated time (ties break on side order), so every relation's
    cursor moves in lockstep along the time axis — the scheduling
    analogue of Leapfrog Triejoin's iterator interleaving, under the
    same stop-as-soon-as-(τg, τb)-is-met contract as the ripple join.
    """

    algorithm = "interleaved"

    def _round_sides(self, open_sides: List[int]) -> List[int]:
        return [min(open_sides, key=lambda i: (self.side_time[i + 1], i))]
