"""Tests for the n-ary join planner subsystem.

Three layers are pinned here:

* **Join graphs** — every structural defect (cycle, dangling attribute,
  duplicate relation, disconnection) raises ``ValueError`` with a stable
  message, both from the typed constructors and the payload parser.
* **Enumeration** — a property test drives the Selinger DP against the
  brute-force reference (``all_trees`` + ``tree_cost``) over random
  seeded trees of up to four relations: the best plan must be
  byte-identical and its cost bit-equal, bushy and left-deep alike.
* **Planning** — the pruned and unpruned planner sweeps must choose the
  identical plan at the identical operating point on the seeded multiway
  scenarios, and every bound-pruned assignment must be infeasible in the
  unpruned reference (the tier-A soundness contract).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RetrievalKind
from repro.core.preferences import QualityRequirement
from repro.experiments import build_multiway_testbed
from repro.planner import (
    JoinEdge,
    JoinGraph,
    MultiwayPlanner,
    RelationNode,
    all_trees,
    best_tree,
    count_subplans,
    naive_left_deep_tree,
    tree_cost,
)
from repro.planner.enumerator import EnumerationTallies

HQ = RelationNode(name="HQ", attributes=("Company", "Location"))
EX = RelationNode(name="EX", attributes=("Company", "CEO"))
MG = RelationNode(name="MG", attributes=("Company", "MergedWith"))


def star3():
    return JoinGraph.star([HQ, EX, MG], "Company")


class TestRelationNode:
    def test_rejects_bad_theta(self):
        with pytest.raises(ValueError, match="lie in"):
            RelationNode(name="R", attributes=("a",), thetas=(1.5,))

    def test_rejects_bool_theta(self):
        with pytest.raises(ValueError, match="must be a number"):
            RelationNode(name="R", attributes=("a",), thetas=(True,))

    def test_rejects_duplicate_attributes(self):
        with pytest.raises(ValueError, match="duplicate attributes"):
            RelationNode(name="R", attributes=("a", "a"))

    def test_rejects_join_driven_access_path(self):
        with pytest.raises(ValueError, match="unsupported access path"):
            RelationNode(
                name="R",
                attributes=("a",),
                access_paths=(RetrievalKind.JOIN_DRIVEN,),
            )


class TestJoinGraphValidation:
    def test_accepts_star_and_chain(self):
        assert star3().is_star()
        chain = JoinGraph.chain(
            [MG, EX, HQ], [("Company", "Company"), ("CEO", "Company")]
        )
        assert chain.is_chain()

    def test_rejects_cycle(self):
        edges = (
            JoinEdge("HQ", "Company", "EX", "Company"),
            JoinEdge("EX", "Company", "MG", "Company"),
            JoinEdge("MG", "Company", "HQ", "Company"),
        )
        with pytest.raises(ValueError, match="exactly 2 edges"):
            JoinGraph((HQ, EX, MG), edges)

    def test_rejects_duplicate_relation(self):
        with pytest.raises(ValueError, match="duplicate relation"):
            JoinGraph(
                (HQ, HQ, EX),
                (
                    JoinEdge("HQ", "Company", "EX", "Company"),
                    JoinEdge("EX", "Company", "MG", "Company"),
                ),
            )

    def test_rejects_dangling_attribute(self):
        with pytest.raises(ValueError, match="dangling attribute"):
            JoinGraph(
                (HQ, EX),
                (JoinEdge("HQ", "Ticker", "EX", "Company"),),
            )

    def test_rejects_unknown_relation_in_edge(self):
        with pytest.raises(ValueError, match="unknown relation"):
            JoinGraph(
                (HQ, EX),
                (JoinEdge("HQ", "Company", "ZZ", "Company"),),
            )

    def test_rejects_self_edge(self):
        with pytest.raises(ValueError, match="with itself"):
            JoinEdge("HQ", "Company", "HQ", "Location")

    def test_rejects_duplicate_edge_cycle(self):
        # Two HQ--EX edges over three relations: right edge count but a
        # duplicate pair, leaving MG unreachable.
        with pytest.raises(ValueError, match="duplicate edge"):
            JoinGraph(
                (HQ, EX, MG),
                (
                    JoinEdge("HQ", "Company", "EX", "Company"),
                    JoinEdge("EX", "CEO", "HQ", "Location"),
                ),
            )

    def test_signature_is_order_insensitive_on_edges(self):
        a = star3()
        b = JoinGraph(
            (HQ, EX, MG),
            (
                JoinEdge("HQ", "Company", "MG", "Company"),
                JoinEdge("HQ", "Company", "EX", "Company"),
            ),
        )
        assert a.signature() == b.signature()


class TestPayloadParsing:
    def test_full_payload_round_trip(self):
        graph = JoinGraph.from_payload(
            {
                "relations": [
                    {
                        "name": "HQ",
                        "attributes": ["Company", "Location"],
                        "thetas": [0.4, 0.8],
                        "access_paths": ["SC", "FS"],
                    },
                    "EX",
                ],
                "edges": ["HQ.Company=EX.value"],
            }
        )
        assert graph.names == ("HQ", "EX")
        assert graph.relation("HQ").access_paths == (
            RetrievalKind.SCAN,
            RetrievalKind.FILTERED_SCAN,
        )
        assert graph.relation("EX").attributes == ("value",)

    @pytest.mark.parametrize(
        "payload, message",
        [
            ({"relations": "HQ", "edges": []}, "'relations' must be a list"),
            ({"relations": ["HQ", "EX"], "edges": {}}, "'edges' must be a list"),
            (
                {"relations": ["HQ", "EX"], "edges": ["HQ=EX"]},
                "must look like",
            ),
            (
                {
                    "relations": [{"name": "HQ", "access_paths": ["SCAN"]}, "EX"],
                    "edges": ["HQ.value=EX.value"],
                },
                "is not one of",
            ),
            (
                {
                    "relations": [{"name": "HQ", "thetas": ["hot"]}, "EX"],
                    "edges": ["HQ.value=EX.value"],
                },
                "must be a number",
            ),
            (
                {"relations": ["HQ", "HQ"], "edges": ["HQ.value=HQ.value"]},
                "with itself",
            ),
            (
                {
                    "relations": [f"R{i}" for i in range(20)],
                    "edges": [f"R{i}.value=R{i+1}.value" for i in range(19)],
                },
                "at most",
            ),
        ],
    )
    def test_malformed_payloads_raise_value_error(self, payload, message):
        with pytest.raises(ValueError, match=message):
            JoinGraph.from_payload(payload)


# ---------------------------------------------------------------------------
# enumeration: DP vs brute force
# ---------------------------------------------------------------------------


def _random_tree_graph(n, parents):
    names = [f"R{i}" for i in range(n)]
    relations = tuple(
        RelationNode(name=name, attributes=("value",)) for name in names
    )
    edges = tuple(
        JoinEdge(names[parents[i - 1]], "value", names[i], "value")
        for i in range(1, n)
    )
    return JoinGraph(relations, edges)


def _seeded_sizes(seed):
    """A deterministic pseudo-random subset->size function (stable across
    processes: string seeds hash via SHA-512, not PYTHONHASHSEED)."""

    def size_of(subset):
        rng = random.Random(f"{seed}|{','.join(sorted(subset))}")
        return rng.uniform(0.5, 100.0)

    return size_of


@st.composite
def tree_cases(draw):
    n = draw(st.integers(min_value=2, max_value=4))
    parents = [draw(st.integers(0, i - 1)) for i in range(1, n)]
    seed = draw(st.integers(0, 10**6))
    bushy = draw(st.booleans())
    return n, parents, seed, bushy


class TestEnumerator:
    @given(tree_cases())
    @settings(max_examples=120, deadline=None)
    def test_dp_matches_brute_force(self, case):
        n, parents, seed, bushy = case
        graph = _random_tree_graph(n, parents)
        size_of = _seeded_sizes(seed)
        tallies = EnumerationTallies()
        tree, cost = best_tree(
            graph, size_of, t_join=0.1, bushy=bushy, tallies=tallies
        )
        reference = min(
            all_trees(graph, bushy=bushy),
            key=lambda t: (tree_cost(t, size_of, 0.1), t.describe()),
        )
        assert tree.describe() == reference.describe()
        assert cost == tree_cost(reference, size_of, 0.1)
        # The DP examined exactly the csg-cmp count the topology predicts.
        assert tallies.subplans == count_subplans(graph, bushy=bushy)

    @given(tree_cases())
    @settings(max_examples=60, deadline=None)
    def test_left_deep_never_beats_bushy(self, case):
        n, parents, seed, _ = case
        graph = _random_tree_graph(n, parents)
        size_of = _seeded_sizes(seed)
        _, bushy_cost = best_tree(graph, size_of, t_join=0.1, bushy=True)
        _, left_cost = best_tree(graph, size_of, t_join=0.1, bushy=False)
        assert bushy_cost <= left_cost + 1e-12

    def test_naive_left_deep_follows_graph_order(self):
        tree = naive_left_deep_tree(star3())
        assert tree.describe() == "((HQ * EX) * MG)"

    def test_naive_left_deep_skips_cross_products(self):
        chain = JoinGraph.chain(
            [MG, EX, HQ], [("Company", "Company"), ("CEO", "Company")]
        )
        # Order HQ first: EX is not adjacent... HQ--EX is; MG joins last.
        tree = naive_left_deep_tree(chain, order=("HQ", "MG", "EX"))
        assert tree.describe() == "((HQ * EX) * MG)"

    def test_naive_left_deep_rejects_partial_order(self):
        with pytest.raises(ValueError, match="every relation"):
            naive_left_deep_tree(star3(), order=("HQ", "EX"))


# ---------------------------------------------------------------------------
# planning: pruned vs unpruned identity on the seeded scenarios
# ---------------------------------------------------------------------------

#: per scenario: a meetable requirement, a bound-pruning requirement
#: (between the weak and strong assignments' tier-A ceilings), and an
#: unreachable one
REQUIREMENTS = {
    "star3": [(40, 120), (20000, 10**9), (10**9, 10**9)],
    "chain3": [(40, 250), (1000, 10**9), (10**9, 10**9)],
}


@pytest.fixture(scope="module", params=("star3", "chain3"))
def scenario(request):
    return build_multiway_testbed().scenario(request.param)


@pytest.fixture(scope="module")
def planner(scenario):
    return MultiwayPlanner(scenario.graph, scenario.catalog())


class TestMultiwayPlanner:
    def test_assignment_grid_is_the_full_cross_product(self, planner):
        per_relation = [
            len(node.thetas) * len(node.access_paths)
            for node in planner.graph.relations
        ]
        expected = 1
        for count in per_relation:
            expected *= count
        assert len(planner.assignments()) == expected

    def test_scenario_requirement_is_feasible(self, scenario, planner):
        result = planner.optimize(
            QualityRequirement(scenario.tau_good, scenario.tau_bad)
        )
        assert result.feasible
        assert result.chosen.good >= scenario.tau_good
        assert result.chosen.bad <= scenario.tau_bad
        summary = result.summary()
        assert summary["plan_space"] > 0
        assert summary["chosen"]["plan"] == result.chosen.plan.describe()

    def test_pruned_matches_unpruned_identically(self, scenario, planner):
        for tau_good, tau_bad in REQUIREMENTS[scenario.name]:
            requirement = QualityRequirement(tau_good, tau_bad)
            fast = planner.optimize(requirement, prune=True)
            slow = planner.optimize(requirement, prune=False)
            label = f"{scenario.name}@tg{tau_good}"
            if slow.chosen is None:
                assert fast.chosen is None, label
                continue
            assert fast.chosen is not None, label
            # Byte-identical plan at the identical operating point.
            assert fast.chosen.plan.describe() == slow.chosen.plan.describe()
            assert fast.chosen.effort_fraction == slow.chosen.effort_fraction
            assert fast.chosen.good == slow.chosen.good
            assert fast.chosen.bad == slow.chosen.bad
            assert fast.chosen.total_time == slow.chosen.total_time

    def test_bound_pruned_assignments_are_infeasible_in_reference(
        self, scenario, planner
    ):
        tau_good, tau_bad = REQUIREMENTS[scenario.name][1]
        requirement = QualityRequirement(tau_good, tau_bad)
        fast = planner.optimize(requirement, prune=True)
        slow = planner.optimize(requirement, prune=False)
        assert fast.tallies.assignments_pruned_bound > 0
        assert fast.tallies.subplans_pruned_bound > 0
        # Assignments enumerate in deterministic order, so evaluations align.
        pruned_checked = 0
        for pruned, reference in zip(fast.evaluations, slow.evaluations):
            if not pruned.pruned:
                continue
            pruned_checked += 1
            assert not reference.feasible
        assert pruned_checked == fast.tallies.assignments_pruned_bound

    def test_pruning_skips_work_but_counts_it(self, scenario, planner):
        tau_good, tau_bad = REQUIREMENTS[scenario.name][1]
        fast = planner.optimize(QualityRequirement(tau_good, tau_bad))
        tallies = fast.tallies
        assert tallies.subplans_total == tallies.plan_space
        assert 0.0 < tallies.pruned_fraction <= 1.0

    def test_naive_baseline_is_never_faster(self, scenario, planner):
        requirement = QualityRequirement(scenario.tau_good, scenario.tau_bad)
        chosen = planner.optimize(requirement).chosen
        naive = planner.naive_evaluation(requirement)
        assert naive is not None
        assert chosen.total_time <= naive.total_time + 1e-9

    def test_frontier_sweeps_requirements(self, scenario, planner):
        points = planner.frontier(
            [scenario.tau_good // 2, scenario.tau_good], scenario.tau_bad
        )
        assert [tau for tau, _ in points] == [
            scenario.tau_good // 2,
            scenario.tau_good,
        ]
        assert all(result.feasible for _, result in points)

    def test_rejects_negative_margin(self, scenario):
        with pytest.raises(ValueError, match="margin"):
            MultiwayPlanner(
                scenario.graph, scenario.catalog(), feasibility_margin=-0.1
            )
