"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def scale_args():
    # Tiny testbed keeps CLI tests fast; build_testbed memoizes per config.
    return ["--scale", "0.4", "--seed", "11"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])

    def test_optimize_requires_taus(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["optimize"])


class TestCommands:
    def test_characterize(self, capsys, scale_args):
        assert main(["characterize", *scale_args]) == 0
        out = capsys.readouterr().out
        assert "tp(θ)" in out
        assert "EX" in out and "HQ" in out and "MG" in out

    def test_figures_single(self, capsys, scale_args):
        assert main(["figures", "--figure", "9", "--step", "50", *scale_args]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "est good" in out

    def test_figure12(self, capsys, scale_args):
        assert main(["figures", "--figure", "12", "--step", "50", *scale_args]) == 0
        assert "est |Dr1|" in capsys.readouterr().out

    def test_table2_limited(self, capsys, scale_args):
        assert main(["table2", "--rows", "2", *scale_args]) == 0
        out = capsys.readouterr().out
        assert "chosen plan" in out

    def test_optimize(self, capsys, scale_args):
        code = main(
            ["optimize", "--tau-good", "20", "--tau-bad", "5000", *scale_args]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Chosen:" in out

    def test_optimize_infeasible(self, capsys, scale_args):
        code = main(
            [
                "optimize",
                "--tau-good",
                "99999999",
                "--tau-bad",
                "0",
                *scale_args,
            ]
        )
        assert code == 1

    def test_frontier(self, capsys, scale_args):
        assert main(["frontier", *scale_args]) == 0
        out = capsys.readouterr().out
        assert "frontier" in out.lower()
        assert "precision" in out

    def test_budget(self, capsys, scale_args):
        code = main(["budget", "--time", "1500", *scale_args])
        assert code == 0
        assert "precision" in capsys.readouterr().out

    def test_report(self, capsys, scale_args, tmp_path):
        output = tmp_path / "report.md"
        code = main(
            ["report", "--output", str(output), "--rows", "2", *scale_args]
        )
        assert code == 0
        text = output.read_text()
        assert "# Experiment report" in text
        assert "Figure 9" in text
        assert "Table II" in text
        assert "frontier" in text.lower()
        assert "calibration" in text.lower()

    def test_adaptive(self, capsys):
        # Runs at the standard test scale (0.6): estimation from a small
        # pilot is too noisy on the tiny 0.4-scale corpus to be a stable
        # test target (see EXPERIMENTS.md, estimation calibration).
        code = main(
            [
                "adaptive",
                "--tau-good",
                "40",
                "--tau-bad",
                "99999",
                "--pilot",
                "100",
                "--scale",
                "0.6",
                "--seed",
                "11",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Chosen:" in out
        assert "Requirement met" in out
