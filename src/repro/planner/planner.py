"""The n-ary join planner.

``MultiwayPlanner.optimize`` searches two nested spaces:

1. **Assignments** — the cross product of every relation's theta grid
   and allowed access paths (deterministic order).  Each assignment is
   first screened against its tier-A quality ceiling (``model.bounds``):
   if even the ρ=1 factor caps cannot compose to the target, the whole
   assignment — and every join order under it — is pruned without a
   single effort-curve evaluation.
2. **Join orders** — for surviving assignments, the balanced operating
   point t* is found by bisection, per-subset intermediate sizes are
   evaluated at t*, and the Selinger DP picks the cheapest tree; the
   fully-interleaved n-ary strategy is costed as one more candidate.

Pruning never changes the outcome: a bound-pruned assignment cannot
reach τg at any effort, so exhaustive enumeration rejects it as
infeasible too — the chosen plan is byte-identical with and without
pruning (asserted by tests and the benchmark).
"""

from __future__ import annotations

import itertools
import time as _time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..core.preferences import QualityRequirement
from ..joins.costs import SideCosts
from .catalog import PlannerCatalog
from .enumerator import (
    EnumerationTallies,
    best_tree,
    count_subplans,
    naive_left_deep_tree,
)
from .graph import JoinGraph
from .model import DEFAULT_T_JOIN, GraphCompositionModel
from .plan import (
    ExecutionStrategy,
    MultiwayPlan,
    PlannedEvaluation,
    RelationConfig,
)


@dataclass
class PlannerTallies:
    """Search-space accounting for one ``optimize`` call."""

    assignments: int = 0
    assignments_pruned_bound: int = 0
    assignments_infeasible_good: int = 0
    assignments_infeasible_bad: int = 0
    subplans_enumerated: int = 0
    subplans_pruned_bound: int = 0
    subplans_skipped_infeasible: int = 0
    subplans_dominated: int = 0
    plan_space: int = 0

    @property
    def subplans_total(self) -> int:
        return (
            self.subplans_enumerated
            + self.subplans_pruned_bound
            + self.subplans_skipped_infeasible
        )

    @property
    def pruned_fraction(self) -> float:
        total = self.subplans_total
        return self.subplans_pruned_bound / total if total else 0.0

    def as_counters(self) -> Dict[str, float]:
        return {
            "planner_assignments": float(self.assignments),
            "planner_assignments_pruned_bound": float(self.assignments_pruned_bound),
            "planner_assignments_infeasible_good": float(self.assignments_infeasible_good),
            "planner_assignments_infeasible_bad": float(self.assignments_infeasible_bad),
            "planner_subplans_enumerated": float(self.subplans_enumerated),
            "planner_subplans_pruned_bound": float(self.subplans_pruned_bound),
            "planner_subplans_skipped_infeasible": float(self.subplans_skipped_infeasible),
            "planner_subplans_dominated": float(self.subplans_dominated),
            "planner_plan_space": float(self.plan_space),
        }


@dataclass
class PlannerResult:
    """Outcome of one planning run."""

    graph: JoinGraph
    requirement: QualityRequirement
    chosen: Optional[PlannedEvaluation]
    evaluations: List[PlannedEvaluation]
    tallies: PlannerTallies
    elapsed: float = 0.0

    @property
    def feasible(self) -> bool:
        return self.chosen is not None

    def summary(self) -> Dict[str, object]:
        body: Dict[str, object] = {
            "graph": self.graph.describe(),
            "signature": self.graph.signature(),
            "tau_good": self.requirement.tau_good,
            "tau_bad": self.requirement.tau_bad,
            "feasible": self.feasible,
            "plan_space": self.tallies.plan_space,
            "subplans_enumerated": self.tallies.subplans_enumerated,
            "subplans_pruned": self.tallies.subplans_pruned_bound,
            "pruned_fraction": round(self.tallies.pruned_fraction, 6),
            "elapsed": round(self.elapsed, 6),
        }
        if self.chosen is not None:
            body["chosen"] = self.chosen.summary()
        return body


class MultiwayPlanner:
    """DP join-order planner over one join graph."""

    def __init__(
        self,
        graph: JoinGraph,
        catalog: PlannerCatalog,
        costs: Optional[Mapping[str, SideCosts]] = None,
        t_join: float = DEFAULT_T_JOIN,
        feasibility_margin: float = 0.0,
        clock=_time.perf_counter,
    ) -> None:
        if feasibility_margin < 0:
            raise ValueError("feasibility margin must be non-negative")
        self.graph = graph
        self.catalog = catalog
        self.model = GraphCompositionModel(graph, catalog, costs=costs, t_join=t_join)
        self.feasibility_margin = feasibility_margin
        self._clock = clock
        self._structure_count: Dict[bool, int] = {}

    # ------------------------------------------------------------------

    def assignments(self) -> List[Tuple[RelationConfig, ...]]:
        """Every theta × access-path assignment, in deterministic order."""
        per_relation = [
            [
                RelationConfig(name=node.name, theta=theta, retrieval=kind)
                for theta in node.thetas
                for kind in node.access_paths
            ]
            for node in self.graph.relations
        ]
        return [tuple(combo) for combo in itertools.product(*per_relation)]

    def structure_count(self, bushy: bool = True) -> int:
        cached = self._structure_count.get(bushy)
        if cached is None:
            cached = count_subplans(self.graph, bushy=bushy)
            self._structure_count[bushy] = cached
        return cached

    def target_good(self, requirement: QualityRequirement) -> float:
        return requirement.tau_good * (1.0 + self.feasibility_margin)

    # ------------------------------------------------------------------

    def optimize(
        self,
        requirement: QualityRequirement,
        prune: bool = True,
        bushy: bool = True,
    ) -> PlannerResult:
        started = self._clock()
        tallies = PlannerTallies()
        structure = self.structure_count(bushy)
        target = self.target_good(requirement)
        evaluations: List[PlannedEvaluation] = []
        for assignment in self.assignments():
            tallies.assignments += 1
            evaluations.append(
                self._evaluate_assignment(
                    assignment, requirement, target, structure, prune, bushy, tallies
                )
            )
        tallies.plan_space = tallies.assignments * structure
        feasible = [e for e in evaluations if e.feasible]
        chosen = (
            min(feasible, key=lambda e: (e.total_time, e.plan.describe()))
            if feasible
            else None
        )
        return PlannerResult(
            graph=self.graph,
            requirement=requirement,
            chosen=chosen,
            evaluations=evaluations,
            tallies=tallies,
            elapsed=self._clock() - started,
        )

    def _evaluate_assignment(
        self,
        assignment: Tuple[RelationConfig, ...],
        requirement: QualityRequirement,
        target: float,
        structure: int,
        prune: bool,
        bushy: bool,
        tallies: PlannerTallies,
    ) -> PlannedEvaluation:
        configs = {config.name: config for config in assignment}
        placeholder_tree = naive_left_deep_tree(self.graph)
        if prune:
            bounds = self.model.bounds(configs)
            if bounds.cannot_reach(target):
                tallies.assignments_pruned_bound += 1
                tallies.subplans_pruned_bound += structure
                return PlannedEvaluation(
                    plan=MultiwayPlan(
                        strategy=ExecutionStrategy.PIPELINE,
                        configs=assignment,
                        tree=placeholder_tree,
                    ),
                    feasible=False,
                    pruned=True,
                    reason="bound",
                    bound_good=bounds.good_upper,
                )
        fraction = self.model.balanced_effort_fraction(configs, target)
        if fraction is None:
            tallies.assignments_infeasible_good += 1
            efforts = self.model.balanced_efforts(configs, 1.0)
            total, good = self.model.compose(configs, efforts)
            if prune:
                tallies.subplans_skipped_infeasible += structure
                return PlannedEvaluation(
                    plan=MultiwayPlan(
                        strategy=ExecutionStrategy.PIPELINE,
                        configs=assignment,
                        tree=placeholder_tree,
                    ),
                    feasible=False,
                    reason="tau_good",
                    effort_fraction=1.0,
                    efforts=efforts,
                    good=good,
                    bad=total - good,
                )
            return self._full_evaluation(
                assignment, configs, 1.0, efforts, good, total - good,
                feasible=False, reason="tau_good", bushy=bushy, tallies=tallies,
            )
        efforts = self.model.balanced_efforts(configs, fraction)
        total, good = self.model.compose(configs, efforts)
        bad = total - good
        if bad > requirement.tau_bad:
            tallies.assignments_infeasible_bad += 1
            if prune:
                tallies.subplans_skipped_infeasible += structure
                return PlannedEvaluation(
                    plan=MultiwayPlan(
                        strategy=ExecutionStrategy.PIPELINE,
                        configs=assignment,
                        tree=placeholder_tree,
                    ),
                    feasible=False,
                    reason="tau_bad",
                    effort_fraction=fraction,
                    efforts=efforts,
                    good=good,
                    bad=bad,
                )
            return self._full_evaluation(
                assignment, configs, fraction, efforts, good, bad,
                feasible=False, reason="tau_bad", bushy=bushy, tallies=tallies,
            )
        return self._full_evaluation(
            assignment, configs, fraction, efforts, good, bad,
            feasible=True, reason="", bushy=bushy, tallies=tallies,
        )

    def _full_evaluation(
        self,
        assignment: Tuple[RelationConfig, ...],
        configs: Mapping[str, RelationConfig],
        fraction: float,
        efforts: Mapping[str, float],
        good: float,
        bad: float,
        feasible: bool,
        reason: str,
        bushy: bool,
        tallies: PlannerTallies,
    ) -> PlannedEvaluation:
        size_cache: Dict[FrozenSet[str], float] = {}

        def size_of(subset: FrozenSet[str]) -> float:
            cached = size_cache.get(subset)
            if cached is None:
                cached = self.model.compose(configs, efforts, subset)[0]
                size_cache[subset] = cached
            return cached

        enumeration = EnumerationTallies()
        tree, _ = best_tree(
            self.graph, size_of, self.model.t_join, bushy=bushy, tallies=enumeration
        )
        tallies.subplans_enumerated += enumeration.subplans
        tallies.subplans_dominated += enumeration.dominated
        side_time = self.model.side_time(configs, efforts).total
        candidates: List[PlannedEvaluation] = []
        for strategy, shaped in (
            (ExecutionStrategy.PIPELINE, tree),
            (ExecutionStrategy.INTERLEAVED, None),
        ):
            plan = MultiwayPlan(strategy=strategy, configs=assignment, tree=shaped)
            join_time, intermediates = self.model.join_time(
                plan, configs, efforts, size_of=size_of
            )
            candidates.append(
                PlannedEvaluation(
                    plan=plan,
                    feasible=feasible,
                    reason=reason,
                    effort_fraction=fraction,
                    efforts=dict(efforts),
                    good=good,
                    bad=bad,
                    side_time=side_time,
                    join_time=join_time,
                    intermediates=intermediates,
                )
            )
        return min(candidates, key=lambda e: (e.total_time, e.plan.describe()))

    # ------------------------------------------------------------------

    def naive_evaluation(
        self, requirement: QualityRequirement
    ) -> Optional[PlannedEvaluation]:
        """The naive baseline: default knobs, graph-order left-deep tree.

        Picks each relation's first theta and first access path, finds its
        own balanced operating point, and pays the left-deep pipeline's
        join cost — the plan a planner-less executor would run.
        """
        assignment = tuple(
            RelationConfig(
                name=node.name,
                theta=node.thetas[0],
                retrieval=node.access_paths[0],
            )
            for node in self.graph.relations
        )
        configs = {config.name: config for config in assignment}
        fraction = self.model.balanced_effort_fraction(
            configs, self.target_good(requirement)
        )
        if fraction is None:
            return None
        efforts = self.model.balanced_efforts(configs, fraction)
        total, good = self.model.compose(configs, efforts)
        tree = naive_left_deep_tree(self.graph)
        plan = MultiwayPlan(
            strategy=ExecutionStrategy.PIPELINE, configs=assignment, tree=tree
        )
        join_time, intermediates = self.model.join_time(plan, configs, efforts)
        return PlannedEvaluation(
            plan=plan,
            feasible=(total - good) <= requirement.tau_bad,
            effort_fraction=fraction,
            efforts=dict(efforts),
            good=good,
            bad=total - good,
            side_time=self.model.side_time(configs, efforts).total,
            join_time=join_time,
            intermediates=intermediates,
        )

    def frontier(
        self,
        tau_goods: Sequence[int],
        tau_bad: int,
        prune: bool = True,
    ) -> List[Tuple[int, PlannerResult]]:
        """Planning results across a sweep of τg targets."""
        return [
            (tau_good, self.optimize(QualityRequirement(tau_good, tau_bad), prune=prune))
            for tau_good in tau_goods
        ]
