"""Fault tolerance: execution outcome across fault rate × retry budget.

Runs a fixed IDJN Scan/Scan plan against the canonical testbed with the
databases wrapped in deterministic fault injectors, sweeping the transient
fault rate against the retry budget, and records for each cell whether the
quality contract was still met, the simulated time paid (including
backoff), and the fault/retry/loss accounting.  The expected shape: with
retries available the contract survives moderate fault rates at a modest
simulated-time premium; with a zero retry budget every fault permanently
loses a document and recall erodes with the fault rate.
"""

from repro.core import JoinKind, QualityRequirement, RetrievalKind
from repro.experiments import format_table
from repro.optimizer import bind_plan, enumerate_plans
from repro.robustness import (
    AccessPathUnavailable,
    FaultProfile,
    RetryPolicy,
    harden,
)

FAULT_RATES = (0.0, 0.05, 0.1, 0.2)
RETRY_BUDGETS = (0, 8, None)
REQUIREMENT = QualityRequirement(tau_good=40, tau_bad=10**6)
THETA = 0.4


def _scan_plan(task):
    plans = enumerate_plans(
        task.extractor1.name,
        task.extractor2.name,
        thetas1=(THETA,),
        thetas2=(THETA,),
    )
    for plan in plans:
        if (
            plan.join is JoinKind.IDJN
            and plan.retrieval1 is RetrievalKind.SCAN
            and plan.retrieval2 is RetrievalKind.SCAN
        ):
            return plan
    raise AssertionError("no IDJN Scan/Scan plan enumerated")


def test_fault_tolerance_sweep(benchmark, task, report_sink):
    plan = _scan_plan(task)

    def run():
        rows = []
        for rate in FAULT_RATES:
            for budget in RETRY_BUDGETS:
                environment = harden(
                    task.environment(THETA, THETA),
                    profile=FaultProfile(transient=rate, seed=17),
                    policy=RetryPolicy(retry_budget=budget, seed=17),
                )
                executor = bind_plan(environment, plan)
                try:
                    report = executor.run(requirement=REQUIREMENT).report
                    met = "yes" if report.check(REQUIREMENT) else "no"
                    total_time = report.time.total
                except AccessPathUnavailable:
                    # A bare executor (no adaptive optimizer above it to
                    # degrade) dies when a breaker opens — itself a sweep
                    # outcome worth recording.
                    met = "path down"
                    total_time = executor.session.time.total
                resilience = environment.resilience.report()
                rows.append(
                    (
                        f"{rate:.0%}",
                        "unlimited" if budget is None else str(budget),
                        met,
                        f"{total_time:.0f}",
                        str(resilience.total_faults),
                        str(resilience.retries),
                        f"{resilience.backoff_time:.0f}",
                        str(resilience.documents_lost),
                    )
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report_sink(
        "fault_tolerance",
        format_table(
            [
                "fault rate",
                "retry budget",
                "met",
                "time (s)",
                "faults",
                "retries",
                "backoff (s)",
                "docs lost",
            ],
            rows,
        ),
    )
    # With no faults the contract must hold; the fault-free row is the
    # zero-overhead baseline every other cell is compared against.
    assert rows[0][2] == "yes"
    assert rows[0][4] == "0"
