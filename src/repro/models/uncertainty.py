"""Variance estimates and confidence intervals for quality predictions.

The Section V models predict *expected* good/bad join-tuple counts; this
module adds second moments so the optimizer (and a user) can see how much
an actual execution may scatter around the estimate — the scatter visible
in the paper's Figures 9–11.

Per join value ``a``, the observed occurrence count on one side is modeled
as ``Binomial(f, p)`` with ``f`` the true frequency and ``p`` the
per-occurrence observation probability (extraction rate × document-class
coverage).  This drops the hypergeometric finite-population correction —
slightly conservative (it over-states variance by the factor
``(N-n)/(N-1)``) and uniform across retrieval strategies.

For independent sides, per value:

    E[XY]   = E[X]E[Y]
    Var(XY) = Var(X)Var(Y) + Var(X)E[Y]² + Var(Y)E[X]²

and values are treated as independent when summing (exact for the binomial
approximation; near-exact for scan sampling where couplings are O(1/N)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from .parameters import SideStatistics
from .scheme import SideFactors


@dataclass(frozen=True)
class SideVariances:
    """Per-value variances matching a :class:`SideFactors`."""

    good: Mapping[str, float]
    bad: Mapping[str, float]


@dataclass(frozen=True)
class IntervalEstimate:
    """A mean with a symmetric normal-approximation confidence interval."""

    mean: float
    variance: float
    z: float = 1.96

    @property
    def stddev(self) -> float:
        return math.sqrt(max(self.variance, 0.0))

    @property
    def low(self) -> float:
        return max(0.0, self.mean - self.z * self.stddev)

    @property
    def high(self) -> float:
        return self.mean + self.z * self.stddev

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def occurrence_variances(
    side: SideStatistics, rho_good: float, rho_bad: float
) -> SideVariances:
    """Binomial variances matching :func:`~repro.models.scheme.occurrence_factors`.

    Good occurrences: ``Var = g·p(1-p)`` with ``p = tp·ρg``.  Bad
    occurrences sum two independent binomial parts (bad-in-good documents
    at ``fp·ρg``, bad-in-bad at ``fp·ρb``).
    """
    if not 0.0 <= rho_good <= 1.0 or not 0.0 <= rho_bad <= 1.0:
        raise ValueError("coverage fractions must be within [0, 1]")
    p_good = side.tp * rho_good
    good = {
        value: freq * p_good * (1.0 - p_good)
        for value, freq in side.good_frequency.items()
    }
    p_bad_good = side.fp * rho_good
    p_bad_bad = side.fp * rho_bad
    bad: Dict[str, float] = {}
    for value in side.bad_frequency:
        in_good = side.bad_in_good_frequency.get(value, 0.0)
        in_bad = side.bad_in_bad(value)
        bad[value] = in_good * p_bad_good * (1.0 - p_bad_good) + (
            in_bad * p_bad_bad * (1.0 - p_bad_bad)
        )
    return SideVariances(good=good, bad=bad)


def _product_moments(
    mean_x: float, var_x: float, mean_y: float, var_y: float
) -> Tuple[float, float]:
    """Mean and variance of a product of independent variables."""
    mean = mean_x * mean_y
    variance = (
        var_x * var_y + var_x * mean_y * mean_y + var_y * mean_x * mean_x
    )
    return mean, variance


def compose_with_variance(
    factors1: SideFactors,
    variances1: SideVariances,
    factors2: SideFactors,
    variances2: SideVariances,
    z: float = 1.96,
) -> Tuple[IntervalEstimate, IntervalEstimate]:
    """(good, bad) interval estimates for the per-value composition.

    The bad count aggregates the three mixed components (good×bad,
    bad×good, bad×bad); within one value these share factors and are
    positively correlated, so their variances are combined with the
    conservative sum-of-stddevs bound rather than a plain sum.
    """
    good_mean = good_var = 0.0
    bad_mean = 0.0
    bad_sd_sum_sq = 0.0

    values = sorted(
        set(factors1.good)
        | set(factors1.bad)
        | set(factors2.good)
        | set(factors2.bad)
    )
    for value in values:
        mg1 = factors1.good.get(value, 0.0)
        vg1 = variances1.good.get(value, 0.0)
        mb1 = factors1.bad.get(value, 0.0)
        vb1 = variances1.bad.get(value, 0.0)
        mg2 = factors2.good.get(value, 0.0)
        vg2 = variances2.good.get(value, 0.0)
        mb2 = factors2.bad.get(value, 0.0)
        vb2 = variances2.bad.get(value, 0.0)
        mean, variance = _product_moments(mg1, vg1, mg2, vg2)
        good_mean += mean
        good_var += variance
        sd_sum = 0.0
        for (mx, vx, my, vy) in (
            (mg1, vg1, mb2, vb2),
            (mb1, vb1, mg2, vg2),
            (mb1, vb1, mb2, vb2),
        ):
            mean, variance = _product_moments(mx, vx, my, vy)
            bad_mean += mean
            sd_sum += math.sqrt(max(variance, 0.0))
        bad_sd_sum_sq += sd_sum * sd_sum
    return (
        IntervalEstimate(mean=good_mean, variance=good_var, z=z),
        IntervalEstimate(mean=bad_mean, variance=bad_sd_sum_sq, z=z),
    )
