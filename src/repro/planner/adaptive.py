"""Label-free adaptive planning for multiway joins (Section VI, n-ary).

The planner's catalog normally holds ground-truth statistics.  When only
the databases themselves are available, :class:`AdaptiveMultiwayDriver`
bootstraps them: it scan-pilots every relation without looking at truth
labels, fits the MLE observation model (``estimation.mle``) to each
pilot, and extrapolates the *observed* attribute values and joint keys
to full-corpus frequency estimates,

    ĝ(v) = s(v) · π / p_obs_good        b̂(v) = s(v) · (1 − π) / p_obs_bad

where ``s(v)`` is the pilot's per-document sample count, ``π`` the
fitted good-occurrence share, and ``p_obs_*`` the per-class observation
probabilities (tp·coverage, fp·coverage).  Planning then runs against
the estimated catalog; if the executed plan stops short of the contract
without exhausting its sides, the driver refits from the (larger)
execution sample and replans — the n-ary analogue of the binary
pilot-plan-refit loop.

As in the paper, only *database* statistics are estimated: tp/fp curves
come from the offline knob characterization, and refits treat the
processed sample as uniform coverage — the same first-order
approximation the binary estimator makes for non-scan paths.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, List, Mapping, Optional, Tuple

from ..core.plan import RetrievalKind
from ..core.preferences import QualityRequirement
from ..estimation.mle import ObservationContext, estimate_parameters
from ..extraction.characterization import KnobCharacterization
from ..joins.costs import SideCosts
from ..joins.stats_collector import RelationObservations
from ..models.parameters import SideStatistics
from ..multiway.executor import MultiwayExecution
from .binder import MultiwayEnvironment, bind_multiway_plan
from .catalog import PlannerCatalog, RelationEntry
from .graph import JoinGraph
from .model import DEFAULT_T_JOIN
from .planner import MultiwayPlanner, PlannerResult
from .profile import KeyProfile

#: share of estimated bad occurrences attributed to good documents when
#: the pilot carries no labels to say otherwise (matches
#: ``SideStatistics.from_histograms``).
BAD_IN_GOOD_SHARE = 0.5


@dataclass
class RelationPilot:
    """One relation's label-free sample: attr-0 observations + joint keys."""

    name: str
    theta: float
    documents_processed: int
    observations: RelationObservations
    #: per join-attribute index tuple: joint key -> documents carrying it
    key_samples: Dict[Tuple[int, ...], Counter]
    exhausted: bool = False


@dataclass
class AdaptiveRound:
    """One plan-execute iteration of the adaptive loop."""

    planning: PlannerResult
    execution: Optional[MultiwayExecution] = None
    satisfied: Optional[bool] = None


@dataclass
class AdaptiveMultiwayResult:
    """Everything the adaptive driver did."""

    requirement: QualityRequirement
    pilots: Dict[str, RelationPilot]
    rounds: List[AdaptiveRound] = field(default_factory=list)

    @property
    def final(self) -> AdaptiveRound:
        return self.rounds[-1]

    @property
    def satisfied(self) -> bool:
        return any(r.satisfied for r in self.rounds if r.satisfied is not None)

    def summary(self) -> Dict[str, object]:
        body: Dict[str, object] = {
            "rounds": len(self.rounds),
            "satisfied": self.satisfied,
            "pilot_documents": {
                name: pilot.documents_processed
                for name, pilot in self.pilots.items()
            },
        }
        final = self.final
        body["feasible"] = final.planning.feasible
        if final.planning.chosen is not None:
            body["chosen"] = final.planning.chosen.plan.describe()
        if final.execution is not None:
            comp = final.execution.state.composition
            body["actual_good"] = comp.n_good
            body["actual_bad"] = comp.n_bad
        return body


def _key_index_tuples(indexes: Tuple[int, ...]) -> List[Tuple[int, ...]]:
    """Every non-empty subset of the join-attribute indexes, sorted."""
    return [
        tuple(combo)
        for size in range(1, len(indexes) + 1)
        for combo in combinations(indexes, size)
    ]


class AdaptiveMultiwayDriver:
    """Pilot → estimate → plan → execute → refit for one join graph."""

    def __init__(
        self,
        environment: MultiwayEnvironment,
        graph: JoinGraph,
        characterizations: Mapping[str, KnobCharacterization],
        costs: Optional[Mapping[str, SideCosts]] = None,
        pilot_documents: int = 50,
        pilot_theta: Optional[float] = None,
        feasibility_margin: float = 0.15,
        t_join: float = DEFAULT_T_JOIN,
        max_rounds: int = 2,
        slack: float = 1.5,
    ) -> None:
        if pilot_documents <= 0:
            raise ValueError("pilot_documents must be positive")
        if max_rounds <= 0:
            raise ValueError("max_rounds must be positive")
        missing = [n for n in graph.names if n not in characterizations]
        if missing:
            raise ValueError(
                f"no knob characterization for relation {missing[0]!r}"
            )
        self.environment = environment
        self.graph = graph
        self.characterizations = dict(characterizations)
        self.costs = dict(costs) if costs else {}
        self.pilot_documents = pilot_documents
        self.pilot_theta = pilot_theta
        self.feasibility_margin = feasibility_margin
        self.t_join = t_join
        self.max_rounds = max_rounds
        self.slack = slack

    # ------------------------------------------------------------------
    # Pilot

    def _theta_for(self, name: str) -> float:
        if self.pilot_theta is not None:
            return self.pilot_theta
        # The most permissive knob yields the most signal per document.
        return min(self.graph.relation(name).thetas)

    def _join_indexes(self, name: str) -> Tuple[int, ...]:
        schema = self.environment.extractors[name].schema
        return tuple(
            sorted(
                schema.index_of(attribute)
                for attribute in self.graph.join_attributes(name)
            )
        )

    def pilot(self, name: str) -> RelationPilot:
        """Scan-sample one relation without reading truth labels."""
        theta = self._theta_for(name)
        extractor = self.environment.extractor_at(name, theta)
        retriever = self.environment.retriever(name, RetrievalKind.SCAN)
        indexes = self._join_indexes(name)
        observations = RelationObservations(
            relation=extractor.relation, attribute_index=indexes[0]
        )
        key_samples: Dict[Tuple[int, ...], Counter] = {
            combo: Counter() for combo in _key_index_tuples(indexes)
        }
        processed = 0
        while processed < self.pilot_documents:
            doc = retriever.next_document()
            if doc is None:
                break
            tuples = extractor.extract(doc)
            processed += 1
            observations.record_document(tuples)
            for combo, counter in key_samples.items():
                seen = {
                    tuple(tup.value_of(i) for i in combo) for tup in tuples
                }
                counter.update(seen)
        return RelationPilot(
            name=name,
            theta=theta,
            documents_processed=processed,
            observations=observations,
            key_samples=key_samples,
            exhausted=retriever.exhausted,
        )

    # ------------------------------------------------------------------
    # Estimation

    def _entry(self, name: str, pilot: RelationPilot) -> RelationEntry:
        database = self.environment.database(name)
        extractor = self.environment.extractors[name]
        characterization = self.characterizations[name]
        database_size = len(database)
        coverage = min(
            1.0, max(pilot.documents_processed, 1) / max(database_size, 1)
        )
        context = ObservationContext(
            database_size=database_size,
            coverage=coverage,
            tp=characterization.tp_at(pilot.theta),
            fp=characterization.fp_at(pilot.theta),
            theta=pilot.theta,
        )
        parameters = estimate_parameters(pilot.observations, context)
        share = parameters.good_occurrence_share
        good_scale = share / max(context.p_obs_good, 1e-9)
        bad_scale = (1.0 - share) / max(context.p_obs_bad, 1e-9)
        n_good = int(round(min(parameters.n_good_docs, database_size)))
        n_bad = int(round(min(parameters.n_bad_docs, database_size - n_good)))

        good_frequency = {
            value: count * good_scale
            for value, count in pilot.observations.sample_frequency.items()
        }
        bad_frequency = {
            value: count * bad_scale
            for value, count in pilot.observations.sample_frequency.items()
            if count * bad_scale > 0.0
        }
        bad_in_good = {
            value: freq * BAD_IN_GOOD_SHARE
            for value, freq in bad_frequency.items()
        }

        def side_builder(theta: float) -> SideStatistics:
            return SideStatistics(
                relation=extractor.relation,
                n_documents=database_size,
                n_good_docs=n_good,
                n_bad_docs=n_bad,
                good_frequency=good_frequency,
                bad_frequency=bad_frequency,
                bad_in_good_frequency=bad_in_good,
                tp=characterization.tp_at(theta),
                fp=characterization.fp_at(theta),
                top_k=database.max_results,
            )

        def key_builder(indexes: Tuple[int, ...]) -> KeyProfile:
            samples = pilot.key_samples.get(tuple(indexes))
            if samples is None:
                raise ValueError(
                    f"pilot for {name!r} did not sample key {indexes!r}"
                )
            return KeyProfile(
                relation=extractor.relation,
                attribute_indexes=tuple(indexes),
                good_frequency={
                    key: count * good_scale for key, count in samples.items()
                },
                bad_frequency={
                    key: count * bad_scale for key, count in samples.items()
                },
                bad_in_good_frequency={
                    key: count * bad_scale * BAD_IN_GOOD_SHARE
                    for key, count in samples.items()
                },
            )

        classifier = self.environment.classifiers.get(name)
        return RelationEntry(
            name=name,
            relation=extractor.relation,
            attributes=extractor.schema.attributes,
            database_name=database.name,
            side_builder=side_builder,
            key_builder=key_builder,
            classifier=(
                classifier.measure(database) if classifier is not None else None
            ),
            queries=tuple(self.environment.learned_queries.get(name) or ()),
        )

    def estimated_catalog(
        self, pilots: Mapping[str, RelationPilot]
    ) -> PlannerCatalog:
        return PlannerCatalog(
            entries={
                name: self._entry(name, pilots[name])
                for name in self.graph.names
            }
        )

    # ------------------------------------------------------------------
    # The loop

    def _refit_pilots(
        self,
        pilots: Dict[str, RelationPilot],
        execution: MultiwayExecution,
        thetas: Mapping[str, float],
    ) -> Dict[str, RelationPilot]:
        """Replace a pilot when the execution saw strictly more documents.

        Execution observations were collected at the *chosen* theta, so
        the replacement pilot re-anchors the scale factors there; joint
        keys are recounted from the accumulated state with the same
        per-document deduplication the pilot used.
        """
        refitted = dict(pilots)
        for index, name in enumerate(self.graph.names):
            processed = execution.report.documents_processed.get(index + 1, 0)
            if processed <= pilots[name].documents_processed:
                continue
            indexes = self._join_indexes(name)
            key_samples: Dict[Tuple[int, ...], Counter] = {
                combo: Counter() for combo in _key_index_tuples(indexes)
            }
            by_document: Dict[int, List] = {}
            for tup in execution.state.relation(index + 1):
                by_document.setdefault(tup.document_id, []).append(tup)
            for tuples in by_document.values():
                for combo, counter in key_samples.items():
                    seen = {
                        tuple(tup.value_of(i) for i in combo)
                        for tup in tuples
                    }
                    counter.update(seen)
            refitted[name] = RelationPilot(
                name=name,
                theta=thetas[name],
                documents_processed=processed,
                observations=execution.observations[index],
                key_samples=key_samples,
                exhausted=execution.report.exhausted,
            )
        return refitted

    def run(
        self, requirement: QualityRequirement, prune: bool = True
    ) -> AdaptiveMultiwayResult:
        """Pilot every relation, then plan/execute/refit until satisfied."""
        pilots = {name: self.pilot(name) for name in self.graph.names}
        result = AdaptiveMultiwayResult(requirement=requirement, pilots=pilots)
        for _ in range(self.max_rounds):
            planner = MultiwayPlanner(
                self.graph,
                self.estimated_catalog(pilots),
                costs=self.costs,
                t_join=self.t_join,
                feasibility_margin=self.feasibility_margin,
            )
            planning = planner.optimize(requirement, prune=prune)
            if not planning.feasible:
                result.rounds.append(AdaptiveRound(planning=planning))
                break
            executor = bind_multiway_plan(
                self.environment,
                self.graph,
                planning.chosen,
                model=planner.model,
                slack=self.slack,
            )
            execution = executor.run(requirement)
            comp = execution.state.composition
            satisfied = requirement.satisfied_by(comp.n_good, comp.n_bad)
            result.rounds.append(
                AdaptiveRound(
                    planning=planning, execution=execution, satisfied=satisfied
                )
            )
            if satisfied or execution.report.exhausted:
                break
            pilots = self._refit_pilots(
                pilots,
                execution,
                {
                    config.name: config.theta
                    for config in planning.chosen.plan.configs
                },
            )
        return result
