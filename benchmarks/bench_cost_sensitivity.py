"""Cost-regime sensitivity of plan choice.

EXPERIMENTS.md attributes the difference between the paper's and this
testbed's plan-family crossover to corpus scale and cost constants.  This
bench substantiates the cost half of that claim: under three cost regimes
— the default, a query-expensive regime (remote search API), and a
document-expensive regime (heavy NLP per document, the paper's setting) —
the optimizer's choices across requirement levels shift between plan
families exactly as the economics dictate:

* when per-document work dominates, strategies that *avoid documents*
  (filtering, targeted probing) gain;
* when queries dominate, scan-based strategies gain.

Within each regime, predicted plan choice is validated against the actual
per-plan trajectories executed under the same costs.
"""

import pytest

from repro.core import QualityRequirement, RetrievalKind
from repro.experiments import build_trajectories, format_table
from repro.experiments.table2 import PlanTrajectory, record_trajectory
from repro.joins import CostModel, SideCosts
from repro.optimizer import JoinOptimizer, enumerate_plans

REGIMES = {
    "default": SideCosts(t_retrieve=1.0, t_extract=4.0, t_filter=0.2, t_query=2.0),
    "query-expensive": SideCosts(
        t_retrieve=1.0, t_extract=4.0, t_filter=0.2, t_query=60.0
    ),
    "document-expensive": SideCosts(
        t_retrieve=2.0, t_extract=40.0, t_filter=0.4, t_query=2.0
    ),
}
REQUIREMENTS = ((20, 10**6), (200, 10**6))


@pytest.fixture(scope="module")
def plans(task):
    # Single-θ space keeps 3 regimes × trajectories affordable.
    return enumerate_plans(
        task.extractor1.name,
        task.extractor2.name,
        thetas1=(0.4,),
        thetas2=(0.4,),
    )


def test_cost_regimes_move_the_crossover(benchmark, task, plans, report_sink):
    def run():
        outcome = {}
        for regime, side_costs in REGIMES.items():
            costs = CostModel(side1=side_costs, side2=side_costs)
            original_costs = task.costs
            task.costs = costs
            try:
                trajectories = build_trajectories(task, plans)
                optimizer = JoinOptimizer(
                    task.catalog(), costs=costs, feasibility_margin=0.15
                )
                rows = []
                for tau_good, tau_bad in REQUIREMENTS:
                    requirement = QualityRequirement(tau_good, tau_bad)
                    chosen = optimizer.optimize(plans, requirement).chosen
                    actual = (
                        trajectories[chosen.plan].time_to_meet(requirement)
                        if chosen
                        else None
                    )
                    best = min(
                        (
                            t.time_to_meet(requirement)
                            for t in trajectories.values()
                            if t.time_to_meet(requirement) is not None
                        ),
                        default=None,
                    )
                    rows.append((tau_good, chosen, actual, best))
                outcome[regime] = rows
            finally:
                task.costs = original_costs
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    table = []
    for regime, rows in outcome.items():
        for tau_good, chosen, actual, best in rows:
            table.append(
                (
                    regime,
                    tau_good,
                    chosen.plan.describe() if chosen else "(none)",
                    f"{actual:.0f}" if actual else "MISSED",
                    f"{best:.0f}" if best else "-",
                )
            )
    report_sink(
        "cost_sensitivity",
        format_table(
            ["regime", "tau_g", "chosen plan", "actual time", "best"],
            table,
        ),
    )
    for regime, rows in outcome.items():
        for tau_good, chosen, actual, best in rows:
            assert chosen is not None, (regime, tau_good)
            # The choice actually meets the requirement...
            assert actual is not None, (regime, tau_good)
            # ...within a small factor of the regime's actually-fastest.
            assert actual <= best * 4.0, (regime, tau_good)
    # The chosen plan set is regime-dependent: at least one requirement
    # level gets a different plan under a different cost regime.
    choices_by_regime = {
        regime: tuple(chosen.plan for _, chosen, _, _ in rows)
        for regime, rows in outcome.items()
    }
    assert len(set(choices_by_regime.values())) > 1
