"""Figure 9: estimated vs actual good/bad join tuples for HQ ⋈ EX under
IDJN with Scan on both relations, minSim = 0.4.

Regenerates both series of the figure — the model estimate and the actual
execution measurement — across the percent-of-documents-processed sweep,
and asserts the paper's shape: estimates track actuals (exact at full
coverage for the time model), both series grow with coverage.
"""

import pytest

from repro.experiments import format_accuracy_rows, run_figure9

PERCENTS = (10, 20, 30, 40, 50, 60, 70, 80, 90, 100)


def test_figure9(benchmark, task, report_sink):
    rows = benchmark.pedantic(
        lambda: run_figure9(task, theta=0.4, percents=PERCENTS),
        rounds=1,
        iterations=1,
    )
    report_sink(
        "figure09_idjn_accuracy",
        format_accuracy_rows(
            rows, "Figure 9 — IDJN (Scan/Scan), minSim=0.4: est vs actual"
        ),
    )
    # Shape assertions (the reproduction contract).
    goods = [r.actual_good for r in rows]
    assert goods == sorted(goods)
    final = rows[-1]
    assert final.estimated_good == pytest.approx(final.actual_good, rel=0.35)
    assert final.estimated_bad == pytest.approx(final.actual_bad, rel=0.35)
    assert final.estimated_time == pytest.approx(final.actual_time, rel=0.01)

