"""Edge cases and failure modes across the stack."""

import pytest

from repro.core import (
    ExtractedRelation,
    JoinState,
    QualityRequirement,
    RelationSchema,
    RetrievalKind,
    compose_join,
)
from repro.core.types import ExtractedTuple
from repro.extraction import LinearKnob, OracleExtractor, SnowballExtractor
from repro.joins import Budgets, IndependentJoin, JoinInputs
from repro.models import (
    GeneratingFunction,
    IDJNModel,
    JoinStatistics,
    SideStatistics,
    ZGJNModel,
)
from repro.retrieval import ScanRetriever
from repro.textdb import (
    CorpusConfig,
    HostedRelation,
    RelationSpec,
    World,
    WorldConfig,
    generate_corpus,
    profile_database,
)

HQ = RelationSchema("HQ", ("Company", "Location"))
EX = RelationSchema("EX", ("Company", "CEO"))


def tup(rel, values, good, doc):
    return ExtractedTuple(rel, tuple(values), doc, 1.0, good)


class TestEmptyAndDegenerateJoins:
    def test_join_of_empty_relations(self):
        state = JoinState(HQ, EX)
        assert len(state) == 0
        assert state.composition.n_total == 0
        assert state.distinct_results() == []

    def test_join_with_one_empty_side(self):
        state = JoinState(HQ, EX)
        state.add_left([tup("HQ", ("a", "x"), True, 1)])
        assert len(state) == 0

    def test_compose_join_empty(self):
        comp = compose_join(
            ExtractedRelation(HQ), ExtractedRelation(EX), "Company"
        )
        assert comp.n_total == 0

    def test_no_shared_values(self):
        state = JoinState(HQ, EX)
        state.add_left([tup("HQ", ("a", "x"), True, 1)])
        state.add_right([tup("EX", ("b", "p"), True, 1)])
        assert len(state) == 0


class TestDegenerateKnobs:
    def test_oracle_theta_one_with_flat_curves(self):
        """tp = fp: the knob cannot separate classes, but nothing breaks."""
        oracle = OracleExtractor(
            HQ,
            theta=1.0,
            tp_curve=LinearKnob(1.0, 0.5),
            fp_curve=LinearKnob(1.0, 0.5),
        )
        assert oracle.true_positive_rate(1.0) == oracle.false_positive_rate(1.0)

    def test_snowball_theta_one_extracts_only_pure_contexts(self, mini_world, mini_db1):
        from repro.textdb import pattern_tokens

        extractor = SnowballExtractor(
            mini_world.schemas["HQ"],
            mini_world.entity_dictionary("HQ"),
            pattern_tokens("HQ"),
            theta=1.0,
        )
        for doc in list(mini_db1.documents)[:50]:
            for extracted in extractor.extract(doc):
                assert extracted.confidence == pytest.approx(1.0)


class TestTinyCorpora:
    @pytest.fixture(scope="class")
    def tiny(self):
        spec = RelationSpec(
            schema=HQ,
            secondary_prefix="city",
            n_true_facts=4,
            n_false_facts=2,
            n_secondary=10,
        )
        world = World(WorldConfig(seed=2, n_companies=8, relations=(spec,)))
        database = generate_corpus(
            world,
            CorpusConfig(
                name="tiny",
                seed=3,
                hosted=(HostedRelation("HQ", n_good_docs=3, n_bad_docs=1),),
                n_empty_docs=2,
                max_results=2,
            ),
        )
        return world, database

    def test_profile_of_tiny_corpus(self, tiny):
        _, database = tiny
        profile = profile_database(database, "HQ")
        assert profile.n_documents == 6
        assert profile.n_good_docs == 3

    def test_model_on_tiny_corpus(self, tiny):
        _, database = tiny
        profile = profile_database(database, "HQ")
        side = SideStatistics.from_profile(profile, tp=0.9, fp=0.5, top_k=2)
        statistics = JoinStatistics(side1=side, side2=side)
        model = IDJNModel(statistics, RetrievalKind.SCAN, RetrievalKind.SCAN)
        prediction = model.predict(6, 6)
        assert prediction.n_good >= 0

    def test_execution_on_tiny_corpus(self, tiny):
        world, database = tiny
        from repro.textdb import pattern_tokens

        extractor = SnowballExtractor(
            world.schemas["HQ"],
            world.entity_dictionary("HQ"),
            pattern_tokens("HQ"),
            theta=0.2,
        )
        inputs = JoinInputs(
            database1=database,
            database2=database,
            extractor1=extractor,
            extractor2=extractor,
            join_attribute="Company",
        )
        execution = IndependentJoin(
            inputs, ScanRetriever(database), ScanRetriever(database)
        ).run()
        assert execution.report.exhausted


class TestModelBoundaryInputs:
    def test_side_statistics_class_overflow_rejected(self):
        with pytest.raises(ValueError):
            SideStatistics(
                relation="R",
                n_documents=10,
                n_good_docs=8,
                n_bad_docs=5,
                good_frequency={},
                bad_frequency={},
                bad_in_good_frequency={},
                tp=0.9,
                fp=0.5,
            )

    def test_side_with_no_bad_values(self):
        side = SideStatistics(
            relation="R",
            n_documents=100,
            n_good_docs=50,
            n_bad_docs=0,
            good_frequency={"a": 5.0},
            bad_frequency={},
            bad_in_good_frequency={},
            tp=0.9,
            fp=0.5,
        )
        statistics = JoinStatistics(side1=side, side2=side)
        model = IDJNModel(statistics, RetrievalKind.SCAN, RetrievalKind.SCAN)
        prediction = model.predict(100, 100)
        assert prediction.n_bad == 0.0
        assert prediction.n_good > 0

    def test_zgjn_requires_some_values(self):
        side = SideStatistics(
            relation="R",
            n_documents=10,
            n_good_docs=5,
            n_bad_docs=0,
            good_frequency={},
            bad_frequency={},
            bad_in_good_frequency={},
            tp=0.9,
            fp=0.5,
        )
        with pytest.raises(ValueError):
            ZGJNModel(JoinStatistics(side1=side, side2=side))

    def test_zgjn_all_stall(self):
        """Sides with completely disjoint values: every query stalls."""
        side1 = SideStatistics(
            relation="R1",
            n_documents=10,
            n_good_docs=5,
            n_bad_docs=0,
            good_frequency={"a": 2.0},
            bad_frequency={},
            bad_in_good_frequency={},
            tp=0.9,
            fp=0.5,
        )
        side2 = SideStatistics(
            relation="R2",
            n_documents=10,
            n_good_docs=5,
            n_bad_docs=0,
            good_frequency={"zzz": 2.0},
            bad_frequency={},
            bad_in_good_frequency={},
            tp=0.9,
            fp=0.5,
        )
        with pytest.raises(ValueError):
            ZGJNModel(JoinStatistics(side1=side1, side2=side2))


class TestGeneratingFunctionEdges:
    def test_degenerate_zero_thinned(self):
        gf = GeneratingFunction.degenerate(0)
        assert gf.thinned(0.5).mean() == 0.0

    def test_power_of_degenerate(self):
        gf = GeneratingFunction.degenerate(3)
        assert gf.power(4).mean() == pytest.approx(12.0)

    def test_compose_with_degenerate_zero(self):
        outer = GeneratingFunction([0.5, 0.5])
        inner = GeneratingFunction.degenerate(0)
        composed = outer.compose(inner)
        # f(g(x)) with g ≡ 1 is the constant f(1) = 1 → a point mass at 0.
        assert composed.probability(0) == pytest.approx(1.0)

    def test_truncation_to_zero(self):
        gf = GeneratingFunction.from_histogram({1: 1, 2: 1})
        capped = gf.truncated(0)
        assert capped.probability(0) == pytest.approx(1.0)


class TestRequirementBoundaries:
    def test_zero_good_requirement_stops_immediately(self, mini_db1, mini_db2,
                                                     mini_extractor1,
                                                     mini_extractor2):
        inputs = JoinInputs(
            database1=mini_db1,
            database2=mini_db2,
            extractor1=mini_extractor1,
            extractor2=mini_extractor2,
        )
        execution = IndependentJoin(
            inputs, ScanRetriever(mini_db1), ScanRetriever(mini_db2)
        ).run(QualityRequirement(tau_good=0, tau_bad=10))
        assert execution.report.documents_processed[1] == 0

    def test_zero_bad_tolerance(self, mini_db1, mini_db2, mini_extractor1,
                                mini_extractor2):
        inputs = JoinInputs(
            database1=mini_db1,
            database2=mini_db2,
            extractor1=mini_extractor1,
            extractor2=mini_extractor2,
        )
        execution = IndependentJoin(
            inputs, ScanRetriever(mini_db1), ScanRetriever(mini_db2)
        ).run(QualityRequirement(tau_good=10**6, tau_bad=0))
        # Stops as soon as the first bad join tuple appears.
        assert execution.report.composition.n_bad >= 1
        assert not execution.report.satisfied
