"""Shared-curve plan evaluation and deterministic parallel fan-out.

The optimizer's inner loop bisects every plan's effort axis once per
requirement.  But a plan's effort→(n_good, n_bad, time) curve does not
depend on the requirement at all — only *where on the curve* the answer
lies does.  :class:`PlanEvaluationEngine` therefore precomputes each
plan's curve once, on the dyadic grid ``j/2^m`` (m bounded by the
optimizer's effort resolution and the :attr:`PlanEvaluationEngine.CURVE_M`
cost cap), and answers any requirement with a ``searchsorted`` over the
curve plus — when the bisection budget exceeds the grid resolution — a
float refinement inside the located bracket.

**Byte-for-byte equivalence with bisection.**  The legacy bisection on
``[0, 1]`` probes midpoints ``(lo + hi) / 2`` starting from the exact
floats 0.0 and 1.0, so its first ``m`` probe points are exactly the dyadic
grid fractions ``j/2^m`` — which float64 represents exactly, and which the
grid computes with the same ``fraction * max_effort`` product.  Locating
the transition index on a monotone curve is therefore *identical* to
running those ``m`` bisection steps, and the remaining ``steps - m``
iterations run the original float bisection inside the bracket.  A
determinism test asserts the equality; if a curve ever turns out
non-monotone (a model-contract violation), the engine falls back to index
bisection over the stored curve, which replicates the legacy probe
sequence regardless.

The module also hosts :func:`fork_map`, the deterministic multiprocess
fan-out used by ``optimize(workers=...)`` and the experiment sweeps:
fork-based (the statistics catalogs hold closures that cannot be
pickled), index-ordered (results are reassembled in submission order, so
parallel output is identical to serial), and gracefully degrading to
``None`` (caller runs serial) wherever fork is unavailable.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, TypeVar

import numpy as np

from ..core.plan import JoinPlanSpec
from ..observability.tracer import SpanKind
from ..validation.invariants import active_checker

T = TypeVar("T")


@dataclass(frozen=True)
class PlanCurve:
    """One plan's effort curve sampled on the dyadic fraction grid."""

    plan: JoinPlanSpec
    max_effort: float
    #: grid resolution: fractions are j / 2**grid_m, j = 0..2**grid_m
    grid_m: int
    fractions: np.ndarray
    n_good: np.ndarray
    n_bad: np.ndarray
    time: np.ndarray
    #: whether n_good is non-decreasing along the grid (the model
    #: contract); when False the engine bisects indices instead of
    #: searchsorting values
    monotone: bool

    @property
    def grid_size(self) -> int:
        return 1 << self.grid_m


class PlanEvaluationEngine:
    """Requirement-independent curves shared across all requirements.

    Owned by a :class:`~repro.optimizer.optimizer.JoinOptimizer`; curve
    probes go through the optimizer's memoized predictor, so every effort
    the curve touches is also a warm cache entry for later refinements and
    for ``optimize_within_time``'s budget bisection.
    """

    #: default cap on the curve grid exponent.  The equivalence argument
    #: in the module docstring holds for *any* exponent ≤ the bisection
    #: budget, so the cap is purely a cost knob: eager grid points cost a
    #: model prediction each (the high-effort ones are the most expensive)
    #: while refinement probes below the grid are memoized and shared
    #: across requirements, so a small grid wins once transitions cluster
    #: on a stretch of the effort axis.
    CURVE_M = 4

    def __init__(self, optimizer, curve_m: Optional[int] = None) -> None:
        self._optimizer = optimizer
        self._curve_m = self.CURVE_M if curve_m is None else curve_m
        self._curves: Dict[JoinPlanSpec, PlanCurve] = {}

    def _grid_m(self, max_effort: float) -> int:
        """Grid exponent: effort-resolution sized, never past the budget."""
        steps = self._optimizer._bisection_steps(max_effort)
        resolution_m = max(1, self._optimizer.effort_resolution.bit_length() - 1)
        return min(steps, resolution_m, max(1, self._curve_m))

    def cached_curve(self, plan: JoinPlanSpec) -> Optional[PlanCurve]:
        """The plan's curve if one was already built, else None (no probes)."""
        return self._curves.get(plan)

    def curve(self, plan: JoinPlanSpec) -> PlanCurve:
        """The plan's curve, built on first use (may raise ValueError)."""
        if plan not in self._curves:
            predictor, max_effort = self._optimizer._cached_predictor(plan)
            grid_m = self._grid_m(max_effort)
            size = 1 << grid_m
            with self._optimizer.observability.span(
                SpanKind.PLAN_CURVE,
                f"curve.{plan.join.value.lower()}",
                plan=plan.describe(),
                grid_points=size + 1,
            ):
                fractions = np.arange(size + 1) / size
                predictions = [
                    predictor(float(fraction) * max_effort)
                    for fraction in fractions
                ]
            n_good = np.array([p.n_good for p in predictions])
            curve = PlanCurve(
                plan=plan,
                max_effort=max_effort,
                grid_m=grid_m,
                fractions=fractions,
                n_good=n_good,
                n_bad=np.array([p.n_bad for p in predictions]),
                time=np.array([p.total_time for p in predictions]),
                monotone=bool(np.all(np.diff(n_good) >= 0)),
            )
            checker = active_checker()
            if checker.enabled:
                checker.check_curve(
                    f"engine.curve[{plan.describe()}]",
                    curve.n_good,
                    curve.n_bad,
                    curve.time,
                )
            self._curves[plan] = curve
        return self._curves[plan]

    def minimal_fraction(
        self, plan: JoinPlanSpec, tau_good: float
    ) -> Optional[float]:
        """Smallest effort fraction reaching *tau_good*, or None.

        Result is identical to
        :meth:`~repro.optimizer.optimizer.JoinOptimizer._minimal_fraction`
        run against the plan's memoized predictor.
        """
        predictor, max_effort = self._optimizer._cached_predictor(plan)
        if max_effort <= 0:
            return None
        if plan not in self._curves:
            # Feasibility check before paying for the curve: a plan that
            # cannot reach the target at full effort needs one (memoized)
            # probe, exactly like the legacy bisection's first test, and
            # the probe doubles as the curve's last grid point if a later
            # requirement does build it.
            if predictor(max_effort).n_good < tau_good:
                return None
        curve = self.curve(plan)
        if curve.n_good[-1] < tau_good:
            return None
        steps = self._optimizer._bisection_steps(max_effort)
        grid_steps = min(steps, curve.grid_m)
        size = curve.grid_size
        width = 1 << (curve.grid_m - grid_steps)
        if curve.monotone:
            transition = int(
                np.searchsorted(curve.n_good, tau_good, side="left")
            )
            # Bisection's bracket after grid_steps iterations is the
            # width-aligned interval (hi - width, hi] containing the
            # transition; a predicate true everywhere still leaves
            # hi = width (lo = 0 is never probed).
            transition = max(min(transition, size), 1)
            hi_index = -(-transition // width) * width
            checker = active_checker()
            if checker.enabled:
                checker.check_bracket(
                    f"engine.minimal_fraction[{plan.describe()}]",
                    curve.n_good,
                    tau_good,
                    hi_index,
                    width,
                )
        else:
            lo_index, hi_index = 0, size
            for _ in range(grid_steps):
                mid_index = (lo_index + hi_index) // 2
                if curve.n_good[mid_index] >= tau_good:
                    hi_index = mid_index
                else:
                    lo_index = mid_index
        if steps <= curve.grid_m:
            return hi_index / size
        lo = (hi_index - width) / size
        hi = hi_index / size
        for _ in range(steps - curve.grid_m):
            mid = (lo + hi) / 2.0
            if predictor(mid * max_effort).n_good >= tau_good:
                hi = mid
            else:
                lo = mid
        return hi


# ---------------------------------------------------------------------------
# deterministic multiprocess fan-out
# ---------------------------------------------------------------------------


def fork_map(
    worker: Callable[[int], Tuple[int, T]],
    count: int,
    workers: Optional[int],
) -> Optional[List[T]]:
    """Map *worker* over ``range(count)`` with fork-based processes.

    *worker* must be a module-level function returning ``(index, result)``
    and reading its inputs from module-global state set by the caller
    before this call — fork's copy-on-write semantics carry the state into
    the children, sidestepping pickling (catalogs hold closures).

    Results are reordered by index, so output is deterministic and
    identical to a serial map.  Returns None — meaning "run serial" — when
    *workers* requests no parallelism or the platform cannot fork.
    """
    if workers is None or workers <= 1 or count <= 1:
        return None
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        return None
    try:
        with context.Pool(processes=min(workers, count)) as pool:
            indexed = pool.map(worker, range(count))
    except OSError:
        return None
    indexed.sort(key=lambda item: item[0])
    return [item[1] for item in indexed]
