"""Extracted relations and the good/bad composition of their joins.

This module implements the bookkeeping of Section III-C and V-A of the
paper: extracted relations hold good and bad tuples; attribute-value
*occurrences* inherit tuple labels; and a natural join composes good join
tuples only out of good base tuples.  For a join attribute value ``a`` with
``gr1(a)`` good occurrences observed in R1 and ``gr2(a)`` in R2, the join
contributes ``gr1(a) * gr2(a)`` good tuples (Equation 1), and analogous
cross products for the three bad combinations (good×bad, bad×good,
bad×bad).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from .types import ExtractedTuple, JoinTuple, RelationSchema


class ExtractedRelation:
    """A (growing) relation of tuples produced by an extraction system.

    The relation deduplicates exact ``(values, document_id)`` repeats: the
    paper's models count an attribute value at most once per document
    (footnote 2), and the corpus generator plants mentions accordingly, so a
    duplicate extraction from the same document carries no new information.
    """

    def __init__(self, schema: RelationSchema) -> None:
        self.schema = schema
        self._tuples: List[ExtractedTuple] = []
        self._seen: Set[Tuple[Tuple[str, ...], int]] = set()

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[ExtractedTuple]:
        return iter(self._tuples)

    def add(self, tup: ExtractedTuple) -> bool:
        """Add *tup*; return True if it was new (not a per-document dup)."""
        if tup.relation != self.schema.name:
            raise ValueError(
                f"tuple of relation {tup.relation!r} added to {self.schema.name!r}"
            )
        if len(tup.values) != self.schema.arity:
            raise ValueError(
                f"tuple arity {len(tup.values)} != schema arity {self.schema.arity}"
            )
        key = (tup.values, tup.document_id)
        if key in self._seen:
            return False
        self._seen.add(key)
        self._tuples.append(tup)
        return True

    def extend(self, tuples: Iterable[ExtractedTuple]) -> int:
        """Add many tuples; return how many were new."""
        return sum(1 for t in tuples if self.add(t))

    @property
    def tuples(self) -> Tuple[ExtractedTuple, ...]:
        return tuple(self._tuples)

    def good_tuples(self) -> List[ExtractedTuple]:
        return [t for t in self._tuples if t.is_good]

    def bad_tuples(self) -> List[ExtractedTuple]:
        return [t for t in self._tuples if not t.is_good]

    # -- attribute-value occurrence accounting (Section V-A) ---------------

    def occurrence_counts(self, attribute_index: int) -> Tuple[Counter, Counter]:
        """Per-value counts of good and bad occurrences of an attribute.

        Returns ``(good, bad)`` Counters mapping attribute value -> number
        of occurrences, where each tuple contributes one occurrence of its
        value, labelled by the tuple's own label.  These are the observed
        ``gr_i(a)`` and ``br_i(a)`` quantities of the analysis.
        """
        good: Counter = Counter()
        bad: Counter = Counter()
        for t in self._tuples:
            value = t.value_of(attribute_index)
            if t.is_good:
                good[value] += 1
            else:
                bad[value] += 1
        return good, bad

    def good_values(self, attribute_index: int) -> FrozenSet[str]:
        """The set ``Ag`` of values with at least one good occurrence."""
        good, _ = self.occurrence_counts(attribute_index)
        return frozenset(good)

    def bad_values(self, attribute_index: int) -> FrozenSet[str]:
        """The set ``Ab`` of values with at least one bad occurrence."""
        _, bad = self.occurrence_counts(attribute_index)
        return frozenset(bad)

    def tuples_by_value(
        self, attribute_index: int
    ) -> Dict[str, List[ExtractedTuple]]:
        """Index the relation by one attribute (hash-join build side)."""
        index: Dict[str, List[ExtractedTuple]] = defaultdict(list)
        for t in self._tuples:
            index[t.value_of(attribute_index)].append(t)
        return dict(index)


@dataclass
class JoinComposition:
    """The good/bad breakdown of a join result (Section V-A notation).

    ``n_good`` is |Tgood⋈|; the three bad components correspond to the value
    classes Agb, Abg, Abb (plus cross-label occurrences of shared values).
    """

    n_good: int = 0
    n_good_bad: int = 0
    n_bad_good: int = 0
    n_bad_bad: int = 0

    @property
    def n_bad(self) -> int:
        """|Tbad⋈| = Jgb + Jbg + Jbb."""
        return self.n_good_bad + self.n_bad_good + self.n_bad_bad

    @property
    def n_total(self) -> int:
        return self.n_good + self.n_bad


class JoinState:
    """Incrementally maintained natural join of two extracted relations.

    This is the shared machinery of all three join algorithms (Section IV):
    whenever either side gains new tuples, ``add_left``/``add_right`` join
    them against the *other* side's accumulated tuples — the ripple-join
    update ``(t1 ⋈ Tr2) ∪ (Tr1 ⋈ t2) ∪ (t1 ⋈ t2)`` of Figure 3 — and keep
    the good/bad composition up to date.
    """

    def __init__(
        self,
        left_schema: RelationSchema,
        right_schema: RelationSchema,
        join_attribute: Optional[str] = None,
    ) -> None:
        if join_attribute is None:
            shared = [a for a in left_schema.attributes if a in right_schema.attributes]
            if len(shared) != 1:
                raise ValueError(
                    "join attribute is ambiguous or missing; schemas share "
                    f"{shared!r} — pass join_attribute explicitly"
                )
            join_attribute = shared[0]
        self.join_attribute = join_attribute
        self.left = ExtractedRelation(left_schema)
        self.right = ExtractedRelation(right_schema)
        self.left_index = left_schema.index_of(join_attribute)
        self.right_index = right_schema.index_of(join_attribute)
        self._left_by_value: Dict[str, List[ExtractedTuple]] = defaultdict(list)
        self._right_by_value: Dict[str, List[ExtractedTuple]] = defaultdict(list)
        self._results: List[JoinTuple] = []
        self.composition = JoinComposition()

    def __len__(self) -> int:
        return len(self._results)

    @property
    def results(self) -> Tuple[JoinTuple, ...]:
        return tuple(self._results)

    def results_since(self, start: int) -> List[JoinTuple]:
        """Join tuples produced at or after index *start*.

        The result list is append-only, so incremental consumers (e.g.
        quality estimators called once per retrieval step) can track a
        cursor instead of re-reading everything.
        """
        return self._results[start:]

    def distinct_results(self) -> List[JoinTuple]:
        """One representative per distinct output-value combination.

        The join operates at *occurrence* level (the same fact mentioned
        in several document pairs yields several result tuples — that
        multiplicity is what the quality models count); user-facing output
        usually wants the set semantics this view provides.  A combination
        is kept with its first occurrence; a combination is good if it has
        at least one all-good derivation.
        """
        best: Dict[Tuple[str, ...], JoinTuple] = {}
        for joined in self._results:
            key = joined.values
            held = best.get(key)
            if held is None or (joined.is_good and not held.is_good):
                best[key] = joined
        return list(best.values())

    def add_left(self, tuples: Iterable[ExtractedTuple]) -> List[JoinTuple]:
        """Insert new left tuples; return the join tuples they produced."""
        return self._add(tuples, left_side=True)

    def add_right(self, tuples: Iterable[ExtractedTuple]) -> List[JoinTuple]:
        """Insert new right tuples; return the join tuples they produced."""
        return self._add(tuples, left_side=False)

    def _add(
        self, tuples: Iterable[ExtractedTuple], left_side: bool
    ) -> List[JoinTuple]:
        relation = self.left if left_side else self.right
        own_index = self.left_index if left_side else self.right_index
        own_by_value = self._left_by_value if left_side else self._right_by_value
        other_by_value = self._right_by_value if left_side else self._left_by_value
        produced: List[JoinTuple] = []
        for tup in tuples:
            if not relation.add(tup):
                continue
            value = tup.value_of(own_index)
            own_by_value[value].append(tup)
            for other in other_by_value.get(value, ()):
                left, right = (tup, other) if left_side else (other, tup)
                joined = JoinTuple(
                    left=left,
                    right=right,
                    join_value=value,
                    right_join_index=self.right_index,
                )
                self._results.append(joined)
                self._account(joined)
                produced.append(joined)
        return produced

    def _account(self, joined: JoinTuple) -> None:
        if joined.left.is_good and joined.right.is_good:
            self.composition.n_good += 1
        elif joined.left.is_good:
            self.composition.n_good_bad += 1
        elif joined.right.is_good:
            self.composition.n_bad_good += 1
        else:
            self.composition.n_bad_bad += 1


def compose_join(
    left: ExtractedRelation,
    right: ExtractedRelation,
    join_attribute: str,
) -> JoinComposition:
    """One-shot good/bad composition of ``left ⋈ right`` (Figure 2).

    Computes the composition directly from occurrence counts rather than by
    materializing join tuples:

        |Tgood⋈| = Σ_{a ∈ Agg} gr1(a) · gr2(a)

    and analogously for the bad components over Agb, Abg, Abb — the
    closed-form Equation 1 that the analytical models estimate.
    """
    li = left.schema.index_of(join_attribute)
    ri = right.schema.index_of(join_attribute)
    g1, b1 = left.occurrence_counts(li)
    g2, b2 = right.occurrence_counts(ri)
    comp = JoinComposition()
    for a in set(g1) | set(b1):
        comp.n_good += g1.get(a, 0) * g2.get(a, 0)
        comp.n_good_bad += g1.get(a, 0) * b2.get(a, 0)
        comp.n_bad_good += b1.get(a, 0) * g2.get(a, 0)
        comp.n_bad_bad += b1.get(a, 0) * b2.get(a, 0)
    return comp


@dataclass(frozen=True)
class ValueOverlap:
    """The four join-attribute value classes Agg, Agb, Abg, Abb (Table I)."""

    agg: FrozenSet[str] = field(default_factory=frozenset)
    agb: FrozenSet[str] = field(default_factory=frozenset)
    abg: FrozenSet[str] = field(default_factory=frozenset)
    abb: FrozenSet[str] = field(default_factory=frozenset)

    @classmethod
    def from_value_sets(
        cls,
        ag1: Iterable[str],
        ab1: Iterable[str],
        ag2: Iterable[str],
        ab2: Iterable[str],
    ) -> "ValueOverlap":
        ag1, ab1 = frozenset(ag1), frozenset(ab1)
        ag2, ab2 = frozenset(ag2), frozenset(ab2)
        return cls(
            agg=ag1 & ag2,
            agb=ag1 & ab2,
            abg=ab1 & ag2,
            abb=ab1 & ab2,
        )

    @classmethod
    def from_relations(
        cls,
        left: ExtractedRelation,
        right: ExtractedRelation,
        join_attribute: str,
    ) -> "ValueOverlap":
        li = left.schema.index_of(join_attribute)
        ri = right.schema.index_of(join_attribute)
        return cls.from_value_sets(
            left.good_values(li),
            left.bad_values(li),
            right.good_values(ri),
            right.bad_values(ri),
        )
