"""Chaos/load harness tests.

The harness itself must be trustworthy before its numbers are: every
request ends in exactly one outcome bucket, the emitted payload is
schema-stable JSON, the chaos clock is deterministic and monotone, and a
seeded chaos run against a real in-process service finishes with a
recovered store and zero invariant violations.
"""

import json

import pytest

from repro.service.loadtest import (
    DEFAULT_CHAOS_FAULTS,
    OUTCOMES,
    ChaosClock,
    LoadTestConfig,
    _bench_payload,
    _request_payload,
    _Sample,
    run_local_loadtest,
)


class TestLoadTestConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            LoadTestConfig(requests=0)
        with pytest.raises(ValueError):
            LoadTestConfig(concurrency=0)
        with pytest.raises(ValueError):
            LoadTestConfig(plan_fraction=1.5)

    def test_to_dict_is_json_ready(self):
        config = LoadTestConfig(requests=3, chaos=True, deadline_ms=250.0)
        round_tripped = json.loads(json.dumps(config.to_dict()))
        assert round_tripped["requests"] == 3
        assert round_tripped["chaos"] is True
        assert round_tripped["deadline_ms"] == 250.0


class TestChaosClock:
    def test_never_goes_backwards(self):
        base = iter(float(i) for i in range(10_000)).__next__
        clock = ChaosClock(base=base, jump_rate=0.5, max_jump=10.0, seed=7)
        readings = [clock() for _ in range(200)]
        assert all(b >= a for a, b in zip(readings, readings[1:]))
        assert clock.jumps > 0, "jump_rate=0.5 over 200 draws must jump"

    def test_same_seed_replays_the_same_jumps(self):
        def frozen() -> float:
            return 1000.0

        first = ChaosClock(base=frozen, jump_rate=0.3, seed=11)
        second = ChaosClock(base=frozen, jump_rate=0.3, seed=11)
        assert [first() for _ in range(50)] == [second() for _ in range(50)]

    def test_different_seeds_diverge(self):
        def frozen() -> float:
            return 1000.0

        first = ChaosClock(base=frozen, jump_rate=0.3, seed=1)
        second = ChaosClock(base=frozen, jump_rate=0.3, seed=2)
        assert [first() for _ in range(50)] != [second() for _ in range(50)]


class TestRequestMix:
    def test_payloads_are_deterministic_and_well_formed(self):
        config = LoadTestConfig(requests=40, deadline_ms=500.0, seed=3)
        payloads = [_request_payload(config, i) for i in range(40)]
        assert payloads == [_request_payload(config, i) for i in range(40)]
        modes = {p["mode"] for p in payloads}
        priorities = {p["priority"] for p in payloads}
        assert modes <= {"plan", "execute"} and len(modes) == 2
        assert priorities <= {"high", "normal", "low"}
        assert all(p["deadline_ms"] == 500.0 for p in payloads)

    def test_plan_fraction_extremes(self):
        all_plan = LoadTestConfig(requests=10, plan_fraction=1.0)
        assert all(
            _request_payload(all_plan, i)["mode"] == "plan" for i in range(10)
        )
        all_execute = LoadTestConfig(requests=10, plan_fraction=0.0)
        assert all(
            _request_payload(all_execute, i)["mode"] == "execute"
            for i in range(10)
        )


class TestBenchPayload:
    def test_tallies_and_rates(self):
        config = LoadTestConfig(requests=4)
        samples = [
            _Sample("ok", 0.1),
            _Sample("shed", 0.01),
            _Sample("degraded", 0.02),
            _Sample("ok", 0.3),
        ]
        payload = _bench_payload("local", config, samples, 2.0, None)
        assert payload["schema"] == "bench-service/1"
        assert sum(payload["outcomes"].values()) == len(samples)
        assert set(payload["outcomes"]) == set(OUTCOMES)
        assert payload["outcomes"]["ok"] == 2
        assert payload["shed_rate"] == pytest.approx(0.25)
        assert payload["degrade_rate"] == pytest.approx(0.25)
        assert payload["throughput_rps"] == pytest.approx(2.0)
        # nearest-rank: p50 of 4 samples is the 2nd smallest
        assert payload["latency_seconds"]["p50"] == pytest.approx(0.02)
        assert payload["latency_seconds"]["max"] == pytest.approx(0.3)
        json.dumps(payload)  # JSON-serialisable end to end


class TestLocalChaosRun:
    def test_seeded_chaos_run_is_clean(self, hq_ex_task, tmp_path):
        """The acceptance bar from the issue: a seeded chaos run finishes
        with every request accounted for, the store recovered from a torn
        journal, and zero invariant violations."""
        config = LoadTestConfig(
            requests=8,
            concurrency=4,
            workers=2,
            queue_limit=8,
            pilot_documents=60,
            chaos=True,
            chaos_seed=5,
            seed=5,
            timeout=120.0,
        )
        payload = run_local_loadtest(
            hq_ex_task, str(tmp_path / "store"), config
        )
        assert payload["mode"] == "local"
        assert payload["requests"] == config.requests
        assert sum(payload["outcomes"].values()) == config.requests
        # Chaos must not invent failure modes the ladder doesn't have:
        # nothing hangs (timeout) and nothing escapes classification.
        assert payload["outcomes"]["timeout"] == 0
        assert payload["outcomes"]["error"] == 0
        assert payload["store"]["generation"] > 0
        recovery = payload["recovery"]
        assert recovery is not None
        assert recovery["violations"] == []
        assert recovery["recovered_generation"] >= 0
        facts = recovery["recovery_facts"]
        assert facts["torn_records_dropped"] + facts["shards"] >= 0
        if recovery["journal_tear"] is not None:
            # A mid-record tear was injected; recovery must have dropped
            # the torn tail rather than serving it.
            assert facts["torn_records_dropped"] >= 0
        json.dumps(payload)

    def test_chaos_defaults_to_the_standard_fault_profile(self):
        assert "transient" in DEFAULT_CHAOS_FAULTS
        config = LoadTestConfig(chaos=True)
        assert config.fault_profile == ""


class TestSLOReport:
    def _samples(self):
        return [
            _Sample("ok", 0.1, priority="high", index=0, finished=0.5),
            _Sample("ok", 3.0, priority="normal", index=1, finished=0.8),
            _Sample("shed", 0.01, priority="low", index=2, finished=1.8),
            _Sample("ok", 0.2, priority="normal", index=3, finished=1.9),
        ]

    def test_slo_section_scores_per_priority(self):
        config = LoadTestConfig(requests=4, slo="p50=2s,availability=75")
        payload = _bench_payload("local", config, self._samples(), 2.0, None)
        slo = payload["slo"]
        assert slo["spec"] == "p50=2s,availability=75"
        latency, availability = slo["overall"]
        # 2 bad for latency (the 3s request and the shed), 1 for
        # availability (the shed)
        assert latency["bad"] == 2
        assert availability["bad"] == 1
        assert availability["worst_exemplar"]["id"] == 2
        assert set(slo["priorities"]) == {"high", "normal", "low"}
        normal = slo["priorities"]["normal"]
        assert normal["requests"] == 2
        assert {"run", "last_half"} == set(normal["windows"])
        # the slow normal request finished in the first half; last_half
        # only sees the fast one
        run_latency = normal["windows"]["run"][0]
        half_latency = normal["windows"]["last_half"][0]
        assert run_latency["bad"] == 1
        assert half_latency["bad"] == 0
        json.dumps(payload)

    def test_healthy_flag_follows_overall_burn(self):
        config = LoadTestConfig(requests=4, slo="availability=50")
        samples = [
            _Sample("ok", 0.1, priority="normal", index=i, finished=0.1)
            for i in range(4)
        ]
        payload = _bench_payload("local", config, samples, 1.0, None)
        assert payload["slo"]["healthy"] is True
        samples[0].outcome = "error"
        samples[1].outcome = "error"
        samples[2].outcome = "error"
        payload = _bench_payload("local", config, samples, 1.0, None)
        assert payload["slo"]["healthy"] is False

    def test_empty_spec_disables_the_section(self):
        config = LoadTestConfig(requests=4, slo="")
        payload = _bench_payload("local", config, self._samples(), 2.0, None)
        assert "slo" not in payload


class TestFrontendBenchmark:
    def test_sections_measure_scaling_and_coalescing(
        self, hq_ex_task, tmp_path
    ):
        """One shared service behind both front ends: the async side
        holds idle_scaling times the idle connections (all verified
        live), and duplicate bursts resolve from a single computation
        with answers byte-identical to the threaded (uncoalesced)
        reference."""
        from repro.service.loadtest import run_frontend_benchmark

        config = LoadTestConfig(
            requests=10,
            concurrency=4,
            workers=2,
            queue_limit=8,
            pilot_documents=60,
            plan_fraction=1.0,
            seed=3,
            timeout=120.0,
            idle_connections=6,
            idle_scaling=10,
            duplicate_burst=5,
            burst_rounds=2,
        )
        sections = run_frontend_benchmark(
            hq_ex_task, str(tmp_path / "store"), config
        )
        scaling = sections["connection_scaling"]
        threads_side, async_side = scaling["threads"], scaling["async"]
        assert threads_side["idle"]["live_at_open"] == 6
        assert async_side["idle"]["target"] == 60
        assert async_side["idle"]["live_at_open"] == 60, (
            "every parked async connection must verify live"
        )
        assert scaling["idle_ratio"] >= config.idle_scaling
        assert threads_side["p99_seconds"] > 0
        assert async_side["p99_seconds"] > 0
        assert scaling["equal_p99_tolerance"] == 2.0
        assert isinstance(scaling["equal_p99"], bool)
        # The threaded front end pays a thread per parked connection;
        # the event loop pays none (its handler runs on the loop).
        assert async_side["idle"]["thread_cost"] <= 2
        assert sum(threads_side["outcomes"].values()) == config.requests
        assert sum(async_side["outcomes"].values()) == config.requests

        coalescing = sections["coalescing"]
        assert coalescing["requests"] == 10
        assert coalescing["computations"] == config.burst_rounds, (
            "one optimizer computation per burst round"
        )
        assert coalescing["hit_rate"] >= 0.8, coalescing
        assert coalescing["byte_identical"] is True, coalescing
        for entry in coalescing["rounds_detail"]:
            assert entry["ok"] == config.duplicate_burst
            assert entry["distinct_answers"] == 1
        json.dumps(sections)
