"""Pattern learning for the Snowball-style extractor.

Real Snowball bootstraps extraction patterns from a handful of seed tuples:
it finds sentences where a seed pair co-occurs and generalizes their
contexts into patterns.  This module reproduces that loop over the training
database (the paper trains on NYT96): contexts of seed-fact co-occurrences
are pooled, and tokens are ranked by how much more often they appear in
seed contexts than in the collection at large, so frequent background terms
do not masquerade as patterns.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from ..core.types import Fact, RelationSchema
from ..textdb.database import TextDatabase
from ..textdb.document import Document


def seed_contexts(
    database: TextDatabase,
    schema: RelationSchema,
    entity_dictionaries: Dict[str, FrozenSet[str]],
    seed_facts: Iterable[Fact],
) -> List[List[str]]:
    """Contexts of sentences where a seed pair co-occurs.

    A context is the sentence minus any entity tokens, exactly what the
    extractor will later score; only sentences containing both values of
    some seed fact qualify.
    """
    seeds: Set[Tuple[str, str]] = {
        (f.values[0], f.values[1]) for f in seed_facts
    }
    first_dict = entity_dictionaries[schema.attributes[0]]
    second_dict = entity_dictionaries[schema.attributes[1]]
    entity_tokens = first_dict | second_dict
    contexts: List[List[str]] = []
    for doc in database.documents:
        for sentence in doc.sentences:
            token_set = set(sentence)
            firsts = token_set & first_dict
            seconds = token_set & second_dict
            if not firsts or not seconds:
                continue
            if not any((e1, e2) in seeds for e1 in firsts for e2 in seconds):
                continue
            contexts.append([t for t in sentence if t not in entity_tokens])
    return contexts


def learn_pattern_terms(
    database: TextDatabase,
    schema: RelationSchema,
    entity_dictionaries: Dict[str, FrozenSet[str]],
    seed_facts: Iterable[Fact],
    top_k: int = 40,
    min_count: int = 2,
) -> List[str]:
    """Learn the extractor's pattern term set from seed co-occurrences.

    Tokens are scored by ``count_in_contexts / document_frequency`` — a
    lift-style ratio that favours terms concentrated in seed contexts over
    globally common ones — and the *top_k* highest-lift tokens (appearing
    at least *min_count* times in contexts) become pattern terms.
    """
    if top_k <= 0:
        raise ValueError("top_k must be positive")
    contexts = seed_contexts(database, schema, entity_dictionaries, seed_facts)
    if not contexts:
        raise RuntimeError(
            "no seed co-occurrences found in the training database; "
            "provide more seed facts or a richer training corpus"
        )
    counts: Counter = Counter()
    for context in contexts:
        counts.update(context)
    scored: List[Tuple[float, str]] = []
    for token, count in counts.items():
        if count < min_count:
            continue
        df = database.index.document_frequency(token)
        scored.append((count / max(df, 1), token))
    scored.sort(reverse=True)
    return [token for _, token in scored[:top_k]]
