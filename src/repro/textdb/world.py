"""The synthetic ground-truth world behind the generated corpora.

The paper evaluates on newspaper/blog corpora that embed real facts; this
reproduction substitutes a seeded generative *world*:

* a shared pool of **company** entities whose popularity is Zipf
  distributed — companies are the natural-join attribute, and sharing the
  pool across relations creates the Agg/Agb/Abg/Abb overlap structure of
  Section V-A;
* per relation, a set of **true facts** (extractions of them are good
  tuples) and **false facts** (plausible-but-wrong pairings — rumours,
  misparses — whose extractions are bad tuples);
* per fact, a Zipf-distributed **salience** weight that drives how many
  documents mention it, giving the power-law attribute-frequency
  distributions the paper verified on its corpora (Section VII).

Everything is derived from a single seed, so corpora, statistics and
experiments are exactly reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..core.types import Fact, RelationSchema


@dataclass(frozen=True)
class RelationSpec:
    """Configuration of one extractable relation in the world.

    Attributes
    ----------
    schema:
        Relation schema; the first attribute must be the shared join
        attribute (``Company``).
    secondary_prefix:
        Token prefix for the relation's second-attribute entity pool
        (e.g. ``"person"`` for CEOs, ``"city"`` for locations).
    n_true_facts, n_false_facts:
        How many true/false candidate facts the world holds.
    n_secondary:
        Size of the secondary entity pool.
    """

    schema: RelationSchema
    secondary_prefix: str
    n_true_facts: int = 300
    n_false_facts: int = 200
    n_secondary: int = 400
    #: Name of an earlier-declared relation whose *secondary* entity pool
    #: serves as this relation's first-attribute domain (instead of the
    #: shared company pool).  Enables chain joins: e.g. Residences⟨CEO,
    #: City⟩ with ``primary_pool="EX"`` draws its CEOs from EX's pool.
    primary_pool: Optional[str] = None


@dataclass(frozen=True)
class WorldConfig:
    """Knobs of the generative world."""

    seed: int = 7
    n_companies: int = 400
    company_zipf_exponent: float = 1.0
    fact_zipf_exponent: float = 1.0
    relations: Tuple[RelationSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.n_companies <= 0:
            raise ValueError("n_companies must be positive")
        if not self.relations:
            raise ValueError("a world needs at least one relation")
        names = [spec.schema.name for spec in self.relations]
        if len(set(names)) != len(names):
            raise ValueError("relation names must be distinct")


def zipf_weights(n: int, exponent: float) -> np.ndarray:
    """Normalized Zipf weights ``w_r ∝ r^-exponent`` for ranks 1..n."""
    if n <= 0:
        raise ValueError("n must be positive")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


class World:
    """Materialized ground truth: entities, facts, salience weights."""

    def __init__(self, config: WorldConfig) -> None:
        self.config = config
        rng = random.Random(config.seed)
        self.companies: List[str] = [
            f"comp{i:05d}" for i in range(config.n_companies)
        ]
        self._company_weights = zipf_weights(
            config.n_companies, config.company_zipf_exponent
        )
        self.schemas: Dict[str, RelationSchema] = {}
        self.facts: Dict[str, List[Fact]] = {}
        self.fact_weights: Dict[str, np.ndarray] = {}
        self.secondary_entities: Dict[str, List[str]] = {}
        for spec in config.relations:
            self._materialize_relation(spec, rng)

    def _materialize_relation(self, spec: RelationSpec, rng: random.Random) -> None:
        name = spec.schema.name
        self.schemas[name] = spec.schema
        pool = [
            f"{spec.secondary_prefix}{i:05d}" for i in range(spec.n_secondary)
        ]
        self.secondary_entities[name] = pool
        if spec.primary_pool is None:
            primaries = self.companies
            primary_weights = self._company_weights
        else:
            if spec.primary_pool not in self.secondary_entities:
                raise KeyError(
                    f"{name} chains off {spec.primary_pool!r}, which must be "
                    "declared earlier in the world's relation list"
                )
            primaries = self.secondary_entities[spec.primary_pool]
            primary_weights = zipf_weights(
                len(primaries), self.config.company_zipf_exponent
            )
        np_rng = np.random.default_rng(rng.getrandbits(32))
        facts: List[Fact] = []
        seen: set = set()

        def sample_facts(count: int, is_true: bool) -> None:
            attempts = 0
            produced = 0
            while produced < count and attempts < 50 * count:
                attempts += 1
                company_idx = int(
                    np_rng.choice(len(primaries), p=primary_weights)
                )
                company = primaries[company_idx]
                secondary = pool[int(np_rng.integers(len(pool)))]
                key = (company, secondary)
                if key in seen:
                    continue
                seen.add(key)
                facts.append(
                    Fact(relation=name, values=(company, secondary), is_true=is_true)
                )
                produced += 1
            if produced < count:
                raise RuntimeError(
                    f"could not sample {count} distinct facts for {name}; "
                    "increase entity pool sizes"
                )

        sample_facts(spec.n_true_facts, is_true=True)
        sample_facts(spec.n_false_facts, is_true=False)
        self.facts[name] = facts
        # Salience: shuffle ranks so fact frequency is independent of the
        # order facts were sampled in.
        weights = zipf_weights(len(facts), self.config.fact_zipf_exponent)
        np_rng.shuffle(weights)
        self.fact_weights[name] = weights

    def relation_names(self) -> List[str]:
        return list(self.schemas)

    def true_facts(self, relation: str) -> List[Fact]:
        return [f for f in self.facts[relation] if f.is_true]

    def false_facts(self, relation: str) -> List[Fact]:
        return [f for f in self.facts[relation] if not f.is_true]

    def entity_dictionary(self, relation: str) -> Dict[str, frozenset]:
        """Per-attribute entity dictionaries, simulating a perfect NER.

        Extractors match candidate tuples by locating, within a sentence,
        one token from each attribute's dictionary — standing in for the
        named-entity tagging step of a real IE pipeline.
        """
        schema = self.schemas[relation]
        spec = next(
            s for s in self.config.relations if s.schema.name == relation
        )
        if spec.primary_pool is None:
            first = frozenset(self.companies)
        else:
            first = frozenset(self.secondary_entities[spec.primary_pool])
        return {
            schema.attributes[0]: first,
            schema.attributes[1]: frozenset(self.secondary_entities[relation]),
        }
