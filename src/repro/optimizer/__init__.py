"""Quality-aware join optimization (Section VI).

Plan enumeration, model-driven plan evaluation against (τg, τb)
requirements, plan-to-executor binding, and the end-to-end adaptive
optimizer with on-the-fly parameter estimation.
"""

from .adaptive import (
    AdaptiveJoinExecutor,
    AdaptiveResult,
    PilotWarmStart,
    PosteriorQuality,
    TuplePosterior,
)
from .binder import (
    ExecutionEnvironment,
    bind_plan,
    budgets_from_evaluation,
)
from .catalog import StatisticsCatalog
from .engine import PlanCurve, PlanEvaluationEngine, fork_map
from .enumerator import EXPLICIT_KINDS, enumerate_plans
from .optimizer import (
    JoinOptimizer,
    OptimizationResult,
    PlanEvaluation,
)

__all__ = [
    "EXPLICIT_KINDS",
    "AdaptiveJoinExecutor",
    "AdaptiveResult",
    "ExecutionEnvironment",
    "JoinOptimizer",
    "OptimizationResult",
    "PilotWarmStart",
    "PlanCurve",
    "PlanEvaluation",
    "PlanEvaluationEngine",
    "PosteriorQuality",
    "TuplePosterior",
    "StatisticsCatalog",
    "bind_plan",
    "budgets_from_evaluation",
    "enumerate_plans",
    "fork_map",
]
