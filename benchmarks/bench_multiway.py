"""Extension benchmark: three-way join HQ ⋈ EX ⋈ MG.

Higher-order joins are the paper's declared future work; this bench
exercises the library's n-way extension end-to-end — model prediction,
balanced-effort operating point, execution — and reports the model-vs-
actual composition at three coverage levels, plus how error compounds with
join arity (a bad tuple anywhere poisons the whole dossier, so n-way
precision is below binary precision).
"""

import pytest

from repro.core import QualityRequirement, RetrievalKind
from repro.experiments import format_table
from repro.models import SideStatistics
from repro.multiway import (
    MultiwayIDJNModel,
    MultiwayIndependentJoin,
    MultiwaySide,
)
from repro.retrieval import ScanRetriever
from repro.textdb import profile_database

LAYOUT = (("HQ", "nyt96"), ("EX", "nyt95"), ("MG", "wsj"))


@pytest.fixture(scope="module")
def three_way(testbed):
    databases = [testbed.databases[db] for _, db in LAYOUT]
    extractors = [testbed.extractors[rel].with_theta(0.4) for rel, _ in LAYOUT]
    stats = []
    for (rel, _), db in zip(LAYOUT, databases):
        char = testbed.characterizations[rel]
        stats.append(
            SideStatistics.from_profile(
                profile_database(db, rel),
                tp=char.tp_at(0.4),
                fp=char.fp_at(0.4),
                top_k=db.max_results,
            )
        )
    return databases, extractors, stats


def test_three_way_accuracy(benchmark, three_way, report_sink):
    databases, extractors, stats = three_way
    model = MultiwayIDJNModel(stats, [RetrievalKind.SCAN] * 3)

    def run():
        rows = []
        for percent in (25, 50, 100):
            efforts = [len(db) * percent // 100 for db in databases]
            predicted, predicted_time = model.predict(efforts)
            sides = [
                MultiwaySide(db, ex, ScanRetriever(db), max_documents=n)
                for db, ex, n in zip(databases, extractors, efforts)
            ]
            actual = MultiwayIndependentJoin(sides).run()
            rows.append(
                (
                    percent,
                    predicted.n_good,
                    actual.state.composition.n_good,
                    predicted.n_bad,
                    actual.state.composition.n_bad,
                    f"{predicted_time.total:.0f}",
                    f"{actual.report.time.total:.0f}",
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report_sink(
        "multiway_three_way_accuracy",
        format_table(
            ["%docs", "est good", "act good", "est bad", "act bad",
             "est time", "act time"],
            rows,
        ),
    )
    # Model tracks actual at full coverage; time model exact for scans.
    final = rows[-1]
    assert final[1] == pytest.approx(final[2], rel=0.5)
    assert float(final[5]) == pytest.approx(float(final[6]), rel=0.01)
    # Quality grows with coverage.
    assert [r[2] for r in rows] == sorted(r[2] for r in rows)


def test_arity_compounds_error(benchmark, three_way, report_sink):
    """Precision decreases with join arity — the paper's core hazard,
    amplified: every additional noisy relation multiplies in its errors."""
    databases, extractors, _ = three_way

    def run():
        rows = []
        for arity in (2, 3):
            sides = [
                MultiwaySide(db, ex, ScanRetriever(db))
                for db, ex in zip(databases[:arity], extractors[:arity])
            ]
            comp = MultiwayIndependentJoin(sides).run().state.composition
            precision = comp.n_good / max(comp.n_total, 1)
            rows.append((arity, comp.n_good, comp.n_bad, f"{precision:.3f}"))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report_sink(
        "multiway_arity_precision",
        format_table(["arity", "good", "bad", "precision"], rows),
    )
    precision2 = float(rows[0][3])
    precision3 = float(rows[1][3])
    assert precision3 < precision2
