"""End-to-end observability: tracing, metrics, and estimator-drift telemetry.

The subsystem the production-scale north star needs to *see* where time,
documents, and quality go (DESIGN §6.3):

* :mod:`~repro.observability.tracer` — zero-dependency nested spans with
  JSONL and Chrome-trace (``chrome://tracing`` / Perfetto) export;
* :mod:`~repro.observability.metrics` — counters/gauges/histograms with a
  Prometheus-style text dump;
* :mod:`~repro.observability.drift` — predicted-vs-observed join quality
  snapshots at every MLE refit (Section VI convergence as a time series);
* :mod:`~repro.observability.context` — the shared
  :class:`ObservabilityContext` threaded through executors, retrievers,
  probes, the optimizer, the adaptive driver, and the resilience layer;
* :mod:`~repro.observability.logs` — CLI/library logging configuration.

Everything defaults to the shared no-op context, so an uninstrumented run
is byte-identical to one built without this package.
"""

from .context import (
    NULL_OBSERVABILITY,
    ObservabilityContext,
    ensure_observability,
)
from .drift import DriftSnapshot, DriftTracker
from .logs import configure_logging, get_logger
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import NullTracer, SpanKind, Tracer

__all__ = [
    "NULL_OBSERVABILITY",
    "ObservabilityContext",
    "ensure_observability",
    "DriftSnapshot",
    "DriftTracker",
    "configure_logging",
    "get_logger",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "SpanKind",
    "Tracer",
]
