"""Checkpoint/resume tests: an interrupted execution restored into a
fresh executor must finish with exactly the report of the uninterrupted
run."""

import time

import pytest

from repro.joins import (
    Budgets,
    IndependentJoin,
    JoinInputs,
    OuterInnerJoin,
    ZigZagJoin,
)
from repro.retrieval import Query, ScanRetriever
from repro.robustness import (
    CheckpointError,
    CheckpointManager,
    checkpoint_execution,
    load_checkpoint,
    restore_execution,
    save_checkpoint,
)


@pytest.fixture
def inputs(mini_db1, mini_db2, mini_extractor1, mini_extractor2):
    return JoinInputs(
        database1=mini_db1,
        database2=mini_db2,
        extractor1=mini_extractor1,
        extractor2=mini_extractor2,
    )


@pytest.fixture
def seeds(mini_profile1):
    return [
        Query.of(v) for v, _ in mini_profile1.good_frequency.most_common(3)
    ]


def _idjn(inputs):
    return IndependentJoin(
        inputs,
        ScanRetriever(inputs.database1),
        ScanRetriever(inputs.database2),
    )


def _oijn(inputs):
    return OuterInnerJoin(
        inputs, outer_retriever=ScanRetriever(inputs.database1), outer=1
    )


def _zgjn(inputs, seeds):
    return ZigZagJoin(inputs, seed_queries=seeds)


def _assert_same_outcome(resumed, uninterrupted):
    left, right = resumed.report, uninterrupted.report
    assert left.composition == right.composition
    assert left.documents_processed == right.documents_processed
    assert left.documents_retrieved == right.documents_retrieved
    assert left.queries_issued == right.queries_issued
    assert left.time.total == pytest.approx(right.time.total)
    assert left.exhausted == right.exhausted
    assert repr(resumed.state.composition) == repr(
        uninterrupted.state.composition
    )


class TestIndependentJoinCheckpoint:
    def test_round_trip_matches_uninterrupted_run(self, inputs):
        baseline = _idjn(inputs).run()

        interrupted = _idjn(inputs)
        interrupted.run(budgets=Budgets(max_documents1=40, max_documents2=40))
        snapshot = checkpoint_execution(interrupted)

        fresh = _idjn(inputs)
        restore_execution(fresh, snapshot)
        resumed = fresh.run()
        _assert_same_outcome(resumed, baseline)

    def test_snapshot_is_json_serializable(self, inputs, tmp_path):
        executor = _idjn(inputs)
        executor.run(budgets=Budgets(max_documents1=25, max_documents2=25))
        path = tmp_path / "idjn.json"
        save_checkpoint(executor, str(path))

        fresh = _idjn(inputs)
        load_checkpoint(fresh, str(path))
        assert fresh.session.processed[1] == 25
        assert fresh.session.time.total == pytest.approx(
            executor.session.time.total
        )


class TestOuterInnerJoinCheckpoint:
    def test_round_trip_matches_uninterrupted_run(self, inputs):
        baseline = _oijn(inputs).run()

        interrupted = _oijn(inputs)
        interrupted.run(budgets=Budgets(max_documents1=30))
        snapshot = checkpoint_execution(interrupted)

        fresh = _oijn(inputs)
        restore_execution(fresh, snapshot)
        resumed = fresh.run()
        _assert_same_outcome(resumed, baseline)


class TestZigZagJoinCheckpoint:
    def test_round_trip_matches_uninterrupted_run(self, inputs, seeds):
        baseline = _zgjn(inputs, seeds).run()

        interrupted = _zgjn(inputs, seeds)
        interrupted.run(budgets=Budgets(max_queries1=2, max_queries2=2))
        snapshot = checkpoint_execution(interrupted)

        fresh = _zgjn(inputs, seeds)
        restore_execution(fresh, snapshot)
        resumed = fresh.run()
        _assert_same_outcome(resumed, baseline)


class TestCheckpointValidation:
    def test_rejects_wrong_algorithm(self, inputs, seeds):
        executor = _idjn(inputs)
        executor.run(budgets=Budgets(max_documents1=5, max_documents2=5))
        snapshot = checkpoint_execution(executor)
        with pytest.raises(CheckpointError):
            restore_execution(_zgjn(inputs, seeds), snapshot)

    def test_rejects_started_target(self, inputs):
        executor = _idjn(inputs)
        executor.run(budgets=Budgets(max_documents1=5, max_documents2=5))
        snapshot = checkpoint_execution(executor)
        target = _idjn(inputs)
        target.run(budgets=Budgets(max_documents1=1, max_documents2=1))
        with pytest.raises(CheckpointError):
            restore_execution(target, snapshot)

    def test_rejects_unknown_version(self, inputs):
        executor = _idjn(inputs)
        executor.run(budgets=Budgets(max_documents1=5, max_documents2=5))
        snapshot = checkpoint_execution(executor)
        snapshot["version"] = 99
        with pytest.raises(CheckpointError):
            restore_execution(_idjn(inputs), snapshot)


class TestCheckpointManager:
    def _partial(self, inputs):
        executor = _idjn(inputs)
        executor.run(budgets=Budgets(max_documents1=40, max_documents2=40))
        return executor

    def test_save_load_round_trip(self, inputs, tmp_path):
        baseline = _idjn(inputs).run()
        manager = CheckpointManager(str(tmp_path))
        path = manager.save(self._partial(inputs), "idjn")
        assert path.endswith(CheckpointManager.SUFFIX)

        fresh = _idjn(inputs)
        manager.load(fresh, "idjn")
        resumed = fresh.run()
        _assert_same_outcome(resumed, baseline)

    def test_list_reports_managed_checkpoints(self, inputs, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        executor = self._partial(inputs)
        manager.save(executor, "first")
        manager.save(executor, "second")
        infos = manager.list()
        assert [info.name for info in infos] == ["first", "second"]
        assert all(info.size > 0 for info in infos)

    def test_prune_by_count_keeps_newest(self, inputs, tmp_path):
        manager = CheckpointManager(str(tmp_path), max_count=2)
        executor = self._partial(inputs)
        for name in ("a", "b", "c"):
            manager.save(executor, name)  # save() prunes as it goes
        assert [info.name for info in manager.list()] == ["b", "c"]

    def test_prune_by_age(self, inputs, tmp_path):
        manager = CheckpointManager(str(tmp_path), max_age=60.0)
        executor = self._partial(inputs)
        path = manager.save(executor, "old")
        removed = manager.prune(now=time.time() + 3600.0)
        assert removed == [path]
        assert manager.list() == []

    def test_unbounded_manager_prunes_nothing(self, inputs, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        manager.save(self._partial(inputs), "kept")
        assert manager.prune(now=time.time() + 10**9) == []
        assert len(manager.list()) == 1

    def test_validates_bounds(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(str(tmp_path), max_count=-1)
        with pytest.raises(ValueError):
            CheckpointManager(str(tmp_path), max_age=-1.0)
        with pytest.raises(ValueError):
            CheckpointManager(str(tmp_path), grace=-1.0)

    def test_save_snapshot_round_trips_without_an_executor(
        self, inputs, tmp_path
    ):
        baseline = _idjn(inputs).run()
        manager = CheckpointManager(str(tmp_path))
        snapshot = checkpoint_execution(self._partial(inputs))
        path = manager.save_snapshot(snapshot, "detached")
        assert path == manager.path_of("detached")

        fresh = _idjn(inputs)
        manager.load(fresh, "detached")
        _assert_same_outcome(fresh.run(), baseline)

    def test_grace_window_protects_fresh_checkpoints_from_count_prune(
        self, inputs, tmp_path
    ):
        """Regression: a startup prune racing a concurrent writer must not
        collect the checkpoint the writer just replaced.  Entries younger
        than the grace window survive even past max_count; the bound is
        enforced once they age out."""
        manager = CheckpointManager(
            str(tmp_path), max_count=1, grace=3600.0
        )
        executor = self._partial(inputs)
        for name in ("a", "b", "c"):
            manager.save(executor, name)
        # All three are seconds old — well inside the grace window.
        assert manager.prune(now=time.time()) == []
        assert len(manager.list()) == 3
        # Once the window has passed, max_count applies again.
        removed = manager.prune(now=time.time() + 7200.0)
        assert len(removed) == 2
        assert [info.name for info in manager.list()] == ["c"]

    def test_grace_window_protects_fresh_checkpoints_from_age_prune(
        self, inputs, tmp_path
    ):
        manager = CheckpointManager(
            str(tmp_path), max_age=60.0, grace=3600.0
        )
        path = manager.save(self._partial(inputs), "young")
        # Past max_age but still inside grace: protected.
        assert manager.prune(now=time.time() + 120.0) == []
        # Past both: collected.
        assert manager.prune(now=time.time() + 7200.0) == [path]

    def test_default_grace_is_zero_and_prunes_immediately(
        self, inputs, tmp_path
    ):
        manager = CheckpointManager(str(tmp_path), max_count=1)
        executor = self._partial(inputs)
        manager.save(executor, "a")
        manager.save(executor, "b")  # save() prunes as it goes
        assert [info.name for info in manager.list()] == ["b"]
