"""Optimizer fidelity under estimated statistics (Section VI end-to-end).

The paper's optimizer works from parameters estimated on the fly, not from
ground truth.  This bench compares, across requirement levels, the plan
chosen with (a) the ground-truth ("perfect knowledge") catalog and (b) a
catalog estimated from a scan pilot — scoring both against the *actual*
per-plan trajectories.  The reproduction contract: estimation-informed
choices stay within a small factor of the truth-informed choices' actual
times, and both avoid the order-of-magnitude-slower plans.
"""

import pytest

from repro.core import QualityRequirement
from repro.estimation import ObservationContext, estimate_overlap, estimate_side
from repro.experiments import build_trajectories, format_table
from repro.joins import Budgets, IndependentJoin
from repro.models.parameters import SideStatistics
from repro.optimizer import JoinOptimizer, StatisticsCatalog, enumerate_plans
from repro.retrieval import ScanRetriever

REQUIREMENTS = ((10, 10**5), (60, 10**5), (250, 10**5))


@pytest.fixture(scope="module")
def plans(task):
    return enumerate_plans(task.extractor1.name, task.extractor2.name)


@pytest.fixture(scope="module")
def trajectories(task, plans):
    return build_trajectories(task, plans)


@pytest.fixture(scope="module")
def estimated_catalog(task):
    """Statistics estimated from a 120-document scan pilot (no labels)."""
    inputs = task.inputs(0.4, 0.4)
    pilot = IndependentJoin(
        inputs,
        ScanRetriever(task.database1),
        ScanRetriever(task.database2),
        costs=task.costs,
    ).run(budgets=Budgets(max_documents1=120, max_documents2=120))
    estimates = []
    for side, database, char in (
        (1, task.database1, task.characterization1),
        (2, task.database2, task.characterization2),
    ):
        observations = pilot.observations.side(side)
        context = ObservationContext(
            database_size=len(database),
            coverage=observations.documents_processed / len(database),
            tp=char.tp_at(0.4),
            fp=char.fp_at(0.4),
            theta=0.4,
        )
        estimates.append(
            estimate_side(
                observations,
                context,
                reference=char.confidences,
                top_k=database.max_results,
            )
        )
    overlap = estimate_overlap(
        estimates[0],
        estimates[1],
        pilot.observations.side(1),
        pilot.observations.side(2),
    )

    def builder(side_index, estimate, database, char):
        parameters = estimate.parameters

        def build(theta):
            n_good = int(min(round(parameters.n_good_docs), len(database)))
            n_bad = int(
                min(round(parameters.n_bad_docs), len(database) - n_good)
            )
            return SideStatistics.from_histograms(
                relation=parameters.relation,
                n_documents=len(database),
                n_good_docs=n_good,
                n_bad_docs=n_bad,
                good_histogram=parameters.good_histogram(),
                bad_histogram=parameters.bad_histogram(),
                tp=char.tp_at(theta),
                fp=char.fp_at(theta),
                top_k=database.max_results,
                value_prefix=f"{parameters.relation}:",
            )

        return build

    return StatisticsCatalog(
        side_builder1=builder(1, estimates[0], task.database1, task.characterization1),
        side_builder2=builder(2, estimates[1], task.database2, task.characterization2),
        classifier1=task.offline_classifier_profile1,
        classifier2=task.offline_classifier_profile2,
        queries1=tuple(task.offline_query_stats1),
        queries2=tuple(task.offline_query_stats2),
        overlap=overlap,
        per_value=False,
    )


def test_estimated_vs_truth_informed_choice(
    benchmark, task, plans, trajectories, estimated_catalog, report_sink
):
    def run():
        truth_optimizer = JoinOptimizer(
            task.catalog(), costs=task.costs, feasibility_margin=0.15
        )
        estimated_optimizer = JoinOptimizer(
            estimated_catalog, costs=task.costs, feasibility_margin=0.15
        )
        rows = []
        for tau_good, tau_bad in REQUIREMENTS:
            requirement = QualityRequirement(tau_good, tau_bad)
            actual_best = min(
                (
                    t.time_to_meet(requirement)
                    for t in trajectories.values()
                    if t.time_to_meet(requirement) is not None
                ),
                default=None,
            )
            entries = {}
            for label, optimizer in (
                ("truth", truth_optimizer),
                ("estimated", estimated_optimizer),
            ):
                result = optimizer.optimize(plans, requirement)
                chosen = result.chosen
                actual_time = (
                    trajectories[chosen.plan].time_to_meet(requirement)
                    if chosen is not None
                    else None
                )
                entries[label] = (chosen, actual_time)
            rows.append((requirement, actual_best, entries))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = []
    for requirement, actual_best, entries in rows:
        for label, (chosen, actual_time) in entries.items():
            table.append(
                (
                    requirement.tau_good,
                    label,
                    chosen.plan.describe() if chosen else "(none)",
                    f"{actual_time:.0f}" if actual_time else "MISSED",
                    f"{actual_best:.0f}" if actual_best else "-",
                )
            )
    report_sink(
        "estimated_optimizer_fidelity",
        format_table(
            ["tau_g", "statistics", "chosen plan", "actual time", "best possible"],
            table,
        ),
    )
    for requirement, actual_best, entries in rows:
        truth_chosen, truth_time = entries["truth"]
        est_chosen, est_time = entries["estimated"]
        assert truth_chosen is not None and est_chosen is not None
        # Both choices actually meet the requirement...
        assert truth_time is not None
        assert est_time is not None
        # ...and the estimation-informed choice is within 4x of the
        # truth-informed one (the paper's own adaptive overhead regime).
        assert est_time <= truth_time * 4.0
        # Neither lands on an order-of-magnitude-slower plan.
        assert est_time <= actual_best * 10.0
