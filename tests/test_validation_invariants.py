"""Tests for the runtime invariant layer (`repro.validation.invariants`).

Covers the checker's null-object contract (disabled → no behavioural
change), the raise/collect modes, each domain-specific check, and the
install/restore protocol the differential harness relies on.
"""

import math

import pytest

from repro.joins import Budgets, IndependentJoin, JoinInputs
from repro.retrieval import ScanRetriever
from repro.validation.invariants import (
    InvariantChecker,
    InvariantViolation,
    active_checker,
    disable_selfcheck,
    enable_selfcheck,
    install_checker,
)


@pytest.fixture(autouse=True)
def _restore_active_checker():
    previous = active_checker()
    yield
    install_checker(previous)


class TestCheckerModes:
    def test_default_active_checker_disabled(self):
        # The suite does not set REPRO_SELFCHECK, so the process-wide
        # checker must be a null object.
        assert active_checker().enabled is False

    def test_raising_mode(self):
        checker = InvariantChecker(enabled=True, raise_on_violation=True)
        with pytest.raises(InvariantViolation, match="broke"):
            checker.check(False, "here", "broke")
        assert len(checker.violations) == 1

    def test_collecting_mode(self):
        checker = InvariantChecker(enabled=True, raise_on_violation=False)
        checker.check(False, "a", "first")
        checker.check(True, "a", "fine")
        checker.check(False, "b", "second")
        assert checker.checks_run == 3
        assert [v.message for v in checker.violations] == ["first", "second"]

    def test_install_returns_previous(self):
        original = active_checker()
        mine = InvariantChecker(enabled=True, raise_on_violation=False)
        previous = install_checker(mine)
        assert previous is original
        assert active_checker() is mine

    def test_enable_and_disable_selfcheck(self):
        checker = enable_selfcheck()
        assert active_checker() is checker and checker.enabled
        null = disable_selfcheck()
        assert active_checker() is null and not null.enabled

    def test_reset_clears_state(self):
        checker = InvariantChecker(enabled=True, raise_on_violation=False)
        checker.check(False, "x", "boom")
        checker.check_refit("x", "key", -10.0)
        checker.reset()
        assert checker.checks_run == 0
        assert checker.violations == []
        # After reset, a worse likelihood for the same key passes again.
        checker.check_refit("x", "key", -20.0)
        assert checker.violations == []

    def test_summary_is_json_ready(self):
        checker = InvariantChecker(enabled=True, raise_on_violation=False)
        checker.check(False, "w", "m")
        summary = checker.summary()
        assert summary["enabled"] is True
        assert summary["checks_run"] == 1
        assert summary["violations"] == [{"where": "w", "message": "m"}]


class TestScalarChecks:
    @pytest.fixture
    def checker(self):
        return InvariantChecker(enabled=True, raise_on_violation=False)

    def test_check_finite(self, checker):
        checker.check_finite("w", "x", 1.0)
        checker.check_finite("w", "x", math.inf)
        checker.check_finite("w", "x", math.nan)
        assert len(checker.violations) == 2

    def test_check_unit(self, checker):
        for value in (0.0, 0.5, 1.0, 1.0 + 1e-12):
            checker.check_unit("w", "p", value)
        assert checker.violations == []
        checker.check_unit("w", "p", 1.01)
        checker.check_unit("w", "p", -0.01)
        assert len(checker.violations) == 2

    def test_check_non_negative(self, checker):
        checker.check_non_negative("w", "n", 0.0)
        checker.check_non_negative("w", "n", -1e-12)
        assert checker.violations == []
        checker.check_non_negative("w", "n", -0.5)
        assert len(checker.violations) == 1

    def test_check_composition_and_coverages(self, checker):
        checker.check_composition("w", 1.0, 0.0, 2.5, 0.0)
        checker.check_coverages("w", 0.0, 0.3, 1.0)
        assert checker.violations == []
        checker.check_composition("w", -1.0, 0.0, 0.0, 0.0)
        checker.check_coverages("w", 1.2)
        assert len(checker.violations) == 2


class TestStructuralChecks:
    @pytest.fixture
    def checker(self):
        return InvariantChecker(enabled=True, raise_on_violation=False)

    def test_check_curve_accepts_monotone(self, checker):
        checker.check_curve("w", [0, 1, 2], [0, 0, 1], [0.0, 0.5, 0.5])
        assert checker.violations == []

    def test_check_curve_rejects_decrease(self, checker):
        checker.check_curve("w", [0, 2, 1], [0, 0, 0], [0, 0, 0])
        assert any("decreases" in v.message for v in checker.violations)

    def test_check_bracket_postcondition(self, checker):
        curve = [0.0, 1.0, 2.0, 3.0, 4.0]
        checker.check_bracket("w", curve, tau_good=2.5, hi_index=3, width=1)
        assert checker.violations == []
        # Upper edge below tau: the bracket does not bracket.
        checker.check_bracket("w", curve, tau_good=3.5, hi_index=3, width=1)
        assert len(checker.violations) == 1

    def test_check_bracket_minimality(self, checker):
        curve = [0.0, 1.0, 2.0, 3.0]
        # Lower edge already reaches tau → not minimal.
        checker.check_bracket("w", curve, tau_good=0.5, hi_index=2, width=1)
        assert any("not minimal" in v.message for v in checker.violations)

    def test_check_conservation(self, checker):
        checker.check_conservation("w", 10, 6, 4, 6)
        assert checker.violations == []
        checker.check_conservation("w", 10, 6, 5, 6)
        checker.check_conservation("w", 10, 6, 4, 7)
        assert len(checker.violations) == 2

    def test_check_refit_monotone(self, checker):
        checker.check_refit("w", "fit-a", -100.0)
        checker.check_refit("w", "fit-a", -99.0)
        assert checker.violations == []
        checker.check_refit("w", "fit-a", -120.0)
        assert any("below the earlier" in v.message for v in checker.violations)

    def test_check_refit_distinct_keys_independent(self, checker):
        checker.check_refit("w", "fit-a", -10.0)
        checker.check_refit("w", "fit-b", -999.0)
        assert checker.violations == []


class TestSelfcheckTransparency:
    """With selfcheck enabled, instrumented paths change no numerics."""

    def _run(self, db1, db2, ex1, ex2):
        inputs = JoinInputs(
            database1=db1, database2=db2, extractor1=ex1, extractor2=ex2
        )
        executor = IndependentJoin(
            inputs, ScanRetriever(db1), ScanRetriever(db2)
        )
        result = executor.run(
            budgets=Budgets(max_documents1=120, max_documents2=120)
        )
        return (
            sorted(t.values for t in result.state.left),
            sorted(t.values for t in result.state.right),
            result.observations.side(1).documents_processed,
            result.observations.side(2).documents_processed,
        )

    def test_execution_identical_with_selfcheck(
        self, mini_db1, mini_db2, mini_extractor1, mini_extractor2
    ):
        disable_selfcheck()
        baseline = self._run(mini_db1, mini_db2, mini_extractor1, mini_extractor2)
        enable_selfcheck()
        checked = self._run(mini_db1, mini_db2, mini_extractor1, mini_extractor2)
        assert checked == baseline

    def test_selfcheck_run_executes_invariant_checks(
        self, mini_db1, mini_db2, mini_extractor1, mini_extractor2
    ):
        checker = enable_selfcheck(raise_on_violation=False)
        self._run(mini_db1, mini_db2, mini_extractor1, mini_extractor2)
        assert checker.checks_run > 0
        assert checker.violations == []
