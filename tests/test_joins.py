"""Tests for the three join algorithms (IDJN, OIJN, ZGJN)."""

import pytest

from repro.core import QualityRequirement, compose_join
from repro.joins import (
    ActualQuality,
    Budgets,
    CostModel,
    IndependentJoin,
    JoinInputs,
    OuterInnerJoin,
    SideCosts,
    ZigZagJoin,
)
from repro.retrieval import Query, ScanRetriever


@pytest.fixture
def inputs(mini_db1, mini_db2, mini_extractor1, mini_extractor2):
    return JoinInputs(
        database1=mini_db1,
        database2=mini_db2,
        extractor1=mini_extractor1,
        extractor2=mini_extractor2,
    )


@pytest.fixture
def seeds(mini_profile1):
    return [
        Query.of(v) for v, _ in mini_profile1.good_frequency.most_common(3)
    ]


class TestIndependentJoin:
    def test_full_scan_matches_offline_join(self, inputs):
        execution = IndependentJoin(
            inputs, ScanRetriever(inputs.database1), ScanRetriever(inputs.database2)
        ).run()
        state = execution.state
        offline = compose_join(state.left, state.right, "Company")
        assert state.composition.n_good == offline.n_good
        assert state.composition.n_bad == offline.n_bad
        assert execution.report.exhausted

    def test_processes_all_documents_at_exhaustion(self, inputs):
        execution = IndependentJoin(
            inputs, ScanRetriever(inputs.database1), ScanRetriever(inputs.database2)
        ).run()
        assert execution.report.documents_processed[1] == len(inputs.database1)
        assert execution.report.documents_processed[2] == len(inputs.database2)

    def test_document_budgets_respected(self, inputs):
        execution = IndependentJoin(
            inputs, ScanRetriever(inputs.database1), ScanRetriever(inputs.database2)
        ).run(budgets=Budgets(max_documents1=30, max_documents2=40))
        assert execution.report.documents_processed[1] == 30
        assert execution.report.documents_processed[2] == 40

    def test_retrieved_budget_respected(self, inputs):
        execution = IndependentJoin(
            inputs, ScanRetriever(inputs.database1), ScanRetriever(inputs.database2)
        ).run(budgets=Budgets(max_retrieved1=25, max_retrieved2=25))
        assert execution.report.documents_retrieved[1] == 25
        assert execution.report.documents_retrieved[2] == 25

    def test_quality_requirement_stops_early(self, inputs):
        requirement = QualityRequirement(tau_good=10, tau_bad=10**6)
        execution = IndependentJoin(
            inputs, ScanRetriever(inputs.database1), ScanRetriever(inputs.database2)
        ).run(requirement)
        assert execution.report.composition.n_good >= 10
        assert execution.report.documents_processed[1] < len(inputs.database1)
        assert execution.report.satisfied

    def test_bad_bound_stops_execution(self, inputs):
        requirement = QualityRequirement(tau_good=10**6, tau_bad=5)
        execution = IndependentJoin(
            inputs, ScanRetriever(inputs.database1), ScanRetriever(inputs.database2)
        ).run(requirement)
        assert execution.report.composition.n_bad >= 6
        assert not execution.report.satisfied

    def test_time_accounting_exact_for_scan(self, inputs):
        costs = CostModel(
            side1=SideCosts(t_retrieve=1.0, t_extract=4.0),
            side2=SideCosts(t_retrieve=2.0, t_extract=3.0),
        )
        execution = IndependentJoin(
            inputs,
            ScanRetriever(inputs.database1),
            ScanRetriever(inputs.database2),
            costs=costs,
        ).run(budgets=Budgets(max_documents1=10, max_documents2=10))
        assert execution.report.time.total == pytest.approx(
            10 * (1 + 4) + 10 * (2 + 3)
        )

    def test_rectangle_rates(self, inputs):
        requirement = QualityRequirement(tau_good=20, tau_bad=10**6)
        execution = IndependentJoin(
            inputs,
            ScanRetriever(inputs.database1),
            ScanRetriever(inputs.database2),
            rates=(2, 1),
        ).run(requirement)
        p1 = execution.report.documents_processed[1]
        p2 = execution.report.documents_processed[2]
        # Side 1 advances twice as fast while both sides are open.
        assert p1 == pytest.approx(2 * p2, abs=2)

    def test_resumable(self, inputs):
        join = IndependentJoin(
            inputs, ScanRetriever(inputs.database1), ScanRetriever(inputs.database2)
        )
        first = join.run(budgets=Budgets(max_documents1=10, max_documents2=10))
        assert first.report.documents_processed[1] == 10
        second = join.run(budgets=Budgets(max_documents1=25, max_documents2=25))
        # The session continued: budgets are absolute totals.
        assert second.report.documents_processed[1] == 25
        assert second.state is first.state
        assert second.report.time.total > first.report.time.total

    def test_retriever_database_validated(self, inputs):
        with pytest.raises(ValueError):
            IndependentJoin(
                inputs,
                ScanRetriever(inputs.database2),
                ScanRetriever(inputs.database2),
            )

    def test_observations_collected(self, inputs):
        execution = IndependentJoin(
            inputs, ScanRetriever(inputs.database1), ScanRetriever(inputs.database2)
        ).run(budgets=Budgets(max_documents1=50, max_documents2=50))
        side = execution.observations.side(1)
        assert side.documents_processed == 50
        assert side.distinct_values > 0
        assert side.value_confidences

    def test_progress_hook_called(self, inputs):
        calls = []
        join = IndependentJoin(
            inputs, ScanRetriever(inputs.database1), ScanRetriever(inputs.database2)
        )
        join.on_progress = lambda state, time: calls.append(time.total)
        join.run(budgets=Budgets(max_documents1=10, max_documents2=10))
        assert len(calls) >= 10
        assert calls == sorted(calls)


class TestOuterInnerJoin:
    def test_probes_inner_for_outer_values(self, inputs):
        execution = OuterInnerJoin(
            inputs, ScanRetriever(inputs.database1), outer=1
        ).run(budgets=Budgets(max_documents1=60))
        report = execution.report
        assert report.queries_issued[2] > 0
        assert report.documents_processed[2] > 0
        # Every inner document was retrieved by a query for an outer join
        # value, so it must contain at least one such value token.
        outer_values = {t.value_of(0) for t in execution.state.left}
        for tup in execution.state.right:
            doc = inputs.database2.get(tup.document_id)
            assert doc.token_set() & outer_values

    def test_outer_side_two(self, inputs):
        execution = OuterInnerJoin(
            inputs, ScanRetriever(inputs.database2), outer=2
        ).run(budgets=Budgets(max_documents2=60))
        assert execution.report.queries_issued[1] > 0

    def test_queries_deduplicated(self, inputs):
        execution = OuterInnerJoin(
            inputs, ScanRetriever(inputs.database1), outer=1
        ).run(budgets=Budgets(max_documents1=120))
        outer_values = {t.value_of(0) for t in execution.state.left}
        assert execution.report.queries_issued[2] <= len(outer_values)

    def test_inner_query_budget(self, inputs):
        execution = OuterInnerJoin(
            inputs, ScanRetriever(inputs.database1), outer=1
        ).run(budgets=Budgets(max_documents1=120, max_queries2=5))
        assert execution.report.queries_issued[2] <= 5

    def test_invalid_outer(self, inputs):
        with pytest.raises(ValueError):
            OuterInnerJoin(inputs, ScanRetriever(inputs.database1), outer=3)

    def test_outer_retriever_database_checked(self, inputs):
        with pytest.raises(ValueError):
            OuterInnerJoin(inputs, ScanRetriever(inputs.database2), outer=1)

    def test_time_includes_query_costs(self, inputs):
        costs = CostModel(side2=SideCosts(t_query=10.0))
        execution = OuterInnerJoin(
            inputs, ScanRetriever(inputs.database1), costs=costs, outer=1
        ).run(budgets=Budgets(max_documents1=40))
        queries = execution.report.queries_issued[2]
        assert execution.report.time.querying == pytest.approx(10.0 * queries)

    def test_resumable(self, inputs):
        join = OuterInnerJoin(inputs, ScanRetriever(inputs.database1), outer=1)
        first = join.run(budgets=Budgets(max_documents1=15))
        second = join.run(budgets=Budgets(max_documents1=40))
        assert second.report.documents_processed[join.outer] == 40
        assert second.state is first.state


class TestZigZagJoin:
    def test_runs_from_seeds(self, inputs, seeds):
        execution = ZigZagJoin(inputs, seeds).run(
            budgets=Budgets(max_queries1=10, max_queries2=10)
        )
        report = execution.report
        assert report.queries_issued[1] >= 1
        assert report.documents_processed[1] > 0

    def test_needs_seeds(self, inputs):
        with pytest.raises(ValueError):
            ZigZagJoin(inputs, [])

    def test_alternates_between_databases(self, inputs, seeds):
        execution = ZigZagJoin(inputs, seeds).run(
            budgets=Budgets(max_queries1=20, max_queries2=20)
        )
        assert execution.report.documents_processed[1] > 0
        assert execution.report.documents_processed[2] > 0

    def test_reachability_bounded_by_interface(self, inputs, seeds):
        """ZGJN cannot reach every document: the top-k interface caps it."""
        execution = ZigZagJoin(inputs, seeds).run()
        report = execution.report
        assert report.documents_processed[1] < len(inputs.database1)

    def test_quality_stop(self, inputs, seeds):
        execution = ZigZagJoin(inputs, seeds).run(
            QualityRequirement(tau_good=5, tau_bad=10**6)
        )
        assert execution.report.composition.n_good >= 5

    def test_query_budgets(self, inputs, seeds):
        execution = ZigZagJoin(inputs, seeds).run(
            budgets=Budgets(max_queries1=3, max_queries2=2)
        )
        assert execution.report.queries_issued[1] <= 3
        assert execution.report.queries_issued[2] <= 2

    def test_resumable(self, inputs, seeds):
        join = ZigZagJoin(inputs, seeds)
        first = join.run(budgets=Budgets(max_queries1=2, max_queries2=2))
        second = join.run(budgets=Budgets(max_queries1=8, max_queries2=8))
        assert second.report.queries_issued[1] >= first.report.queries_issued[1]
        assert second.report.documents_processed[1] >= (
            first.report.documents_processed[1]
        )
        assert second.state is first.state

    def test_incremental_state_consistent(self, inputs, seeds):
        execution = ZigZagJoin(inputs, seeds).run(
            budgets=Budgets(max_queries1=15, max_queries2=15)
        )
        state = execution.state
        offline = compose_join(state.left, state.right, "Company")
        assert state.composition.n_good == offline.n_good
        assert state.composition.n_bad == offline.n_bad


class TestActualQuality:
    def test_reads_ground_truth(self, inputs):
        execution = IndependentJoin(
            inputs, ScanRetriever(inputs.database1), ScanRetriever(inputs.database2)
        ).run(budgets=Budgets(max_documents1=50, max_documents2=50))
        good, bad = ActualQuality().estimate(execution.state)
        assert good == execution.report.composition.n_good
        assert bad == execution.report.composition.n_bad
