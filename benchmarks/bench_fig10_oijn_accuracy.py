"""Figure 10: estimated vs actual good/bad join tuples for HQ ⋈ EX under
OIJN with Scan for the outer relation, minSim = 0.4.

The paper reports close agreement for good tuples and a tendency to
*overestimate* bad tuples for OIJN (traced to frequent-but-rarely-extracted
outlier values); the shape assertions require trend agreement and a bounded
deviation rather than exactness.
"""

import pytest

from repro.experiments import format_accuracy_rows, run_figure10

PERCENTS = (10, 20, 30, 40, 50, 60, 70, 80, 90, 100)


def test_figure10(benchmark, task, report_sink):
    rows = benchmark.pedantic(
        lambda: run_figure10(task, theta=0.4, percents=PERCENTS),
        rounds=1,
        iterations=1,
    )
    report_sink(
        "figure10_oijn_accuracy",
        format_accuracy_rows(
            rows, "Figure 10 — OIJN (Scan outer), minSim=0.4: est vs actual"
        ),
    )
    goods = [r.actual_good for r in rows]
    assert goods == sorted(goods)
    final = rows[-1]
    assert final.estimated_good == pytest.approx(final.actual_good, rel=0.5)
    assert final.estimated_bad == pytest.approx(final.actual_bad, rel=0.5)
    assert final.estimated_time == pytest.approx(final.actual_time, rel=0.25)
