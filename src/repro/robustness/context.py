"""The resilience context: retry + breaker + accounting for one execution.

Retrieval strategies and query probes route every database access through
:meth:`ResilienceContext.call` instead of calling the database raw.  The
context:

* consults the access path's :class:`~repro.robustness.breaker.CircuitBreaker`
  and rejects immediately (raising :class:`AccessPathUnavailable`) when the
  path is down;
* retries retryable faults under the :class:`~repro.robustness.retry.RetryPolicy`,
  accounting simulated backoff time;
* raises :class:`AccessFailedError` when one operation exhausts its retry
  allowance — callers must treat this as *access failed*, never as "the
  query matched nothing";
* aggregates everything into a
  :class:`~repro.core.quality.ResilienceReport` for the execution report.

One context is shared by every retriever/probe/executor of one logical
execution (including adaptive re-planning across plan switches), so the
final report covers the whole run.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, List, Optional, TypeVar

from ..core.quality import ResilienceReport
from ..observability.context import NULL_OBSERVABILITY
from ..observability.tracer import SpanKind
from .breaker import CircuitBreaker
from .deadline import Deadline
from .faults import RETRYABLE_ERRORS, FaultInjectingDatabase
from .retry import RetryPolicy

T = TypeVar("T")


class AccessFailedError(RuntimeError):
    """One database operation failed even after retrying.

    Distinct from an empty result: callers skip or requeue the operation
    and must not record it as "matched nothing" (which would silently skew
    the s(a) sample frequencies feeding the MLE estimator).
    """

    def __init__(self, path: str, cause: Optional[BaseException] = None) -> None:
        self.path = path
        super().__init__(f"access to {path} failed after retries: {cause}")


class AccessPathUnavailable(RuntimeError):
    """An access path's circuit breaker is open — the path is down.

    Join executors let this propagate; the adaptive optimizer catches it,
    excludes the path from the plan space, and re-plans with what is left.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        super().__init__(f"access path {path} is unavailable (circuit open)")


class ResilienceContext:
    """Shared fault-handling state of one (possibly multi-plan) execution."""

    def __init__(
        self,
        policy: Optional[RetryPolicy] = None,
        failure_threshold: int = 5,
        cooldown: int = 20,
        recovery_successes: int = 2,
    ) -> None:
        self.policy = policy or RetryPolicy()
        self._breaker_config = dict(
            failure_threshold=failure_threshold,
            cooldown=cooldown,
            recovery_successes=recovery_successes,
        )
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._injectors: List[FaultInjectingDatabase] = []
        self._operations = 0
        self.faults: Counter = Counter()
        self.retries = 0
        self.retries_remaining = self.policy.retry_budget
        self.backoff_time = 0.0
        self.failed_operations = 0
        self.documents_lost = 0
        #: optional end-to-end request deadline, installed by the serving
        #: layer; checked on every :meth:`call` so an expired request can
        #: run past its budget by at most one database access
        self.deadline: Optional[Deadline] = None
        #: shared tracing/metrics context, installed by
        #: :func:`repro.robustness.environment.harden` when the environment
        #: carries one; the default no-op context costs nothing
        self.observability = NULL_OBSERVABILITY

    def breaker(self, path: str) -> CircuitBreaker:
        """The circuit breaker guarding *path* (created on first use)."""
        if path not in self._breakers:
            self._breakers[path] = CircuitBreaker(**self._breaker_config)
        return self._breakers[path]

    def attach_injector(self, database: FaultInjectingDatabase) -> None:
        """Register a fault injector so its counts appear in reports."""
        self._injectors.append(database)

    def call(self, path: str, fn: Callable[[], T]) -> T:
        """Run one database access with breaker + retry protection.

        Raises :class:`~repro.robustness.deadline.DeadlineExceeded` when
        the request's deadline (if any) has passed,
        :class:`AccessPathUnavailable` when the breaker rejects the call,
        :class:`AccessFailedError` when retries are exhausted, and
        returns ``fn()``'s result otherwise.
        """
        if self.deadline is not None:
            self.deadline.check(path)
        observability = self.observability
        breaker = self.breaker(path)
        if not breaker.allow():
            raise AccessPathUnavailable(path)
        self._operations += 1
        delays = self.policy.delays(f"{path}|{self._operations}")
        attempts = 0
        spent = 0.0
        while True:
            attempts += 1
            try:
                result = fn()
            except RETRYABLE_ERRORS as exc:
                self.faults[type(exc).__name__] += 1
                was_open = breaker.is_open
                breaker.record_failure()
                if observability.enabled:
                    observability.metrics.counter(
                        "repro_faults_total", kind=type(exc).__name__
                    ).inc()
                    if breaker.is_open and not was_open:
                        observability.metrics.counter(
                            "repro_breaker_transitions_total", state="open"
                        ).inc()
                        observability.event(
                            SpanKind.BREAKER_TRANSITION,
                            name=path,
                            path=path,
                            state="open",
                        )
                if breaker.is_open:
                    self.failed_operations += 1
                    raise AccessPathUnavailable(path) from exc
                if not self._may_retry(attempts, spent):
                    self.failed_operations += 1
                    raise AccessFailedError(path, exc) from exc
                delay = next(delays)
                if (
                    self.policy.deadline is not None
                    and spent + delay > self.policy.deadline
                ):
                    self.failed_operations += 1
                    raise AccessFailedError(path, exc) from exc
                spent += delay
                self.backoff_time += delay
                self.retries += 1
                if self.retries_remaining is not None:
                    self.retries_remaining -= 1
                if observability.enabled:
                    observability.metrics.counter("repro_retries_total").inc()
                    observability.metrics.counter(
                        "repro_backoff_seconds_total"
                    ).inc(delay)
            else:
                before = breaker.state
                breaker.record_success()
                if observability.enabled and before.name == "OPEN":
                    # The breaker ignores a success observed while OPEN
                    # (see CircuitBreaker.record_success); count the
                    # swallowed event so it shows up in /v1/metrics.
                    observability.metrics.counter(
                        "repro_swallowed_events_total",
                        kind="breaker_open_success",
                    ).inc()
                if (
                    observability.enabled
                    and before is not breaker.state
                    and breaker.state.name == "CLOSED"
                ):
                    # HALF_OPEN → CLOSED: the path recovered.
                    observability.metrics.counter(
                        "repro_breaker_transitions_total", state="closed"
                    ).inc()
                    observability.event(
                        SpanKind.BREAKER_TRANSITION,
                        name=path,
                        path=path,
                        state="closed",
                    )
                return result

    def _may_retry(self, attempts: int, spent: float) -> bool:
        if attempts >= self.policy.max_attempts:
            return False
        if self.retries_remaining is not None and self.retries_remaining <= 0:
            return False
        return True

    # -- reporting -----------------------------------------------------------

    @property
    def open_paths(self) -> List[str]:
        return sorted(
            path for path, b in self._breakers.items() if b.is_open
        )

    def report(self) -> ResilienceReport:
        """Immutable snapshot of everything observed so far."""
        truncated = sum(db.injected["truncated"] for db in self._injectors)
        return ResilienceReport(
            faults=dict(self.faults),
            retries=self.retries,
            backoff_time=self.backoff_time,
            failed_operations=self.failed_operations,
            documents_lost=self.documents_lost,
            documents_truncated=truncated,
            breaker_opens=sum(
                b.times_opened for b in self._breakers.values()
            ),
            open_paths=tuple(self.open_paths),
        )
