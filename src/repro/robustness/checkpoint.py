"""Checkpoint/resume of join execution state.

An interrupted join execution has already paid for document retrieval and
extraction; resuming from scratch re-pays all of it.  This module
serializes everything a :class:`~repro.joins.base.JoinAlgorithm` session
holds — the ripple cursor (retriever positions / probe state / query
queues), accumulated relations, per-side processed counts, simulated time,
and :class:`~repro.joins.stats_collector.ObservationCollector` counts —
into a JSON-compatible dict, and restores it into a freshly constructed
executor of the same shape.

The contract: for a deterministic execution, ``run→checkpoint→restore→run``
produces an :class:`~repro.core.quality.ExecutionReport` identical to the
uninterrupted run (same join composition, counters, and simulated time).

Quality estimators are not serialized.  The built-in estimators
(:class:`~repro.joins.base.ActualQuality`,
:class:`~repro.optimizer.adaptive.PosteriorQuality`) re-derive their
accumulators from the restored join state on their first ``estimate``
call, so they need no state of their own in the snapshot.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..core.quality import TimeBreakdown
from ..core.types import ExtractedTuple
from ..joins.base import JoinAlgorithm
from ..joins.idjn import IndependentJoin
from ..joins.oijn import OuterInnerJoin
from ..joins.stats_collector import RelationObservations
from ..joins.zgjn import ZigZagJoin
from ..retrieval.aqg import AQGRetriever
from ..retrieval.base import DocumentRetriever
from ..retrieval.filtered_scan import FilteredScanRetriever
from ..retrieval.queries import Query, QueryProbe
from ..retrieval.scan import ScanRetriever
from .faults import raw_database

CHECKPOINT_VERSION = 1


class CheckpointError(RuntimeError):
    """The snapshot does not fit the executor it is being restored into."""


# -- leaf (de)serializers ----------------------------------------------------


def _tuple_to_dict(tup: ExtractedTuple) -> Dict[str, Any]:
    return {
        "relation": tup.relation,
        "values": list(tup.values),
        "document_id": tup.document_id,
        "confidence": tup.confidence,
        "is_good": tup.is_good,
    }


def _tuple_from_dict(data: Dict[str, Any]) -> ExtractedTuple:
    return ExtractedTuple(
        relation=data["relation"],
        values=tuple(data["values"]),
        document_id=data["document_id"],
        confidence=data["confidence"],
        is_good=data["is_good"],
    )


def _observations_to_dict(obs: RelationObservations) -> Dict[str, Any]:
    return {
        "relation": obs.relation,
        "attribute_index": obs.attribute_index,
        "documents_processed": obs.documents_processed,
        "productive_documents": obs.productive_documents,
        "unproductive_documents": obs.unproductive_documents,
        "sample_frequency": dict(obs.sample_frequency),
        "tuples_per_document": {
            str(k): v for k, v in obs.tuples_per_document.items()
        },
        "value_confidences": {
            value: list(confs) for value, confs in obs.value_confidences.items()
        },
    }


def _restore_observations(
    obs: RelationObservations, data: Dict[str, Any]
) -> None:
    if obs.relation != data["relation"]:
        raise CheckpointError(
            f"snapshot observes relation {data['relation']!r}, "
            f"executor collects {obs.relation!r}"
        )
    obs.attribute_index = data["attribute_index"]
    obs.documents_processed = data["documents_processed"]
    obs.productive_documents = data["productive_documents"]
    # Older snapshots predate the explicit unproductive count; derive it.
    obs.unproductive_documents = data.get(
        "unproductive_documents",
        data["documents_processed"] - data["productive_documents"],
    )
    obs.sample_frequency.clear()
    obs.sample_frequency.update(data["sample_frequency"])
    obs.tuples_per_document.clear()
    obs.tuples_per_document.update(
        {int(k): v for k, v in data["tuples_per_document"].items()}
    )
    obs.value_confidences.clear()
    obs.value_confidences.update(
        {value: list(confs) for value, confs in data["value_confidences"].items()}
    )


def _probe_to_dict(probe: QueryProbe) -> Dict[str, Any]:
    return {
        "seen": sorted(probe.seen),
        "queries_issued": probe.queries_issued,
        "documents_retrieved": probe.documents_retrieved,
        "issued": sorted(list(tokens) for tokens in probe.issued_queries),
    }


def _restore_probe(probe: QueryProbe, data: Dict[str, Any]) -> None:
    probe.seen.clear()
    probe.seen.update(data["seen"])
    probe.queries_issued = data["queries_issued"]
    probe.documents_retrieved = data["documents_retrieved"]
    probe.restore_issued(tuple(tokens) for tokens in data["issued"])


def _retriever_to_dict(retriever: DocumentRetriever) -> Dict[str, Any]:
    counters = {
        "retrieved": retriever.counters.retrieved,
        "rejected": retriever.counters.rejected,
        "queries_issued": retriever.counters.queries_issued,
    }
    if isinstance(retriever, ScanRetriever):
        return {"kind": "scan", "position": retriever.position, "counters": counters}
    if isinstance(retriever, FilteredScanRetriever):
        return {
            "kind": "filtered_scan",
            "position": retriever.position,
            "counters": counters,
        }
    if isinstance(retriever, AQGRetriever):
        return {
            "kind": "aqg",
            "next_query": retriever.next_query_index,
            "buffer": retriever.buffered_ids(),
            "probe": _probe_to_dict(retriever.probe),
            "counters": counters,
        }
    raise CheckpointError(
        f"cannot checkpoint retriever type {type(retriever).__name__}"
    )


def _restore_retriever(
    retriever: DocumentRetriever, data: Dict[str, Any]
) -> None:
    kinds = {
        ScanRetriever: "scan",
        FilteredScanRetriever: "filtered_scan",
        AQGRetriever: "aqg",
    }
    expected = kinds.get(type(retriever))
    if expected != data["kind"]:
        raise CheckpointError(
            f"snapshot holds a {data['kind']!r} retriever, executor has "
            f"{type(retriever).__name__}"
        )
    counters = data["counters"]
    retriever.counters.retrieved = counters["retrieved"]
    retriever.counters.rejected = counters["rejected"]
    retriever.counters.queries_issued = counters["queries_issued"]
    if isinstance(retriever, (ScanRetriever, FilteredScanRetriever)):
        retriever.restore_position(data["position"])
    else:
        assert isinstance(retriever, AQGRetriever)
        # Re-fetch buffered documents from the (unwrapped) database: the
        # buffer holds retrieved-but-unprocessed documents, already paid
        # for before the checkpoint, so the refetch bypasses fault
        # injection and charges nothing.
        database = raw_database(retriever.database)
        retriever.restore_progress(
            next_query=data["next_query"],
            buffer=[database.get(doc_id) for doc_id in data["buffer"]],
        )
        _restore_probe(retriever.probe, data["probe"])


# -- executor snapshots ------------------------------------------------------


def checkpoint_execution(executor: JoinAlgorithm) -> Dict[str, Any]:
    """Snapshot *executor*'s session as a JSON-compatible dict."""
    session = executor.session
    state = session.state
    snapshot: Dict[str, Any] = {
        "version": CHECKPOINT_VERSION,
        "algorithm": type(executor).__name__,
        "processed": {str(k): v for k, v in session.processed.items()},
        "time": {
            "retrieval": session.time.retrieval,
            "extraction": session.time.extraction,
            "filtering": session.time.filtering,
            "querying": session.time.querying,
        },
        "left": [_tuple_to_dict(t) for t in state.left],
        "right": [_tuple_to_dict(t) for t in state.right],
        "observations": {
            str(side): _observations_to_dict(session.collector.side(side))
            for side in (1, 2)
        },
    }
    if isinstance(executor, IndependentJoin):
        snapshot["retrievers"] = {
            str(side): _retriever_to_dict(executor.retriever(side))
            for side in (1, 2)
        }
    elif isinstance(executor, OuterInnerJoin):
        snapshot["outer_retriever"] = _retriever_to_dict(
            executor.outer_retriever
        )
        snapshot["probe"] = _probe_to_dict(executor.probe)
    elif isinstance(executor, ZigZagJoin):
        snapshot["queues"] = {
            str(side): [list(q.tokens) for q in executor.queue(side)]
            for side in (1, 2)
        }
        snapshot["probes"] = {
            str(side): _probe_to_dict(executor.probe(side)) for side in (1, 2)
        }
    else:
        raise CheckpointError(
            f"cannot checkpoint executor type {type(executor).__name__}"
        )
    return snapshot


def restore_execution(
    executor: JoinAlgorithm, snapshot: Dict[str, Any]
) -> None:
    """Load *snapshot* into a freshly constructed, unstarted *executor*.

    Any malformed snapshot — missing keys, wrong value shapes, junk
    nesting — raises :class:`CheckpointError`; callers never see raw
    ``KeyError``/``TypeError`` from snapshot structure.  On error the
    executor may hold a partial restore and must be discarded.
    """
    if not isinstance(snapshot, dict):
        raise CheckpointError(
            f"checkpoint snapshot must be an object, got "
            f"{type(snapshot).__name__}"
        )
    if snapshot.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {snapshot.get('version')!r}"
        )
    try:
        _restore_checked(executor, snapshot)
    except CheckpointError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as error:
        raise CheckpointError(
            f"malformed checkpoint snapshot: {error!r}"
        ) from error


def _restore_checked(
    executor: JoinAlgorithm, snapshot: Dict[str, Any]
) -> None:
    if snapshot["algorithm"] != type(executor).__name__:
        raise CheckpointError(
            f"snapshot of {snapshot['algorithm']} cannot restore into "
            f"{type(executor).__name__}"
        )
    if executor.started:
        raise CheckpointError("restore target must be an unstarted executor")
    session = executor.session
    # Re-adding the base tuples in their original insertion order rebuilds
    # the ripple-join results and composition deterministically.
    session.state.add_left(
        [_tuple_from_dict(d) for d in snapshot["left"]]
    )
    session.state.add_right(
        [_tuple_from_dict(d) for d in snapshot["right"]]
    )
    session.processed.update(
        {int(k): v for k, v in snapshot["processed"].items()}
    )
    time = snapshot["time"]
    session.time.add(
        TimeBreakdown(
            retrieval=time["retrieval"],
            extraction=time["extraction"],
            filtering=time["filtering"],
            querying=time["querying"],
        )
    )
    for side in (1, 2):
        _restore_observations(
            session.collector.side(side), snapshot["observations"][str(side)]
        )
    if isinstance(executor, IndependentJoin):
        for side in (1, 2):
            _restore_retriever(
                executor.retriever(side), snapshot["retrievers"][str(side)]
            )
    elif isinstance(executor, OuterInnerJoin):
        _restore_retriever(
            executor.outer_retriever, snapshot["outer_retriever"]
        )
        _restore_probe(executor.probe, snapshot["probe"])
    elif isinstance(executor, ZigZagJoin):
        executor.restore_queues(
            {
                int(side): [Query(tokens=tuple(t)) for t in queue]
                for side, queue in snapshot["queues"].items()
            }
        )
        for side in (1, 2):
            _restore_probe(executor.probe(side), snapshot["probes"][str(side)])


def save_checkpoint(executor: JoinAlgorithm, path: str) -> None:
    """Checkpoint *executor* to a JSON file at *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(checkpoint_execution(executor), handle)


def load_checkpoint(executor: JoinAlgorithm, path: str) -> None:
    """Restore *executor* from a JSON checkpoint file at *path*."""
    with open(path, "r", encoding="utf-8") as handle:
        restore_execution(executor, json.load(handle))


# -- managed checkpoint directories ------------------------------------------


@dataclass(frozen=True)
class CheckpointInfo:
    """One managed checkpoint file: path plus retention-relevant facts."""

    name: str
    path: str
    modified: float
    size: int


class CheckpointManager:
    """A checkpoint directory with a retention policy.

    Long-lived deployments (the join service, cron-driven batch runs)
    accumulate checkpoint files forever unless something prunes them;
    the manager bounds the directory by *count* (newest ``max_count``
    survive) and by *age* (files older than ``max_age`` seconds go),
    whichever is stricter.  ``None`` disables a bound.  Pruning is safe
    to run at any time — files are removed oldest-first and a vanished
    file (pruned by a concurrent process) is not an error.

    ``grace`` protects files modified within the last *grace* seconds
    from pruning entirely, even when they exceed ``max_count``: a
    concurrent writer's freshly-replaced checkpoint (or one mid-rename
    from its ``.tmp``) must never be collected by another process's
    startup prune racing against it.

    ``suffix`` generalizes the manager beyond checkpoints: the serving
    layer reuses the same count/age/grace retention for sampled trace
    files (``.jsonl`` / ``.chrome.json``) so traces cannot accumulate
    unboundedly either.
    """

    SUFFIX = ".ckpt.json"

    def __init__(
        self,
        directory: str,
        max_count: Optional[int] = None,
        max_age: Optional[float] = None,
        clock: Callable[[], float] = time.time,
        grace: float = 0.0,
        suffix: Optional[str] = None,
    ) -> None:
        if max_count is not None and max_count < 0:
            raise ValueError("max_count must be non-negative")
        if max_age is not None and max_age < 0:
            raise ValueError("max_age must be non-negative")
        if grace < 0:
            raise ValueError("grace must be non-negative")
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_count = max_count
        self.max_age = max_age
        self.grace = grace
        self.suffix = suffix if suffix is not None else self.SUFFIX
        #: time source for the age-based retention cutoff; injected so
        #: pruning decisions are deterministic under test
        self.clock = clock

    def path_of(self, name: str) -> str:
        return str(self.directory / f"{name}{self.suffix}")

    def save(self, executor: JoinAlgorithm, name: str) -> str:
        """Checkpoint *executor* under *name*; prune, then return the path.

        The write is atomic (temp file + ``os.replace``) so a crash mid-save
        never leaves a truncated checkpoint behind.
        """
        return self.save_snapshot(checkpoint_execution(executor), name)

    def save_snapshot(self, snapshot: Dict[str, Any], name: str) -> str:
        """Persist an already-captured checkpoint dict under *name*.

        Used by the serving layer, which receives the snapshot attached
        to a :class:`~repro.robustness.deadline.DeadlineExceeded` rather
        than holding the executor itself.
        """
        path = pathlib.Path(self.path_of(name))
        tmp = path.with_suffix(path.suffix + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle)
        os.replace(tmp, path)
        self.prune()
        return str(path)

    def load(self, executor: JoinAlgorithm, name: str) -> None:
        """Restore *executor* from the checkpoint saved under *name*."""
        load_checkpoint(executor, self.path_of(name))

    def list(self) -> List[CheckpointInfo]:
        """Managed checkpoints, oldest first."""
        infos: List[CheckpointInfo] = []
        for path in self.directory.glob(f"*{self.suffix}"):
            try:
                stat = path.stat()
            except OSError:
                continue
            infos.append(
                CheckpointInfo(
                    name=path.name[: -len(self.suffix)],
                    path=str(path),
                    modified=stat.st_mtime,
                    size=stat.st_size,
                )
            )
        infos.sort(key=lambda info: (info.modified, info.name))
        return infos

    def prune(self, now: Optional[float] = None) -> List[str]:
        """Apply the retention policy; return the paths removed.

        Entries modified within the grace window are never removed — not
        by age, and not to satisfy ``max_count`` (the bound is enforced
        eventually, once the young entries age past the window).
        """
        infos = self.list()
        now = self.clock() if now is None else now
        protected = {
            info.path
            for info in infos
            if self.grace > 0.0 and now - info.modified < self.grace
        }
        doomed: Dict[str, CheckpointInfo] = {}
        if self.max_age is not None:
            cutoff = now - self.max_age
            for info in infos:
                if info.modified < cutoff and info.path not in protected:
                    doomed[info.path] = info
        if self.max_count is not None:
            survivors = [info for info in infos if info.path not in doomed]
            excess = len(survivors) - self.max_count
            removable = [
                info for info in survivors if info.path not in protected
            ]
            for info in removable[:max(excess, 0)]:
                doomed[info.path] = info
        removed: List[str] = []
        for path in doomed:
            try:
                os.remove(path)
            except OSError:
                continue
            removed.append(path)
        return removed
