"""IE substrate: blackbox extractors with tunable quality knobs.

Provides the Snowball-style pattern extractor the paper evaluates with
(plus its pattern-bootstrap trainer), a closed-form oracle extractor for
controlled experiments, and the tp(θ)/fp(θ) characterization harness that
profiles any extractor offline.
"""

from .base import Extractor, label_candidate
from .characterization import (
    ConfidenceReference,
    KnobCharacterization,
    characterize,
)
from .oracle import LinearKnob, OracleExtractor
from .snowball import SnowballExtractor
from .training import learn_pattern_terms, seed_contexts
from .window import WindowExtractor

__all__ = [
    "ConfidenceReference",
    "Extractor",
    "KnobCharacterization",
    "LinearKnob",
    "OracleExtractor",
    "SnowballExtractor",
    "WindowExtractor",
    "characterize",
    "label_candidate",
    "learn_pattern_terms",
    "seed_contexts",
]
