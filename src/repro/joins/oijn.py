"""Outer/Inner Join (OIJN) — Figure 5.

The IE analogue of nested-loops join: one relation is designated *outer*
and extracted via an explicit retrieval strategy; every join-attribute
value appearing in a new outer tuple becomes a keyword query against the
inner relation's database, retrieving exactly the documents likely to
contain the value's "counterpart" tuples.  Each probe sweeps a row of
D1 × D2 (Figure 6a), but the search interface's top-k limit bounds how
much of the inner database any single query can reach — the grey
unexplored region the paper highlights.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.preferences import QualityRequirement
from ..core.quality import TimeBreakdown
from ..core.types import ExtractedTuple
from ..observability.tracer import SpanKind
from ..retrieval.base import DocumentRetriever
from ..retrieval.queries import Query, QueryProbe
from ..robustness.context import AccessFailedError
from .base import (
    UNLIMITED,
    Budgets,
    JoinAlgorithm,
    JoinExecution,
    JoinInputs,
    QualityEstimator,
)
from .costs import CostModel


class OuterInnerJoin(JoinAlgorithm):
    """OIJN executor (resumable; resume granularity = one outer document).

    ``outer`` selects which side plays the outer role; ``outer_retriever``
    must read from that side's database.  The inner side is probed through
    the database's top-k search interface.
    """

    algorithm = "oijn"

    def __init__(
        self,
        inputs: JoinInputs,
        outer_retriever: DocumentRetriever,
        costs: Optional[CostModel] = None,
        estimator: Optional[QualityEstimator] = None,
        outer: int = 1,
        resilience=None,
        observability=None,
    ) -> None:
        super().__init__(inputs, costs, estimator, resilience, observability)
        if outer not in (1, 2):
            raise ValueError("outer must be 1 or 2")
        self.outer = outer
        self.inner = 2 if outer == 1 else 1
        if outer_retriever.database is not inputs.database(outer):
            raise ValueError("outer_retriever must read from the outer database")
        self._outer_retriever = outer_retriever
        self._probe = QueryProbe(
            inputs.database(self.inner),
            resilience=resilience,
            observability=self.observability,
        )

    @property
    def outer_retriever(self) -> DocumentRetriever:
        """The outer side's retriever (checkpointing)."""
        return self._outer_retriever

    @property
    def probe(self) -> QueryProbe:
        """The inner side's query probe (checkpointing)."""
        return self._probe

    def run(
        self,
        requirement: QualityRequirement = UNLIMITED,
        budgets: Budgets = Budgets(),
    ) -> JoinExecution:
        session = self.session
        state = session.state
        collector = session.collector
        time = session.time
        processed = session.processed
        outer, inner = self.outer, self.inner
        outer_costs = self.costs.side(outer)
        inner_costs = self.costs.side(inner)
        outer_join_index = state.left_index if outer == 1 else state.right_index

        def outer_open() -> bool:
            cap = budgets.max_documents(outer)
            if cap is not None and processed[outer] >= cap:
                return False
            counters = self._outer_retriever.counters
            rcap = budgets.max_retrieved(outer)
            if rcap is not None and counters.retrieved >= rcap:
                return False
            qcap = budgets.max_queries(outer)
            if qcap is not None and counters.queries_issued >= qcap:
                return False
            return not self._outer_retriever.exhausted

        def stop_now() -> bool:
            est_good, est_bad = self.estimator.estimate(state)
            return self._should_stop(requirement, est_good, est_bad)

        observability = self.observability
        stopped = False
        rounds = 0
        while not stopped:
            if stop_now():
                stopped = True
                break
            if not outer_open():
                break
            rounds += 1
            with observability.span(
                SpanKind.JOIN_ROUND,
                f"oijn.round.{rounds}",
                algorithm=self.algorithm,
                round=rounds,
            ):
                # -- one outer document --------------------------------------
                before = self._outer_retriever.counters.snapshot()
                with observability.span(
                    SpanKind.DOCUMENT_RETRIEVAL,
                    f"retrieve.side{outer}",
                    side=outer,
                    strategy=type(self._outer_retriever).__name__,
                ) as span:
                    doc = self._outer_retriever.next_document()
                    counters = self._outer_retriever.counters
                    delta_retrieved = counters.retrieved - before.retrieved
                    span.set(retrieved=delta_retrieved)
                time.add(
                    outer_costs.charge(
                        retrieved=delta_retrieved,
                        queries=counters.queries_issued - before.queries_issued,
                        filtered=(
                            delta_retrieved
                            if self._outer_retriever.filters_documents
                            else 0
                        ),
                    )
                )
                if doc is None:
                    break
                with observability.span(
                    SpanKind.EXTRACTION,
                    f"extract.side{outer}",
                    side=outer,
                    document=doc.doc_id,
                ) as span:
                    outer_tuples = self.inputs.extractor(outer).extract(doc)
                    span.set(tuples=len(outer_tuples))
                time.add(outer_costs.charge(processed=1))
                processed[outer] += 1
                self._observe_document(outer, len(outer_tuples))
                collector.record(outer, outer_tuples)
                self._add(state, outer, outer_tuples)
                self._report_progress(state, time)
                # -- probe the inner relation for each new join value ---------
                for query in self._queries_from(outer_tuples, outer_join_index):
                    if stop_now():
                        stopped = True
                        break
                    if not self._inner_budget_open(budgets, processed):
                        break
                    try:
                        fresh = self._probe.issue(query)
                    except AccessFailedError:
                        # Failed access ≠ empty probe: no tQ charge, the query
                        # stays un-issued so a later outer tuple with the same
                        # value can retry it, and the s(a) sample frequencies
                        # see nothing.
                        continue
                    time.add(
                        inner_costs.charge(queries=1, retrieved=len(fresh))
                    )
                    inner_extractor = self.inputs.extractor(inner)
                    for inner_doc in fresh:
                        cap = budgets.max_documents(inner)
                        if cap is not None and processed[inner] >= cap:
                            break
                        with observability.span(
                            SpanKind.EXTRACTION,
                            f"extract.side{inner}",
                            side=inner,
                            document=inner_doc.doc_id,
                        ) as span:
                            inner_tuples = inner_extractor.extract(inner_doc)
                            span.set(tuples=len(inner_tuples))
                        time.add(inner_costs.charge(processed=1))
                        processed[inner] += 1
                        self._observe_document(inner, len(inner_tuples))
                        collector.record(inner, inner_tuples)
                        self._add(state, inner, inner_tuples)
                    self._report_progress(state, time)

        if self._outer_retriever.filters_documents:
            documents_filtered = {
                outer: self._outer_retriever.counters.retrieved,
                inner: 0,
            }
        else:
            documents_filtered = {1: 0, 2: 0}
        return self._finish(
            state=state,
            time=time,
            requirement=requirement,
            collector=collector,
            documents_retrieved={
                outer: self._outer_retriever.counters.retrieved,
                inner: self._probe.documents_retrieved,
            },
            documents_processed=dict(processed),
            documents_filtered=documents_filtered,
            queries_issued={
                outer: self._outer_retriever.counters.queries_issued,
                inner: self._probe.queries_issued,
            },
            exhausted=self._outer_retriever.exhausted,
        )

    # -- helpers --------------------------------------------------------------

    def _inner_budget_open(
        self, budgets: Budgets, processed: Dict[int, int]
    ) -> bool:
        qcap = budgets.max_queries(self.inner)
        if qcap is not None and self._probe.queries_issued >= qcap:
            return False
        dcap = budgets.max_documents(self.inner)
        if dcap is not None and processed[self.inner] >= dcap:
            return False
        return True

    def _queries_from(
        self, tuples: Sequence[ExtractedTuple], join_index: int
    ) -> List[Query]:
        """One keyword query per new join value among *tuples*."""
        queries: List[Query] = []
        seen: set = set()
        for tup in tuples:
            value = tup.value_of(join_index)
            if value in seen:
                continue
            seen.add(value)
            query = Query.of(value)
            if not self._probe.already_issued(query):
                queries.append(query)
        return queries

    def _add(self, state, side: int, tuples: Sequence[ExtractedTuple]) -> None:
        if side == 1:
            state.add_left(tuples)
        else:
            state.add_right(tuples)
