"""Quality metrics and execution reports.

Wraps the raw good/bad counts of a join execution into the figures the
paper reports — precision, recall against the reachable ground truth, and
whether a :class:`~repro.core.preferences.QualityRequirement` was met —
plus the simulated execution-time breakdown used throughout Section V.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .preferences import QualityRequirement
from .relation import JoinComposition


@dataclass(frozen=True)
class QualityMetrics:
    """Precision/recall view of a join result."""

    n_good: int
    n_bad: int
    reachable_good: Optional[int] = None

    @property
    def n_total(self) -> int:
        return self.n_good + self.n_bad

    @property
    def precision(self) -> float:
        """Fraction of produced join tuples that are good (1.0 if empty)."""
        if self.n_total == 0:
            return 1.0
        return self.n_good / self.n_total

    @property
    def recall(self) -> Optional[float]:
        """Fraction of reachable good join tuples produced, if known."""
        if self.reachable_good is None:
            return None
        if self.reachable_good == 0:
            return 1.0
        return min(1.0, self.n_good / self.reachable_good)

    @classmethod
    def from_composition(
        cls, comp: JoinComposition, reachable_good: Optional[int] = None
    ) -> "QualityMetrics":
        return cls(
            n_good=comp.n_good, n_bad=comp.n_bad, reachable_good=reachable_good
        )


@dataclass
class TimeBreakdown:
    """Simulated execution-time components (Section V time formulas).

    All values are in simulated seconds, accumulated per relation:
    retrieval time (tR per document), extraction time (tE per document),
    filtering time (tF per classified document, FS only), and querying time
    (tQ per issued query, AQG/OIJN/ZGJN).
    """

    retrieval: float = 0.0
    extraction: float = 0.0
    filtering: float = 0.0
    querying: float = 0.0

    @property
    def total(self) -> float:
        return self.retrieval + self.extraction + self.filtering + self.querying

    def add(self, other: "TimeBreakdown") -> None:
        self.retrieval += other.retrieval
        self.extraction += other.extraction
        self.filtering += other.filtering
        self.querying += other.querying


@dataclass
class ResilienceReport:
    """Fault/retry/breaker accounting of one join execution.

    Produced by :mod:`repro.robustness` when an execution runs with a
    resilience context; ``None`` on an ExecutionReport means the execution
    ran without one (the raw, zero-overhead path).  All counts are totals
    across both sides and every access path.
    """

    #: injected/observed faults by exception kind, e.g. {"TransientAccessError": 3}
    faults: Dict[str, int] = field(default_factory=dict)
    #: retry attempts performed after a fault
    retries: int = 0
    #: simulated seconds spent waiting in retry backoff
    backoff_time: float = 0.0
    #: operations abandoned after exhausting their retry allowance
    failed_operations: int = 0
    #: scan documents skipped because their fetch failed permanently
    documents_lost: int = 0
    #: documents returned with a truncated payload by the fault injector
    documents_truncated: int = 0
    #: closed→open circuit-breaker transitions
    breaker_opens: int = 0
    #: access paths whose breaker was open when the execution finished
    open_paths: Tuple[str, ...] = ()

    @property
    def total_faults(self) -> int:
        return sum(self.faults.values())


@dataclass
class ObservabilityReport:
    """Telemetry summary of one join execution.

    Produced by :mod:`repro.observability` when an execution runs with an
    observability context; ``None`` on an ExecutionReport means the
    execution ran with telemetry disabled (the no-op, byte-identical
    path).  ``counters`` flattens every counter/gauge the run touched
    (``name{labels} -> value``); ``drift_snapshots`` carries the
    estimator-drift series as plain dicts (one per MLE refit).
    """

    #: finished spans recorded during the execution
    spans: int = 0
    #: instant events (drift snapshots, breaker transitions, ...)
    events: int = 0
    #: flattened metric values at report time
    counters: Dict[str, float] = field(default_factory=dict)
    #: estimator-drift snapshots (dicts; see DriftSnapshot.to_dict)
    drift_snapshots: Tuple[Dict[str, float], ...] = ()


@dataclass
class ExecutionReport:
    """Everything a finished join execution reports back.

    ``documents_retrieved``/``documents_processed``/``queries_issued`` are
    per-relation counts keyed by 1 and 2; ``satisfied`` records whether the
    user's quality requirement was met (None when no requirement given).
    """

    composition: JoinComposition
    time: TimeBreakdown
    documents_retrieved: Dict[int, int] = field(default_factory=dict)
    documents_processed: Dict[int, int] = field(default_factory=dict)
    documents_filtered: Dict[int, int] = field(default_factory=dict)
    queries_issued: Dict[int, int] = field(default_factory=dict)
    tuples_extracted: Dict[int, int] = field(default_factory=dict)
    satisfied: Optional[bool] = None
    exhausted: bool = False
    #: fault/retry/breaker accounting (None when run without resilience)
    resilience: Optional[ResilienceReport] = None
    #: tracing/metrics/drift summary (None when run without observability)
    observability: Optional[ObservabilityReport] = None

    def metrics(self, reachable_good: Optional[int] = None) -> QualityMetrics:
        return QualityMetrics.from_composition(self.composition, reachable_good)

    def check(self, requirement: QualityRequirement) -> bool:
        """Evaluate the requirement against the *actual* composition."""
        return requirement.satisfied_by(
            self.composition.n_good, self.composition.n_bad
        )

    def summary(self) -> str:
        c = self.composition
        return (
            f"good={c.n_good} bad={c.n_bad} "
            f"(gb={c.n_good_bad}, bg={c.n_bad_good}, bb={c.n_bad_bad}) "
            f"time={self.time.total:.1f}s docs={dict(self.documents_processed)} "
            f"queries={dict(self.queries_issued)}"
        )
