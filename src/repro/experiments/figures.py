"""Runners for the paper's model-accuracy figures (Figures 9–12).

Each runner sweeps an effort axis, computing the analytical estimate
(Section V models with perfect knowledge of the database statistics, as in
the paper's accuracy study) and the actual value from a real execution at
the same operating point, and returns aligned rows ready for reporting or
assertion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.plan import RetrievalKind
from ..joins.base import Budgets
from ..joins.idjn import IndependentJoin
from ..joins.oijn import OuterInnerJoin
from ..joins.zgjn import ZigZagJoin
from ..models.idjn_model import IDJNModel
from ..models.oijn_model import OIJNModel
from ..models.parameters import JoinStatistics, SideStatistics
from ..models.zgjn_model import ZGJNModel
from ..observability.context import ObservabilityContext, ensure_observability
from ..observability.tracer import SpanKind
from ..retrieval.scan import ScanRetriever
from .testbed import JoinTask

DEFAULT_PERCENTS: Sequence[int] = (10, 20, 30, 40, 50, 60, 70, 80, 90, 100)


@dataclass(frozen=True)
class AccuracyRow:
    """One sweep point: estimated vs actual good/bad join tuples."""

    percent: int
    estimated_good: float
    actual_good: int
    estimated_bad: float
    actual_bad: int
    estimated_time: float
    actual_time: float


@dataclass(frozen=True)
class DocumentsRow:
    """One Figure-12 sweep point: documents retrieved per database."""

    percent: int
    estimated_docs1: float
    actual_docs1: int
    estimated_docs2: float
    actual_docs2: int


def task_statistics(task: JoinTask, theta1: float, theta2: float) -> JoinStatistics:
    """Ground-truth model statistics for a task at (θ1, θ2)."""
    return JoinStatistics(
        side1=SideStatistics.from_profile(
            task.profile1,
            tp=task.characterization1.tp_at(theta1),
            fp=task.characterization1.fp_at(theta1),
            top_k=task.database1.max_results,
        ),
        side2=SideStatistics.from_profile(
            task.profile2,
            tp=task.characterization2.tp_at(theta2),
            fp=task.characterization2.fp_at(theta2),
            top_k=task.database2.max_results,
        ),
        classifier1=task.classifier_profile1,
        classifier2=task.classifier_profile2,
        queries1=tuple(task.query_stats1),
        queries2=tuple(task.query_stats2),
    )


def run_figure9(
    task: JoinTask,
    theta: float = 0.4,
    percents: Sequence[int] = DEFAULT_PERCENTS,
    observability: Optional[ObservabilityContext] = None,
) -> List[AccuracyRow]:
    """Figure 9: IDJN with Scan on both sides, minSim = 0.4."""
    obs = ensure_observability(observability)
    statistics = task_statistics(task, theta, theta)
    model = IDJNModel(
        statistics, RetrievalKind.SCAN, RetrievalKind.SCAN, costs=task.costs
    )
    inputs = task.inputs(theta, theta)
    rows: List[AccuracyRow] = []
    for percent in percents:
        n1 = len(task.database1) * percent // 100
        n2 = len(task.database2) * percent // 100
        prediction = model.predict(n1, n2)
        with obs.span(
            SpanKind.EXPERIMENT, "figure9", percent=percent, documents=n1 + n2
        ):
            execution = IndependentJoin(
                inputs,
                ScanRetriever(task.database1, observability=observability),
                ScanRetriever(task.database2, observability=observability),
                costs=task.costs,
                observability=observability,
            ).run(budgets=Budgets(max_documents1=n1, max_documents2=n2))
        composition = execution.report.composition
        rows.append(
            AccuracyRow(
                percent=percent,
                estimated_good=prediction.n_good,
                actual_good=composition.n_good,
                estimated_bad=prediction.n_bad,
                actual_bad=composition.n_bad,
                estimated_time=prediction.total_time,
                actual_time=execution.report.time.total,
            )
        )
    return rows


def run_figure10(
    task: JoinTask,
    theta: float = 0.4,
    percents: Sequence[int] = DEFAULT_PERCENTS,
    observability: Optional[ObservabilityContext] = None,
) -> List[AccuracyRow]:
    """Figure 10: OIJN with Scan for the outer relation, minSim = 0.4."""
    obs = ensure_observability(observability)
    statistics = task_statistics(task, theta, theta)
    model = OIJNModel(
        statistics, RetrievalKind.SCAN, outer=1, costs=task.costs
    )
    inputs = task.inputs(theta, theta)
    rows: List[AccuracyRow] = []
    for percent in percents:
        n1 = len(task.database1) * percent // 100
        prediction = model.predict(n1)
        with obs.span(
            SpanKind.EXPERIMENT, "figure10", percent=percent, documents=n1
        ):
            execution = OuterInnerJoin(
                inputs,
                ScanRetriever(task.database1, observability=observability),
                costs=task.costs,
                outer=1,
                observability=observability,
            ).run(budgets=Budgets(max_documents1=n1))
        composition = execution.report.composition
        rows.append(
            AccuracyRow(
                percent=percent,
                estimated_good=prediction.n_good,
                actual_good=composition.n_good,
                estimated_bad=prediction.n_bad,
                actual_bad=composition.n_bad,
                estimated_time=prediction.total_time,
                actual_time=execution.report.time.total,
            )
        )
    return rows


def _zgjn_model(task: JoinTask, theta: float) -> ZGJNModel:
    return ZGJNModel(task_statistics(task, theta, theta), costs=task.costs)


def run_figure11(
    task: JoinTask,
    theta: float = 0.4,
    percents: Sequence[int] = DEFAULT_PERCENTS,
    observability: Optional[ObservabilityContext] = None,
) -> List[AccuracyRow]:
    """Figure 11: ZGJN, minSim = 0.4; the effort axis is the query budget."""
    obs = ensure_observability(observability)
    model = _zgjn_model(task, theta)
    inputs = task.inputs(theta, theta)
    max_queries = model.max_queries_from_r1()
    rows: List[AccuracyRow] = []
    for percent in percents:
        q = max(1, max_queries * percent // 100)
        prediction = model.predict(q)
        with obs.span(
            SpanKind.EXPERIMENT, "figure11", percent=percent, queries=q
        ):
            execution = ZigZagJoin(
                inputs,
                task.seed_queries,
                costs=task.costs,
                observability=observability,
            ).run(budgets=Budgets(max_queries1=q, max_queries2=q))
        composition = execution.report.composition
        rows.append(
            AccuracyRow(
                percent=percent,
                estimated_good=prediction.n_good,
                actual_good=composition.n_good,
                estimated_bad=prediction.n_bad,
                actual_bad=composition.n_bad,
                estimated_time=prediction.total_time,
                actual_time=execution.report.time.total,
            )
        )
    return rows


def run_figure12(
    task: JoinTask,
    theta: float = 0.4,
    percents: Sequence[int] = DEFAULT_PERCENTS,
    observability: Optional[ObservabilityContext] = None,
) -> List[DocumentsRow]:
    """Figure 12: estimated vs actual documents retrieved under ZGJN."""
    obs = ensure_observability(observability)
    model = _zgjn_model(task, theta)
    inputs = task.inputs(theta, theta)
    max_queries = model.max_queries_from_r1()
    rows: List[DocumentsRow] = []
    for percent in percents:
        q = max(1, max_queries * percent // 100)
        reach = model.reach(q)
        with obs.span(
            SpanKind.EXPERIMENT, "figure12", percent=percent, queries=q
        ):
            execution = ZigZagJoin(
                inputs,
                task.seed_queries,
                costs=task.costs,
                observability=observability,
            ).run(budgets=Budgets(max_queries1=q, max_queries2=q))
        report = execution.report
        rows.append(
            DocumentsRow(
                percent=percent,
                estimated_docs1=reach.documents1,
                actual_docs1=report.documents_retrieved[1],
                estimated_docs2=reach.documents2,
                actual_docs2=report.documents_retrieved[2],
            )
        )
    return rows
