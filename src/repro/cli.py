"""Command-line interface.

Exposes the experiment harness and the optimizer without writing Python::

    repro figures --figure 9            # estimated-vs-actual sweep tables
    repro table2 --rows 8               # the optimizer-choice table
    repro characterize                  # tp/fp knob curves per relation
    repro optimize --tau-good 50 --tau-bad 1000
    repro adaptive --tau-good 80 --tau-bad 2000
    repro budget --time 2000 --precision-weight 0.8
    repro serve --port 8023 --store /tmp/join-stats
    repro submit --tau-good 40 --tau-bad 1000 --deadline 5000 --retries 3
    repro loadtest --requests 200 --concurrency 16 --chaos

All commands operate on the canonical testbed (``--scale`` / ``--seed``
control its size and randomness).  Installed as the ``repro`` console
script; also runnable via ``python -m repro``.
"""

from __future__ import annotations

import argparse
import json
import sys
import traceback
from typing import Optional, Sequence

from .core import QualityRequirement
from .observability import (
    ObservabilityContext,
    configure_logging,
    get_logger,
)
from .observability.logs import LEVELS
from .experiments import (
    CHARACTERIZATION_THETAS,
    MULTIWAY_SCENARIOS,
    TABLE2_REQUIREMENTS,
    TestbedConfig,
    build_multiway_testbed,
    build_testbed,
    format_accuracy_rows,
    format_documents_rows,
    format_frontier,
    format_table,
    format_table2_rows,
    quality_frontier,
    run_figure9,
    run_figure10,
    run_figure11,
    run_figure12,
    run_table2,
)
from .optimizer import (
    AdaptiveJoinExecutor,
    JoinOptimizer,
    bind_plan,
    enumerate_plans,
)
from .robustness import FaultProfile, RetryPolicy, harden
from .validation.invariants import ENV_FLAG, enable_selfcheck

#: diagnostics logger — everything here goes to stderr, level-filtered by
#: ``-v/--log-level``; machine-readable results stay on stdout via print
_LOG = get_logger("cli")


def _add_testbed_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        type=float,
        default=0.6,
        help="testbed scale factor (default 0.6; 1.0 ≈ a thousand docs/db)",
    )
    parser.add_argument(
        "--seed", type=int, default=11, help="testbed world seed"
    )


def _add_scenario_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scenario",
        choices=MULTIWAY_SCENARIOS,
        default=None,
        help=(
            "plan a multiway (n-ary) join scenario instead of the binary "
            "HQ ⋈ EX task; the multiway testbed has its own seed and "
            "scale, so --scale/--seed are ignored"
        ),
    )


def _add_workers_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "evaluate plans in N forked processes (default serial; "
            "results are identical either way)"
        ),
    )


def _add_prune_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-prune",
        action="store_true",
        help=(
            "disable bound-based plan pruning and evaluate every "
            "candidate in full (the chosen plan is identical either "
            "way; this is the differential-validation escape hatch)"
        ),
    )


def _add_resilience_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fault-profile",
        default="none",
        help=(
            "inject database faults: 'none', a bare transient rate "
            "('0.1'), or 'transient=0.1,timeout=0.05,...' pairs"
        ),
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the deterministic fault stream and retry jitter",
    )
    parser.add_argument(
        "--retry-budget",
        type=int,
        default=None,
        help="total retries allowed across the whole run (default unlimited)",
    )


def _add_logging_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="shorthand for --log-level debug",
    )
    parser.add_argument(
        "--log-level",
        default="info",
        choices=sorted(LEVELS),
        help="diagnostics verbosity on stderr (default info)",
    )
    parser.add_argument(
        "--selfcheck",
        action="store_true",
        help=(
            "enforce runtime invariants (models, curves, executors, "
            "estimator, store); violations abort with a diagnostic. "
            f"Equivalent to {ENV_FLAG}=1"
        ),
    )


def _add_observability_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help=(
            "write a JSONL span log to PATH plus a Chrome trace "
            "(PATH.chrome.json; open in chrome://tracing or Perfetto)"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write a Prometheus-style metrics text dump to PATH",
    )


def _configure_logging(args: argparse.Namespace) -> None:
    level = (
        "debug"
        if getattr(args, "verbose", False)
        else getattr(args, "log_level", "info")
    )
    configure_logging(level)


def _observability_from(args: argparse.Namespace) -> Optional[ObservabilityContext]:
    """A live context when ``--trace``/``--metrics-out`` ask for one.

    Returns None otherwise so the whole stack keeps the shared no-op
    context — flag-free runs stay byte-identical to pre-observability ones.
    """
    if getattr(args, "trace", None) is None and (
        getattr(args, "metrics_out", None) is None
    ):
        return None
    return ObservabilityContext()


def _write_observability(
    observability: Optional[ObservabilityContext], args: argparse.Namespace
) -> None:
    if observability is None:
        return
    trace = getattr(args, "trace", None)
    if trace is not None:
        written = observability.write_trace(trace)
        _LOG.info(
            "Trace written to %s (Chrome trace: %s)",
            written["jsonl"],
            written["chrome"],
        )
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out is not None:
        observability.write_metrics(metrics_out)
        _LOG.info("Metrics written to %s", metrics_out)


def _maybe_harden(environment, args: argparse.Namespace):
    """Wire fault injection + resilience in, or pass through untouched.

    With the default flags the environment is returned unchanged, so
    fault-free runs stay byte-identical to runs without the flags at all.
    """
    profile = FaultProfile.parse(args.fault_profile, seed=args.fault_seed)
    if profile.disabled and args.retry_budget is None:
        return environment
    policy = RetryPolicy(retry_budget=args.retry_budget, seed=args.fault_seed)
    return harden(environment, profile=profile, policy=policy)


def _log_resilience(report) -> None:
    resilience = report.resilience
    if resilience is None:
        return
    _LOG.info(
        "Resilience: %d faults injected, %d retries (+%.0fs backoff), "
        "%d operations failed, %d documents lost, %d breaker opens",
        resilience.total_faults,
        resilience.retries,
        resilience.backoff_time,
        resilience.failed_operations,
        resilience.documents_lost,
        resilience.breaker_opens,
    )


def _testbed_task(args: argparse.Namespace):
    testbed = build_testbed(TestbedConfig(seed=args.seed, scale=args.scale))
    return testbed, testbed.task()


def _cmd_figures(args: argparse.Namespace) -> int:
    _, task = _testbed_task(args)
    observability = _observability_from(args)
    percents = tuple(range(10, 101, args.step))
    runners = {
        9: (run_figure9, format_accuracy_rows, "Figure 9 — IDJN (Scan/Scan)"),
        10: (run_figure10, format_accuracy_rows, "Figure 10 — OIJN (Scan outer)"),
        11: (run_figure11, format_accuracy_rows, "Figure 11 — ZGJN"),
        12: (run_figure12, format_documents_rows, "Figure 12 — ZGJN documents"),
    }
    figures = [args.figure] if args.figure else [9, 10, 11, 12]
    for figure in figures:
        runner, formatter, title = runners[figure]
        rows = runner(task, percents=percents, observability=observability)
        print(formatter(rows, title))
        print()
    _write_observability(observability, args)
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    _, task = _testbed_task(args)
    requirements = TABLE2_REQUIREMENTS[: args.rows] if args.rows else TABLE2_REQUIREMENTS
    rows = run_table2(task, requirements=requirements)
    print(format_table2_rows(rows, "Table II — optimizer choices (HQ ⋈ EX)"))
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    testbed, _ = _testbed_task(args)
    for relation in sorted(testbed.characterizations):
        char = testbed.characterizations[relation]
        rows = [
            (theta, f"{char.tp_at(theta):.3f}", f"{char.fp_at(theta):.3f}")
            for theta in CHARACTERIZATION_THETAS
        ]
        print(format_table([f"θ ({relation})", "tp(θ)", "fp(θ)"], rows))
        print()
    return 0


def _publish_planner_tallies(observability, tallies) -> None:
    """Expose a multiway planning run's search tallies as metrics."""
    if observability is None:
        return
    for name, value in sorted(tallies.as_counters().items()):
        if value > 0:
            observability.metrics.counter(f"repro_{name}_total").inc(value)


def _cmd_optimize_multiway(args: argparse.Namespace) -> int:
    """``repro optimize --scenario ...``: the n-ary planner path."""
    from .planner import MultiwayPlanner, bind_multiway_plan

    scenario = build_multiway_testbed().scenario(args.scenario)
    requirement = QualityRequirement(
        tau_good=args.tau_good, tau_bad=args.tau_bad
    )
    observability = _observability_from(args)
    planner = MultiwayPlanner(
        scenario.graph, scenario.catalog(), feasibility_margin=args.margin
    )
    result = planner.optimize(requirement, prune=not args.no_prune)
    _publish_planner_tallies(observability, result.tallies)
    tallies = result.tallies
    print(f"Graph: {scenario.graph.describe()}")
    counts = (
        f"Candidates: {tallies.assignments}; feasible: "
        f"{sum(1 for e in result.evaluations if e.feasible)}; "
        f"plan space: {tallies.plan_space}"
    )
    if tallies.subplans_pruned_bound:
        counts += (
            f"; subplans pruned: {tallies.subplans_pruned_bound} "
            f"({tallies.pruned_fraction:.0%})"
        )
    print(counts)
    if result.chosen is None:
        print("No multiway plan is predicted to meet the requirement.")
        _write_observability(observability, args)
        return 1
    chosen = result.chosen
    print(f"Chosen: {chosen.plan.describe()}")
    print(
        f"Predicted: {chosen.good:.0f} good / {chosen.bad:.0f} bad in "
        f"{chosen.total_time:.0f}s"
    )
    if args.execute:
        environment = scenario.environment()
        environment.observability = observability
        executor = bind_multiway_plan(
            environment, scenario.graph, chosen, model=planner.model
        )
        report = executor.run(requirement).report
        print(f"Actual:    {report.summary()}")
        print(f"Requirement met: {report.check(requirement)}")
    _write_observability(observability, args)
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    if args.scenario is not None:
        return _cmd_optimize_multiway(args)
    _, task = _testbed_task(args)
    requirement = QualityRequirement(
        tau_good=args.tau_good, tau_bad=args.tau_bad
    )
    observability = _observability_from(args)
    plans = enumerate_plans(task.extractor1.name, task.extractor2.name)
    optimizer = JoinOptimizer(
        task.catalog(),
        costs=task.costs,
        feasibility_margin=args.margin,
        observability=observability,
    )
    result = optimizer.optimize(
        plans, requirement, workers=args.workers, prune=not args.no_prune
    )
    if result.chosen is None:
        print("No plan is predicted to meet the requirement.")
        _write_observability(observability, args)
        return 1
    chosen = result.chosen
    pruned = sum(1 for e in result.evaluations if e.pruned)
    counts = f"Candidates: {len(plans)}; feasible: {len(result.feasible)}"
    if pruned:
        counts += f"; pruned without full evaluation: {pruned}"
    print(counts)
    print(f"Chosen: {chosen.plan.describe()}")
    print(
        f"Predicted: {chosen.prediction.n_good:.0f} good / "
        f"{chosen.prediction.n_bad:.0f} bad in "
        f"{chosen.prediction.total_time:.0f}s"
    )
    if args.execute:
        environment = task.environment(
            chosen.plan.extractor1.theta, chosen.plan.extractor2.theta
        )
        environment.observability = observability
        environment = _maybe_harden(environment, args)
        executor = bind_plan(environment, chosen.plan)
        report = executor.run(requirement=requirement).report
        print(f"Actual:    {report.summary()}")
        _log_resilience(report)
        print(f"Requirement met: {report.check(requirement)}")
    _write_observability(observability, args)
    return 0


def _cmd_budget(args: argparse.Namespace) -> int:
    from .observability import SpanKind
    from .observability.context import ensure_observability

    _, task = _testbed_task(args)
    observability = _observability_from(args)
    plans = enumerate_plans(task.extractor1.name, task.extractor2.name)
    optimizer = JoinOptimizer(
        task.catalog(), costs=task.costs, observability=observability
    )
    with ensure_observability(observability).span(
        SpanKind.EXPERIMENT,
        "budget",
        time_budget=args.time,
        precision_weight=args.precision_weight,
    ):
        result = optimizer.optimize_within_time(
            plans, args.time, precision_weight=args.precision_weight
        )
    optimizer.scrape_cache_metrics()
    if result.chosen is None:
        print("No plan produces output within the budget.")
        _write_observability(observability, args)
        return 1
    chosen = result.chosen
    prediction = chosen.prediction
    total = prediction.n_good + prediction.n_bad
    precision = prediction.n_good / total if total else 1.0
    print(f"Chosen: {chosen.plan.describe()}")
    print(
        f"Predicted within {args.time:.0f}s: {prediction.n_good:.0f} good / "
        f"{prediction.n_bad:.0f} bad (precision {precision:.2f}) in "
        f"{prediction.total_time:.0f}s"
    )
    _write_observability(observability, args)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments import write_report

    _, task = _testbed_task(args)
    path = write_report(task, args.output, table2_rows=args.rows)
    print(f"Report written to {path}")
    return 0


def _cmd_frontier_multiway(args: argparse.Namespace) -> int:
    """``repro frontier --scenario ...``: τg sweep through the planner."""
    from .planner import MultiwayPlanner

    scenario = build_multiway_testbed().scenario(args.scenario)
    observability = _observability_from(args)
    planner = MultiwayPlanner(
        scenario.graph, scenario.catalog(), feasibility_margin=0.15
    )
    tau_goods = sorted(
        {
            max(1, scenario.tau_good // 4),
            max(1, scenario.tau_good // 2),
            scenario.tau_good,
            scenario.tau_good * 2,
        }
    )
    sweep = planner.frontier(
        tau_goods, scenario.tau_bad, prune=not args.no_prune
    )
    print(
        f"Multiway frontier for {scenario.name}: "
        f"{scenario.graph.describe()} (τb={scenario.tau_bad})"
    )
    print(f"{'τg':>6}  {'feasible':>8}  {'time':>8}  plan")
    for tau_good, result in sweep:
        _publish_planner_tallies(observability, result.tallies)
        if result.chosen is None:
            print(f"{tau_good:>6}  {'no':>8}  {'-':>8}  -")
            continue
        chosen = result.chosen
        print(
            f"{tau_good:>6}  {'yes':>8}  {chosen.total_time:>8.0f}  "
            f"{chosen.plan.describe()}"
        )
    _write_observability(observability, args)
    return 0


def _cmd_frontier(args: argparse.Namespace) -> int:
    if args.scenario is not None:
        return _cmd_frontier_multiway(args)
    _, task = _testbed_task(args)
    observability = _observability_from(args)
    plans = enumerate_plans(task.extractor1.name, task.extractor2.name)
    frontier = quality_frontier(
        task.catalog(),
        plans,
        costs=task.costs,
        workers=args.workers,
        observability=observability,
        prune=not args.no_prune,
    )
    print(
        format_frontier(
            frontier, "Quality/time frontier (Pareto-optimal operating points)"
        )
    )
    _write_observability(observability, args)
    return 0


def _cmd_adaptive(args: argparse.Namespace) -> int:
    _, task = _testbed_task(args)
    requirement = QualityRequirement(
        tau_good=args.tau_good, tau_bad=args.tau_bad
    )
    observability = _observability_from(args)
    environment = task.environment()
    environment.observability = observability
    adaptive = AdaptiveJoinExecutor(
        environment=_maybe_harden(environment, args),
        characterization1=task.characterization1,
        characterization2=task.characterization2,
        plans=enumerate_plans(task.extractor1.name, task.extractor2.name),
        pilot_documents=args.pilot,
        classifier_profile1=task.offline_classifier_profile1,
        classifier_profile2=task.offline_classifier_profile2,
        query_stats1=task.offline_query_stats1,
        query_stats2=task.offline_query_stats2,
        feasibility_margin=args.margin,
    )
    result = adaptive.run(requirement)
    if result.chosen is None:
        print("Adaptive optimizer found no feasible plan.")
        _write_observability(observability, args)
        return 1
    print(f"Pilot rounds: {result.rounds}")
    print(f"Chosen: {result.chosen.plan.describe()}")
    report = result.execution.report
    print(f"Actual: {report.summary()}")
    _log_resilience(report)
    if result.degraded_paths:
        _LOG.warning(
            "Degraded around dead access paths: %s (+%.0fs re-accounted)",
            ", ".join(result.degraded_paths),
            result.wasted_time,
        )
    print(f"Requirement met: {report.check(requirement)}")
    print(f"Total simulated time: {result.total_time:.0f}s")
    _write_observability(observability, args)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .robustness.checkpoint import CheckpointManager
    from .service import JoinService
    from .service.http import serve, shutdown

    _, task = _testbed_task(args)
    checkpoints = None
    if args.checkpoint_dir is not None:
        checkpoints = CheckpointManager(
            args.checkpoint_dir,
            max_count=args.checkpoint_keep,
            max_age=args.checkpoint_max_age,
            grace=args.checkpoint_grace,
        )
    profile = FaultProfile.parse(args.fault_profile, seed=args.fault_seed)
    multiway = None
    if args.multiway_scenario is not None:
        multiway = build_multiway_testbed().scenario(args.multiway_scenario)
    service = JoinService(
        task,
        args.store,
        workers=args.service_workers,
        queue_limit=args.queue_limit,
        pilot_documents=args.pilot,
        margin=args.margin,
        trace_dir=args.trace_dir,
        checkpoints=checkpoints,
        fault_profile=None if profile.disabled else profile,
        slo=args.slo,
        flight_capacity=args.flight_capacity,
        flight_spill=args.flight_spill,
        trace_sample=args.trace_sample,
        trace_keep=args.trace_keep,
        trace_grace=args.trace_grace,
        multiway=multiway,
    )
    if service.pruned_checkpoints:
        _LOG.info(
            "Pruned %d stale checkpoint(s) at startup",
            len(service.pruned_checkpoints),
        )
    if args.frontend == "async":
        from .service.asyncio_frontend import serve_async, shutdown_async

        async_server = serve_async(
            service,
            host=args.host,
            port=args.port,
            request_timeout=args.request_timeout,
        )
        host, port = async_server.server_address[:2]
        print(
            f"Serving {task.name} on http://{host}:{port} "
            f"(store: {service.store.root}) [frontend=async]",
            flush=True,
        )
        try:
            async_server.serve_forever()
        except KeyboardInterrupt:
            _LOG.info("Interrupted; draining the request queue")
        finally:
            shutdown_async(async_server)
        return 0
    server = serve(
        service,
        host=args.host,
        port=args.port,
        request_timeout=args.request_timeout,
    )
    host, port = server.server_address[:2]
    print(
        f"Serving {task.name} on http://{host}:{port} "
        f"(store: {service.store.root})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        _LOG.info("Interrupted; draining the request queue")
    finally:
        shutdown(server)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .service.http import request_json, submit_with_retries

    if args.endpoint == "join":
        if args.tau_good is None or args.tau_bad is None:
            _LOG.error("submit: --tau-good and --tau-bad are required")
            return 2
        payload = {
            "tau_good": args.tau_good,
            "tau_bad": args.tau_bad,
            "mode": args.mode,
            "priority": args.priority,
        }
        if args.deadline is not None:
            payload["deadline_ms"] = args.deadline
        status, body, attempts = submit_with_retries(
            args.url, payload, max_retries=args.retries
        )
        if attempts > 1:
            _LOG.info(
                "submit: answered after %d attempts (server sheds honoured)",
                attempts,
            )
    else:
        status, body = request_json(args.url, args.endpoint)
    if isinstance(body, str):
        print(body, end="" if body.endswith("\n") else "\n")
    else:
        print(json.dumps(body, indent=2, sort_keys=True))
    return 0 if 200 <= status < 300 else 1


def _format_event(event: dict) -> str:
    """One wide event as a single ``repro tail`` line."""
    latency = event.get("total_seconds")
    parts = [
        f"#{event.get('id')}",
        str(event.get("outcome", "?")),
        str(event.get("mode", "?")),
        f"priority={event.get('priority')}",
        f"{latency * 1000:.1f}ms" if latency is not None else "-",
    ]
    if event.get("phase"):
        parts.append(f"interrupted={event['phase']}")
    phases = event.get("phases") or {}
    if phases:
        parts.append(
            " ".join(
                f"{name}={seconds * 1000:.0f}ms"
                for name, seconds in sorted(phases.items())
            )
        )
    admission = event.get("admission") or {}
    if admission.get("action") and admission["action"] != "admit":
        parts.append(
            f"admission={admission['action']}({admission.get('reason', '')})"
        )
    if event.get("error"):
        parts.append(f"error={event['error']}")
    return "  ".join(parts)


def _cmd_tail(args: argparse.Namespace) -> int:
    import time

    from .service.http import request_json

    since = args.since_id
    while True:
        endpoint = f"debug/requests?limit={args.limit}"
        if since is not None:
            endpoint += f"&since_id={since}"
        if args.outcome is not None:
            endpoint += f"&outcome={args.outcome}"
        try:
            status, body = request_json(args.url, endpoint)
        except OSError as error:
            _LOG.error("tail: %s unreachable: %s", args.url, error)
            return 1
        if status != 200 or not isinstance(body, dict):
            _LOG.error("tail: %s returned HTTP %s", args.url, status)
            return 1
        events = sorted(body.get("requests", []), key=lambda e: e["id"])
        for event in events:
            print(_format_event(event), flush=True)
            since = event["id"] if since is None else max(since, event["id"])
        if since is None:
            # An empty first page still starts the cursor so --follow only
            # shows events newer than the initial fetch.
            since = 0
        if not args.follow:
            return 0
        time.sleep(args.interval)


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    from .service.http import request_json

    iteration = 0
    while True:
        iteration += 1
        try:
            _, stats = request_json(args.url, "stats")
            _, slo = request_json(args.url, "debug/slo")
            _, recent = request_json(
                args.url, f"debug/requests?limit={args.events}"
            )
        except OSError as error:
            _LOG.error("top: %s unreachable: %s", args.url, error)
            return 1
        if not isinstance(stats, dict) or not isinstance(slo, dict):
            _LOG.error("top: %s returned an unexpected payload", args.url)
            return 1
        if sys.stdout.isatty():
            print("\x1b[2J\x1b[H", end="")
        print(_render_top(args.url, stats, slo, recent))
        if args.iterations and iteration >= args.iterations:
            return 0
        time.sleep(args.interval)


def _render_top(url: str, stats: dict, slo: dict, recent: dict) -> str:
    """The ``repro top`` dashboard as one printable block."""
    admission = stats.get("admission", {})
    recorder = stats.get("flight_recorder", {})
    lines = [
        (
            f"repro top — {stats.get('task', '?')} @ {url}  "
            f"queue={stats.get('queue_depth', '?')}  "
            f"workers={stats.get('workers', '?')}  "
            f"{'DRAINING' if stats.get('closed') else 'serving'}"
        ),
        (
            "admission: "
            + "  ".join(
                f"{name}={admission.get(name, 0)}"
                for name in ("admit", "degrade", "shed")
            )
            + f"  warm={'yes' if stats.get('warm_available') else 'no'}"
        ),
        (
            f"flight recorder: {recorder.get('events_total', 0)} events, "
            f"{recorder.get('kept_total', 0)} kept "
            f"({recorder.get('ring_size', 0)}/{recorder.get('capacity', 0)} "
            "in ring)  outcomes: "
            + " ".join(
                f"{name}={count}"
                for name, count in (recorder.get("by_outcome") or {}).items()
            )
        ),
    ]
    snapshot = slo.get("slo", {})
    healthy = snapshot.get("healthy")
    verdict = "healthy" if healthy else "BURNING"
    lines.append(f"slo ({snapshot.get('spec', '?')}): {verdict}")
    for objective in snapshot.get("objectives", []):
        burns = "  ".join(
            f"{int(window['window_seconds'])}s={window['burn_rate']:.2f}"
            for window in objective.get("windows", [])
        )
        lines.append(f"  {objective['objective']}: burn {burns}")
    events = (recent or {}).get("requests", []) if isinstance(recent, dict) else []
    if events:
        lines.append("recent:")
        for event in events:
            lines.append("  " + _format_event(event))
    return "\n".join(lines)


def _cmd_loadtest(args: argparse.Namespace) -> int:
    import tempfile

    from .service.loadtest import (
        LoadTestConfig,
        run_frontend_benchmark,
        run_http_loadtest,
        run_local_loadtest,
    )

    config = LoadTestConfig(
        requests=args.requests,
        concurrency=args.concurrency,
        tau_good=args.tau_good,
        tau_bad=args.tau_bad,
        plan_fraction=args.plan_fraction,
        deadline_ms=args.deadline_ms,
        seed=args.seed,
        chaos=args.chaos,
        chaos_seed=args.chaos_seed,
        fault_profile=args.fault_profile,
        workers=args.service_workers,
        queue_limit=args.queue_limit,
        pilot_documents=args.pilot,
        prewarm=not args.no_prewarm,
        timeout=args.timeout,
        idle_connections=args.idle_connections,
        idle_scaling=args.idle_scaling,
        duplicate_burst=args.duplicate_burst,
        burst_rounds=args.burst_rounds,
    )
    if args.slo is not None:
        config.slo = args.slo
    if args.frontend_bench:
        # The comparison needs both sections to say anything.
        if config.idle_connections <= 0:
            config.idle_connections = 25
        if config.duplicate_burst <= 0:
            config.duplicate_burst = 8
    if args.url is not None:
        _LOG.info("Load-testing %s: %d requests", args.url, config.requests)
        payload = run_http_loadtest(args.url, config)
    else:
        _, task = _testbed_task(args)
        store = args.store
        if store is None:
            store = tempfile.mkdtemp(prefix="repro-loadtest-")
        _LOG.info(
            "Load-testing in-process service (store %s): %d requests%s",
            store,
            config.requests,
            " with chaos" if config.chaos else "",
        )
        payload = run_local_loadtest(task, store, config)
        if args.frontend_bench:
            bench_store = (
                f"{args.store}-frontend"
                if args.store is not None
                else tempfile.mkdtemp(prefix="repro-frontend-bench-")
            )
            _LOG.info(
                "Front-end benchmark (threads vs async), store %s",
                bench_store,
            )
            payload.update(
                run_frontend_benchmark(task, bench_store, config)
            )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    outcomes = payload["outcomes"]
    latency = payload["latency_seconds"]
    print(
        f"Load test ({payload['mode']}): {payload['requests']} requests in "
        f"{payload['wall_seconds']:.2f}s "
        f"({payload['throughput_rps']:.1f} req/s)"
    )
    print(
        "Outcomes: "
        + ", ".join(f"{name}={outcomes[name]}" for name in sorted(outcomes))
    )
    print(
        f"Latency: p50={latency['p50'] * 1000:.1f}ms "
        f"p90={latency['p90'] * 1000:.1f}ms "
        f"p99={latency['p99'] * 1000:.1f}ms"
    )
    slo = payload.get("slo")
    if slo is not None:
        verdict = "met" if slo["healthy"] else "VIOLATED"
        print(f"SLO ({slo['spec']}): {verdict}")
        for entry in slo["overall"]:
            print(
                f"  {entry['objective']}: burn={entry['burn_rate']:.2f} "
                f"bad={entry['bad']}/{entry['requests']}"
            )
        for priority in sorted(slo["priorities"]):
            windows = slo["priorities"][priority]["windows"]
            burns = ", ".join(
                f"{name}={max((e['burn_rate'] for e in entries), default=0.0):.2f}"
                for name, entries in sorted(windows.items())
            )
            print(f"  priority={priority}: worst burn {burns}")
    scaling = payload.get("connection_scaling")
    if scaling is not None:
        threads_side = scaling["threads"]["idle"]
        async_side = scaling["async"]["idle"]
        print(
            f"Idle connections: threads={threads_side['live_at_open']}"
            f"/{threads_side['target']} "
            f"async={async_side['live_at_open']}/{async_side['target']} "
            f"(ratio {scaling['idle_ratio']}x)"
        )
        print(
            f"Mix p99 while parked: "
            f"threads={scaling['threads']['p99_seconds'] * 1000:.1f}ms "
            f"async={scaling['async']['p99_seconds'] * 1000:.1f}ms "
            f"(equal within {scaling['equal_p99_tolerance']}x: "
            f"{scaling['equal_p99']})"
        )
    coalescing = payload.get("coalescing")
    if coalescing is not None:
        print(
            f"Coalescing: {coalescing['requests']} burst requests in "
            f"{coalescing['rounds']} rounds -> "
            f"{coalescing['computations']} computations, "
            f"{coalescing['coalesced']} attached, "
            f"hit rate {coalescing['hit_rate'] * 100:.1f}%, "
            f"byte-identical: {coalescing['byte_identical']}"
        )
    recovery = payload.get("recovery")
    if recovery is not None:
        violations = recovery.get("violations", [])
        print(
            f"Recovery: {json.dumps({k: v for k, v in recovery.items() if k != 'violations'}, sort_keys=True)}"
        )
        print(f"Invariant violations during recovery: {len(violations)}")
        if violations:
            for violation in violations:
                print(
                    f"  INVARIANT {violation['where']}: "
                    f"{violation['message']}"
                )
            return 1
    print(f"Benchmark written to {args.out}")
    # Hard errors fail the run; sheds/degrades/deadlines are the service
    # behaving as designed, and 'unavailable' is expected when the chaos
    # harness kills the server under test mid-run.
    return 0 if outcomes["error"] == 0 else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    from .validation.differential import run_validation

    report = run_validation(
        scale=args.scale,
        seed=args.seed,
        theta=args.theta,
        n_samples=args.samples,
        sim_seed=args.sim_seed,
        z=args.z,
        out_path=args.out,
        fuzz=not args.no_fuzz,
        multiway=not args.no_multiway,
    )
    violations = report.invariants.get("violations", [])
    print(
        f"Validation: {len(report.checks)} checks, "
        f"{len(report.failures)} failed; "
        f"{report.invariants.get('checks_run', 0)} invariant checks, "
        f"{len(violations)} violations"
    )
    for check in report.failures:
        print(
            f"  FAIL {check.name}: observed {check.observed:.6g}, "
            f"expected {check.expected:.6g} ± {check.band:.6g} "
            f"({check.detail})"
        )
    for violation in violations:
        print(f"  INVARIANT {violation['where']}: {violation['message']}")
    if args.out:
        print(f"Report written to {args.out}")
    return 0 if report.passed else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Quality-aware join optimization over IE output "
            "(ICDE 2009 reproduction)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    figures = subparsers.add_parser(
        "figures", help="estimated-vs-actual model accuracy sweeps (Figures 9-12)"
    )
    figures.add_argument(
        "--figure", type=int, choices=(9, 10, 11, 12), default=None
    )
    figures.add_argument("--step", type=int, default=10, help="sweep step (%%)")
    _add_observability_arguments(figures)
    _add_testbed_arguments(figures)
    _add_logging_arguments(figures)
    figures.set_defaults(handler=_cmd_figures)

    table2 = subparsers.add_parser(
        "table2", help="optimizer choices across (τg, τb) (Table II)"
    )
    table2.add_argument(
        "--rows", type=int, default=None, help="limit to the first N rows"
    )
    _add_testbed_arguments(table2)
    _add_logging_arguments(table2)
    table2.set_defaults(handler=_cmd_table2)

    characterize = subparsers.add_parser(
        "characterize", help="tp(θ)/fp(θ) knob curves per relation"
    )
    _add_testbed_arguments(characterize)
    _add_logging_arguments(characterize)
    characterize.set_defaults(handler=_cmd_characterize)

    optimize = subparsers.add_parser(
        "optimize", help="pick the fastest plan for a (τg, τb) contract"
    )
    optimize.add_argument("--tau-good", type=int, required=True)
    optimize.add_argument("--tau-bad", type=int, required=True)
    optimize.add_argument("--margin", type=float, default=0.15)
    optimize.add_argument(
        "--execute", action="store_true", help="also run the chosen plan"
    )
    _add_scenario_argument(optimize)
    _add_workers_argument(optimize)
    _add_prune_argument(optimize)
    _add_resilience_arguments(optimize)
    _add_observability_arguments(optimize)
    _add_testbed_arguments(optimize)
    _add_logging_arguments(optimize)
    optimize.set_defaults(handler=_cmd_optimize)

    budget = subparsers.add_parser(
        "budget", help="maximize quality within a simulated-time budget"
    )
    budget.add_argument("--time", type=float, required=True)
    budget.add_argument("--precision-weight", type=float, default=0.5)
    _add_observability_arguments(budget)
    _add_testbed_arguments(budget)
    _add_logging_arguments(budget)
    budget.set_defaults(handler=_cmd_budget)

    frontier = subparsers.add_parser(
        "frontier", help="Pareto frontier of achievable (time, quality) points"
    )
    _add_scenario_argument(frontier)
    _add_workers_argument(frontier)
    _add_prune_argument(frontier)
    _add_observability_arguments(frontier)
    _add_testbed_arguments(frontier)
    _add_logging_arguments(frontier)
    frontier.set_defaults(handler=_cmd_frontier)

    report = subparsers.add_parser(
        "report", help="run the full evaluation and write a markdown report"
    )
    report.add_argument(
        "--output", default="REPORT.md", help="output path (default REPORT.md)"
    )
    report.add_argument(
        "--rows", type=int, default=12, help="Table II rows to include"
    )
    _add_testbed_arguments(report)
    _add_logging_arguments(report)
    report.set_defaults(handler=_cmd_report)

    adaptive = subparsers.add_parser(
        "adaptive", help="full no-labels pipeline: pilot → estimate → execute"
    )
    adaptive.add_argument("--tau-good", type=int, required=True)
    adaptive.add_argument("--tau-bad", type=int, required=True)
    adaptive.add_argument("--pilot", type=int, default=100)
    adaptive.add_argument("--margin", type=float, default=0.3)
    _add_resilience_arguments(adaptive)
    _add_observability_arguments(adaptive)
    _add_testbed_arguments(adaptive)
    _add_logging_arguments(adaptive)
    adaptive.set_defaults(handler=_cmd_adaptive)

    serve = subparsers.add_parser(
        "serve",
        help="run the join service: HTTP front end + statistics store",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8023, help="port to bind (0 = any free)"
    )
    serve.add_argument(
        "--frontend",
        choices=("threads", "async"),
        default="threads",
        help=(
            "connection handling: 'threads' (stdlib thread-per-"
            "connection, the tested reference) or 'async' (event loop: "
            "idle keep-alive connections cost a socket instead of a "
            "thread, and duplicate in-flight plan requests coalesce)"
        ),
    )
    serve.add_argument(
        "--store",
        default=".repro-service",
        help="statistics store directory (default .repro-service)",
    )
    serve.add_argument(
        "--service-workers",
        type=int,
        default=2,
        help="join worker threads (default 2)",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=8,
        help="bounded request queue size; overflow is rejected with 503",
    )
    serve.add_argument(
        "--pilot", type=int, default=60, help="pilot documents per side"
    )
    serve.add_argument("--margin", type=float, default=0.3)
    serve.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help=(
            "write tail-sampled traces into DIR (errors, 504s and slow "
            "requests always; the boring rest 1-in---trace-sample)"
        ),
    )
    serve.add_argument(
        "--trace-sample",
        type=int,
        default=10,
        metavar="N",
        help="keep 1-in-N boring (ok/fast) requests in traces and the "
        "flight recorder (default 10; 1 keeps everything)",
    )
    serve.add_argument(
        "--trace-keep",
        type=int,
        default=None,
        metavar="N",
        help="keep at most N trace files per format in --trace-dir",
    )
    serve.add_argument(
        "--trace-grace",
        type=float,
        default=30.0,
        help=(
            "never prune trace files younger than this many seconds "
            "(default 30)"
        ),
    )
    serve.add_argument(
        "--slo",
        default=None,
        metavar="SPEC",
        help=(
            "service level objectives as 'p99=2s,availability=99.5'; "
            "burn rates are tracked over 1m/5m/30m windows and surfaced "
            "in /v1/stats and /v1/debug/slo"
        ),
    )
    serve.add_argument(
        "--flight-capacity",
        type=int,
        default=512,
        metavar="N",
        help="wide-event ring buffer size for /v1/debug/requests "
        "(default 512)",
    )
    serve.add_argument(
        "--flight-spill",
        default=None,
        metavar="PATH",
        help="append kept wide events as JSONL to PATH",
    )
    serve.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="checkpoint directory to prune stale snapshots from at startup",
    )
    serve.add_argument(
        "--checkpoint-keep",
        type=int,
        default=None,
        help="keep at most N checkpoints in --checkpoint-dir",
    )
    serve.add_argument(
        "--checkpoint-max-age",
        type=float,
        default=None,
        help="drop checkpoints older than this many seconds",
    )
    serve.add_argument(
        "--checkpoint-grace",
        type=float,
        default=60.0,
        help=(
            "never prune checkpoints younger than this many seconds "
            "(protects snapshots a concurrent writer just saved; default 60)"
        ),
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        help=(
            "per-connection socket timeout in seconds; a client that "
            "stalls mid-request gets a 408 (default 30)"
        ),
    )
    serve.add_argument(
        "--fault-profile",
        default="none",
        help=(
            "inject database faults into every request (chaos testing): "
            "'none', a bare rate, or 'transient=0.1,timeout=0.05,...'"
        ),
    )
    serve.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the injected fault stream",
    )
    serve.add_argument(
        "--multiway-scenario",
        choices=MULTIWAY_SCENARIOS,
        default=None,
        help=(
            "also bind a multiway scenario so POST /v1/join accepts "
            "relations/edges payloads (answered by the n-ary planner)"
        ),
    )
    _add_testbed_arguments(serve)
    _add_logging_arguments(serve)
    serve.set_defaults(handler=_cmd_serve)

    submit = subparsers.add_parser(
        "submit", help="submit a request to a running join service"
    )
    submit.add_argument(
        "--url",
        default="http://127.0.0.1:8023",
        help="service base URL (default http://127.0.0.1:8023)",
    )
    submit.add_argument(
        "--endpoint",
        default="join",
        choices=(
            "join",
            "stats",
            "healthz",
            "metrics",
            "debug/requests",
            "debug/slo",
        ),
        help="API endpoint to call (default join)",
    )
    submit.add_argument("--tau-good", type=int, default=None)
    submit.add_argument("--tau-bad", type=int, default=None)
    submit.add_argument(
        "--mode",
        default="execute",
        choices=("execute", "plan"),
        help="execute the join or answer from cached statistics only",
    )
    submit.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="MS",
        help=(
            "end-to-end deadline in milliseconds; expiry returns a 504 "
            "with whatever partial progress the run made"
        ),
    )
    submit.add_argument(
        "--priority",
        default="normal",
        choices=("high", "normal", "low"),
        help="admission priority under load (default normal)",
    )
    submit.add_argument(
        "--retries",
        type=int,
        default=0,
        help=(
            "retry a shed (503) up to N times, honouring the server's "
            "Retry-After hint with decorrelated jitter (default 0)"
        ),
    )
    _add_logging_arguments(submit)
    submit.set_defaults(handler=_cmd_submit)

    top = subparsers.add_parser(
        "top",
        help="live service dashboard: queue, admission, SLO burn, recents",
    )
    top.add_argument(
        "--url",
        default="http://127.0.0.1:8023",
        help="service base URL (default http://127.0.0.1:8023)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between refreshes (default 2)",
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=0,
        metavar="N",
        help="stop after N refreshes (default 0 = run until interrupted)",
    )
    top.add_argument(
        "--events",
        type=int,
        default=10,
        metavar="N",
        help="recent wide events to show (default 10)",
    )
    _add_logging_arguments(top)
    top.set_defaults(handler=_cmd_top)

    tail = subparsers.add_parser(
        "tail",
        help="print wide events from the service flight recorder",
    )
    tail.add_argument(
        "--url",
        default="http://127.0.0.1:8023",
        help="service base URL (default http://127.0.0.1:8023)",
    )
    tail.add_argument(
        "--follow",
        action="store_true",
        help="keep polling for new events instead of exiting",
    )
    tail.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="poll interval with --follow (default 1)",
    )
    tail.add_argument(
        "--limit",
        type=int,
        default=50,
        metavar="N",
        help="events per fetch (default 50)",
    )
    tail.add_argument(
        "--since-id",
        type=int,
        default=None,
        metavar="ID",
        help="only show events with a request id greater than ID",
    )
    tail.add_argument(
        "--outcome",
        default=None,
        help="filter by outcome (ok, degraded, shed, deadline, error)",
    )
    _add_logging_arguments(tail)
    tail.set_defaults(handler=_cmd_tail)

    loadtest = subparsers.add_parser(
        "loadtest",
        help=(
            "drive concurrent load (optionally with chaos: faults, clock "
            "jumps, journal tears) and write BENCH_service.json"
        ),
    )
    loadtest.add_argument(
        "--url",
        default=None,
        help=(
            "target a running server; omitted runs an in-process service "
            "on the canonical testbed"
        ),
    )
    loadtest.add_argument(
        "--store",
        default=None,
        help=(
            "statistics store directory for in-process mode "
            "(default: a fresh temporary directory)"
        ),
    )
    loadtest.add_argument("--requests", type=int, default=50)
    loadtest.add_argument("--concurrency", type=int, default=8)
    loadtest.add_argument("--tau-good", type=int, default=40)
    loadtest.add_argument("--tau-bad", type=int, default=1_000_000)
    loadtest.add_argument(
        "--plan-fraction",
        type=float,
        default=0.5,
        help="fraction of requests in cheap plan mode (default 0.5)",
    )
    loadtest.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="attach this end-to-end deadline to every request",
    )
    loadtest.add_argument(
        "--chaos",
        action="store_true",
        help=(
            "inject seeded faults and clock jumps, then tear the store "
            "journal and verify recovery"
        ),
    )
    loadtest.add_argument(
        "--chaos-seed", type=int, default=0, help="chaos randomness seed"
    )
    loadtest.add_argument(
        "--fault-profile",
        default="",
        help="override the chaos fault mix (FaultProfile spec)",
    )
    loadtest.add_argument(
        "--service-workers",
        type=int,
        default=2,
        help="in-process mode: join worker threads",
    )
    loadtest.add_argument(
        "--queue-limit",
        type=int,
        default=8,
        help="in-process mode: bounded request queue size",
    )
    loadtest.add_argument(
        "--pilot", type=int, default=60, help="pilot documents per side"
    )
    loadtest.add_argument(
        "--no-prewarm",
        action="store_true",
        help="skip the warm-up execute request before the measured load",
    )
    loadtest.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="per-request client timeout in seconds",
    )
    loadtest.add_argument(
        "--slo",
        default=None,
        metavar="SPEC",
        help=(
            "score the run against these objectives (default "
            "'p99=2s,availability=99.5'; '' disables the SLO section)"
        ),
    )
    loadtest.add_argument(
        "--idle-connections",
        type=int,
        default=0,
        help=(
            "hold this many verified idle keep-alive connections open "
            "for the duration of the run (0 disables)"
        ),
    )
    loadtest.add_argument(
        "--idle-scaling",
        type=int,
        default=10,
        help=(
            "frontend benchmark: the async front end holds "
            "idle-connections * this many (default 10)"
        ),
    )
    loadtest.add_argument(
        "--duplicate-burst",
        type=int,
        default=0,
        help=(
            "after the mix, fire rounds of this many identical "
            "concurrent plan-mode requests and report the server's "
            "coalescing tallies (0 disables)"
        ),
    )
    loadtest.add_argument(
        "--burst-rounds",
        type=int,
        default=3,
        help="duplicate-burst rounds, each at a fresh requirement",
    )
    loadtest.add_argument(
        "--frontend-bench",
        action="store_true",
        help=(
            "in-process mode: additionally benchmark the threaded vs "
            "async front ends over one shared service (idle keep-alive "
            "scaling + duplicate-burst coalescing) and merge the "
            "connection_scaling/coalescing sections into the report"
        ),
    )
    loadtest.add_argument(
        "--out",
        default="BENCH_service.json",
        metavar="PATH",
        help="benchmark report path (default BENCH_service.json)",
    )
    _add_testbed_arguments(loadtest)
    _add_logging_arguments(loadtest)
    loadtest.set_defaults(handler=_cmd_loadtest)

    validate = subparsers.add_parser(
        "validate",
        help=(
            "differential validation: models vs Monte-Carlo vs executors, "
            "runtime invariants, JSON-surface fuzzing"
        ),
    )
    validate.add_argument(
        "--theta", type=float, default=0.4, help="knob setting for the sweeps"
    )
    validate.add_argument(
        "--samples",
        type=int,
        default=4000,
        help="Monte-Carlo replicates per comparison (default 4000)",
    )
    validate.add_argument(
        "--sim-seed", type=int, default=0, help="Monte-Carlo seed"
    )
    validate.add_argument(
        "--z",
        type=float,
        default=5.0,
        help="CLT band width in standard errors (default 5)",
    )
    validate.add_argument(
        "--out",
        default="validation_report.json",
        metavar="PATH",
        help="machine-readable report path (default validation_report.json)",
    )
    validate.add_argument(
        "--no-fuzz",
        action="store_true",
        help="skip the JSON-surface fuzz pass",
    )
    validate.add_argument(
        "--no-multiway",
        action="store_true",
        help="skip the multiway planner differential family",
    )
    _add_testbed_arguments(validate)
    _add_logging_arguments(validate)
    validate.set_defaults(handler=_cmd_validate)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    _configure_logging(args)
    if getattr(args, "selfcheck", False):
        enable_selfcheck()
    try:
        result = args.handler(args)
    except KeyboardInterrupt:
        _LOG.warning("repro: interrupted")
        return 130
    except Exception as error:  # noqa: BLE001 — the CLI's last line of defense
        kind = type(error).__name__
        _LOG.error("repro: error: %s: %s", kind, error)
        if getattr(args, "verbose", False):
            traceback.print_exc(file=sys.stderr)
        return 2
    # Handlers return an exit code or None for success; anything truthy
    # that is not an int still exits non-zero rather than leaking through
    # sys.exit() as an arbitrary object.
    if result is None:
        return 0
    if isinstance(result, bool):
        return 0 if result else 1
    if isinstance(result, int):
        return result
    return 1


if __name__ == "__main__":
    sys.exit(main())
