"""Shared benchmark fixtures.

Benchmarks regenerate every table and figure of the paper's evaluation on
the canonical testbed and write the reproduced rows/series to
``benchmarks/results/*.txt`` (also echoed to stdout; run pytest with ``-s``
to see them live).  pytest-benchmark times the regeneration itself.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import TestbedConfig, build_testbed

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def testbed():
    return build_testbed(TestbedConfig(scale=0.6))


@pytest.fixture(scope="session")
def task(testbed):
    return testbed.task()


@pytest.fixture(scope="session")
def report_sink():
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return write
