"""Keep-alive hygiene regression tests for the threaded HTTP front end.

Each test pins one of the ``do_POST`` connection-handling bugs from the
PR-10 sweep; all three fail against the pre-fix handler:

1. 413/400 answered *without consuming the request body* — under
   HTTP/1.1 keep-alive the unread body bytes were then parsed as the
   next request line, so a pipelined client saw phantom responses on a
   desynchronized connection.  Fixed by closing the connection whenever
   the body cannot be consumed.
2. a single ``rfile.read(length)`` returning short on a half-closed
   connection — the truncated body surfaced as a confusing JSON-parse
   400.  Fixed by looping the read and mapping a short read to 400
   ``"truncated request body"`` + close.
3. ``future.result()`` with no timeout — a request with no deadline
   could pin an HTTP thread forever behind a wedged worker.  Fixed by
   bounding the wait with the server's ``request_timeout`` and mapping
   expiry to a clean 504 + close.

The tests drive raw sockets (urllib cannot pipeline or half-close) and a
stub service, so they exercise exactly the HTTP layer.
"""

from __future__ import annotations

import json
import socket
import threading
from concurrent.futures import Future

import pytest

from repro.service.http import MAX_BODY_BYTES, ServiceHTTPServer


class StubService:
    """The minimal surface the HTTP handler touches."""

    def __init__(self):
        self.submitted = []
        self.resolve_with = {"ok": True}
        self.never_resolve = False

    def submit(self, request):
        self.submitted.append(request)
        future = Future()
        if not self.never_resolve:
            future.set_result(self.resolve_with)
        return future

    def healthz(self):  # pragma: no cover — not reached by these tests
        return {"status": "ok"}

    def close(self, wait=True):
        pass


@pytest.fixture()
def stub_server():
    service = StubService()
    server = ServiceHTTPServer(("127.0.0.1", 0), service, request_timeout=1.0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield service, server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def _connect(server) -> socket.socket:
    sock = socket.create_connection(server.server_address, timeout=5.0)
    sock.settimeout(5.0)
    return sock


def _read_until_eof(sock: socket.socket, limit: float = 10.0) -> bytes:
    sock.settimeout(limit)
    chunks = []
    while True:
        try:
            chunk = sock.recv(65536)
        except (TimeoutError, socket.timeout):
            pytest.fail(
                "server neither answered further nor closed the connection"
            )
        except ConnectionResetError:
            # The server tore the connection down with unread bytes in
            # its receive buffer — equivalent to EOF for these tests.
            return b"".join(chunks)
        if not chunk:
            return b"".join(chunks)
        chunks.append(chunk)


def _parse_responses(raw: bytes):
    """Split a byte stream into HTTP responses; fails on desync garbage."""
    responses = []
    rest = raw
    while rest:
        head, sep, remainder = rest.partition(b"\r\n\r\n")
        assert sep, f"incomplete response head in stream: {rest!r}"
        lines = head.split(b"\r\n")
        status_line = lines[0].decode("latin-1")
        assert status_line.startswith("HTTP/1."), (
            f"stream desynchronized: expected a status line, got "
            f"{status_line!r}"
        )
        status = int(status_line.split()[1])
        headers = {}
        for line in lines[1:]:
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body, rest = remainder[:length], remainder[length:]
        assert len(body) == length, "response body truncated"
        responses.append((status, headers, body))
    return responses


class TestKeepAliveBodyHandling:
    def test_oversized_post_closes_instead_of_desyncing(self, stub_server):
        """Bug 1: a 413 with the body unread must close the connection.

        A pipelined client sends the oversized POST (body included) and a
        follow-up GET back-to-back.  Pre-fix, the server kept the
        connection open and parsed the unread body as more requests —
        the stream desynchronized into phantom responses.  Post-fix the
        client sees exactly one 413 carrying ``Connection: close``, then
        EOF.
        """
        service, server = stub_server
        body = b"x" * (MAX_BODY_BYTES + 1)
        oversized = (
            b"POST /v1/join HTTP/1.1\r\n"
            b"Host: t\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: %d\r\n\r\n" % len(body)
        ) + body
        pipelined_get = b"GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n"
        with _connect(server) as sock:
            sock.sendall(oversized + pipelined_get)
            responses = _parse_responses(_read_until_eof(sock))
        assert len(responses) == 1, (
            "exactly one response then EOF — anything else means the "
            "unread body was parsed as new requests"
        )
        status, headers, raw = responses[0]
        assert status == 413
        assert headers.get("connection") == "close"
        assert json.loads(raw)["error"] == "request body too large"
        assert service.submitted == []

    def test_bad_content_length_closes(self, stub_server):
        """Bug 1 (second arm): unparseable Content-Length must close."""
        service, server = stub_server
        request = (
            b"POST /v1/join HTTP/1.1\r\n"
            b"Host: t\r\n"
            b"Content-Length: banana\r\n\r\n"
            b'{"tau_good": 1}'
            b"GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n"
        )
        with _connect(server) as sock:
            sock.sendall(request)
            responses = _parse_responses(_read_until_eof(sock))
        assert len(responses) == 1
        status, headers, raw = responses[0]
        assert status == 400
        assert headers.get("connection") == "close"
        assert json.loads(raw)["error"] == "bad Content-Length"
        assert service.submitted == []

    def test_half_closed_body_maps_to_truncated_400(self, stub_server):
        """Bug 2: a short body read is named, not blamed on JSON.

        The client declares 100 body bytes, sends 40, and half-closes.
        Pre-fix the 40 bytes went straight to ``json.loads`` and the
        client got a JSON-parse error for a transport problem; post-fix
        the read loops to EOF and answers 400 "truncated request body"
        with the connection closed.
        """
        service, server = stub_server
        head = (
            b"POST /v1/join HTTP/1.1\r\n"
            b"Host: t\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: 100\r\n\r\n"
        )
        with _connect(server) as sock:
            sock.sendall(head + b'{"tau_good": 40, "tau_bad": 100'[:40])
            sock.shutdown(socket.SHUT_WR)
            responses = _parse_responses(_read_until_eof(sock))
        assert len(responses) == 1
        status, headers, raw = responses[0]
        assert status == 400
        assert headers.get("connection") == "close"
        assert json.loads(raw)["error"] == "truncated request body"
        assert service.submitted == []


class TestRequestTimeoutBackstop:
    def test_wedged_worker_maps_to_504(self, stub_server):
        """Bug 3: a never-resolving future answers 504, not a hang.

        The stub returns a future that never resolves — the wedged-worker
        case.  With ``request_timeout=1.0`` the handler must answer a
        504 within the timeout (plus slack) and close the connection;
        pre-fix it blocked in ``future.result()`` forever and this test
        timed out on the socket read.
        """
        service, server = stub_server
        service.never_resolve = True
        payload = json.dumps({"tau_good": 40, "tau_bad": 1000}).encode()
        request = (
            b"POST /v1/join HTTP/1.1\r\n"
            b"Host: t\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: %d\r\n\r\n" % len(payload)
        ) + payload
        with _connect(server) as sock:
            sock.sendall(request)
            responses = _parse_responses(_read_until_eof(sock, limit=8.0))
        assert len(responses) == 1
        status, headers, raw = responses[0]
        assert status == 504
        assert headers.get("connection") == "close"
        body = json.loads(raw)
        assert body["error"] == "request timed out in service"
        assert body["timeout_seconds"] == 1.0
        assert len(service.submitted) == 1
