"""Document-retrieval strategies: Scan, Filtered Scan, AQG (Section III-B).

Also home to the keyword-query machinery (measurement, probing) that the
query-based join algorithms (OIJN, ZGJN) build on.
"""

from .aqg import (
    AQGRetriever,
    LearnedQuery,
    learn_queries,
    measure_learned_queries,
    offline_query_stats,
)
from .base import DocumentRetriever, RetrievalCounters
from .classifier import ClassifierProfile, RuleClassifier
from .filtered_scan import FilteredScanRetriever
from .queries import Query, QueryProbe, QueryStats, measure_query
from .scan import ScanRetriever

__all__ = [
    "AQGRetriever",
    "ClassifierProfile",
    "DocumentRetriever",
    "FilteredScanRetriever",
    "LearnedQuery",
    "Query",
    "QueryProbe",
    "QueryStats",
    "RetrievalCounters",
    "RuleClassifier",
    "ScanRetriever",
    "learn_queries",
    "measure_learned_queries",
    "offline_query_stats",
    "measure_query",
]
