"""Automatic Query Generation (AQG): query-based document retrieval.

Stands in for QXtract [2]: machine-learned keyword queries that retrieve
documents rich in target tuples.  Training ranks tokens of a labelled
training database by how well the single-token query separates good
documents from the rest (precision-weighted F-beta, as the paper's setup
trains QXtract to match *good* documents specifically, avoiding bad and
empty ones); at execution time the learned queries are issued in order
against the (unseen) target database through its top-k search interface.

AQG avoids scanning the whole database but cannot reach good documents no
learned query matches — the recall ceiling Equation 2 models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.types import DocumentClass
from ..robustness.context import AccessFailedError, ResilienceContext
from ..textdb.database import TextDatabase
from ..textdb.document import Document
from .base import DocumentRetriever
from .queries import Query, QueryProbe, QueryStats, measure_query


@dataclass(frozen=True)
class LearnedQuery:
    """A query with its training-time statistics."""

    query: Query
    training_precision: float
    training_hits: int
    training_bad_fraction: float = 0.0


def learn_queries(
    database: TextDatabase,
    relation: str,
    max_queries: int = 40,
    min_df: int = 3,
    beta: float = 0.25,
) -> List[LearnedQuery]:
    """Learn single-token queries targeting good documents.

    Tokens are scored by F-beta between the precision of the query's match
    set toward good documents and its recall of the good-document set, then
    the *max_queries* best are kept (best first).  Greedy coverage-style
    selection (as in set-cover query learners) is deliberately avoided: the
    AQG quality model assumes queries are biased toward Dg but otherwise
    conditionally independent, which plain per-query ranking preserves.
    """
    docs = list(database.documents)
    good_ids = {
        doc.doc_id
        for doc in docs
        if doc.classify(relation) is DocumentClass.GOOD
    }
    if not good_ids:
        raise RuntimeError(f"training database has no good documents for {relation!r}")
    index = database.index
    bad_ids = {
        doc.doc_id
        for doc in docs
        if doc.classify(relation) is DocumentClass.BAD
    }
    scored: List[Tuple[float, str, float, float, int]] = []
    b2 = beta * beta
    for token in index.tokens():
        postings = index.postings(token)
        if len(postings) < min_df:
            continue
        good_matches = sum(1 for doc_id in postings if doc_id in good_ids)
        if good_matches == 0:
            continue
        bad_matches = sum(1 for doc_id in postings if doc_id in bad_ids)
        precision = good_matches / len(postings)
        recall = good_matches / len(good_ids)
        score = (1 + b2) * precision * recall / (b2 * precision + recall)
        scored.append(
            (score, token, precision, bad_matches / len(postings), len(postings))
        )
    scored.sort(reverse=True)
    return [
        LearnedQuery(
            query=Query.of(token),
            training_precision=precision,
            training_hits=hits,
            training_bad_fraction=bad_fraction,
        )
        for _, token, precision, bad_fraction, hits in scored[:max_queries]
    ]


def measure_learned_queries(
    queries: Sequence[LearnedQuery],
    database: TextDatabase,
    relation: str,
) -> List[QueryStats]:
    """Offline H(q)/P(q) measurement of learned queries on a target database."""
    return [measure_query(database, lq.query, relation) for lq in queries]


def offline_query_stats(
    queries: Sequence[LearnedQuery],
    database: TextDatabase,
) -> List[QueryStats]:
    """Label-free query statistics for an *unseen* target database.

    A query's hit count H(q) is observable on any database (search engines
    report it), while its class precision is not — so precision and the
    bad fraction are carried over from training, the offline-estimation
    step the paper describes for retrieval-specific parameters.
    """
    return [
        QueryStats(
            query=lq.query,
            hits=database.match_count(lq.query.tokens),
            precision=lq.training_precision,
            bad_fraction=lq.training_bad_fraction,
        )
        for lq in queries
    ]


class AQGRetriever(DocumentRetriever):
    """Issues learned queries in order; yields unseen matching documents.

    Under a resilience context, a learned query whose search access fails
    permanently is dropped (the context records the failure) and the
    retriever moves on to the next query — the failed attempt never counts
    as an issued query, so it cannot masquerade as "matched nothing".
    """

    def __init__(
        self,
        database: TextDatabase,
        queries: Sequence[LearnedQuery],
        resilience: Optional[ResilienceContext] = None,
        observability=None,
    ) -> None:
        super().__init__(database, resilience, observability)
        if not queries:
            raise ValueError("AQG needs at least one learned query")
        self._queries: List[Query] = [lq.query for lq in queries]
        self._probe = QueryProbe(
            database, resilience=resilience, observability=self.observability
        )
        self._buffer: List[Document] = []
        self._next_query = 0

    @property
    def queries_remaining(self) -> int:
        return len(self._queries) - self._next_query

    @property
    def next_query_index(self) -> int:
        """Index of the next learned query to issue (checkpointing)."""
        return self._next_query

    @property
    def probe(self) -> QueryProbe:
        """The underlying query probe (checkpointing)."""
        return self._probe

    def buffered_ids(self) -> List[int]:
        """Doc ids retrieved but not yet handed out (checkpointing)."""
        return [doc.doc_id for doc in self._buffer]

    def restore_progress(
        self, next_query: int, buffer: Sequence[Document]
    ) -> None:
        """Reset cursor and pending buffer (checkpoint restore)."""
        if not 0 <= next_query <= len(self._queries):
            raise ValueError(f"query cursor {next_query} out of range")
        self._next_query = next_query
        self._buffer = list(buffer)

    @property
    def exhausted(self) -> bool:
        return not self._buffer and self._next_query >= len(self._queries)

    def next_document(self) -> Optional[Document]:
        while not self._buffer and self._next_query < len(self._queries):
            query = self._queries[self._next_query]
            self._next_query += 1
            try:
                fresh = self._probe.issue(query)
            except AccessFailedError:
                # The query could not be asked; move on to the next one.
                continue
            self.counters.queries_issued += 1
            self.counters.retrieved += len(fresh)
            self._buffer.extend(fresh)
        if not self._buffer:
            return None
        return self._buffer.pop(0)
