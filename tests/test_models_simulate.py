"""Tests for the Monte Carlo outcome simulator."""

import numpy as np
import pytest

from repro.core import QualityRequirement, RetrievalKind
from repro.experiments.figures import task_statistics
from repro.models import IDJNModel, SideStatistics, simulate_idjn


@pytest.fixture(scope="module")
def setup(hq_ex_task):
    statistics = task_statistics(hq_ex_task, 0.4, 0.4)
    model = IDJNModel(statistics, RetrievalKind.SCAN, RetrievalKind.SCAN)
    n1 = len(hq_ex_task.database1) // 2
    n2 = len(hq_ex_task.database2) // 2
    rho1 = (
        model.models[1].good_fraction_processed(n1),
        model.models[1].bad_fraction_processed(n1),
    )
    rho2 = (
        model.models[2].good_fraction_processed(n2),
        model.models[2].bad_fraction_processed(n2),
    )
    outcomes = simulate_idjn(
        statistics.side1,
        statistics.side2,
        rho1,
        rho2,
        n_samples=3000,
        seed=7,
    )
    return statistics, model, (n1, n2), outcomes


class TestSimulateIDJN:
    def test_mean_matches_analytic_model(self, setup):
        statistics, model, (n1, n2), outcomes = setup
        prediction = model.predict(n1, n2)
        assert outcomes.mean_good == pytest.approx(prediction.n_good, rel=0.05)
        assert outcomes.mean_bad == pytest.approx(prediction.n_bad, rel=0.05)

    def test_quantiles_bracket_mean(self, setup):
        _, _, _, outcomes = setup
        quantiles = outcomes.quantiles((0.05, 0.5, 0.95))
        assert quantiles[0.05][0] <= outcomes.mean_good <= quantiles[0.95][0]
        assert quantiles[0.05][0] < quantiles[0.95][0]

    def test_analytic_interval_consistent_with_mc(self, setup):
        """The normal-approximation interval should roughly match the MC
        2.5/97.5% quantiles."""
        _, model, (n1, n2), outcomes = setup
        good_iv, _ = model.predict_interval(n1, n2)
        quantiles = outcomes.quantiles((0.025, 0.975))
        assert good_iv.low == pytest.approx(quantiles[0.025][0], rel=0.25)
        assert good_iv.high == pytest.approx(quantiles[0.975][0], rel=0.25)

    def test_meeting_probability_calibrated(self, setup):
        """τg at the mean → P(meet) ≈ 0.5; far above → ≈ 0; far below → ≈ 1."""
        _, model, (n1, n2), outcomes = setup
        prediction = model.predict(n1, n2)
        at_mean = QualityRequirement(int(prediction.n_good), 10**9)
        assert 0.3 <= outcomes.probability_of_meeting(at_mean) <= 0.7
        trivial = QualityRequirement(1, 10**9)
        assert outcomes.probability_of_meeting(trivial) == 1.0
        impossible = QualityRequirement(10**9, 10**9)
        assert outcomes.probability_of_meeting(impossible) == 0.0

    def test_bad_bound_lowers_probability(self, setup):
        _, model, (n1, n2), outcomes = setup
        prediction = model.predict(n1, n2)
        loose = QualityRequirement(int(prediction.n_good * 0.5), 10**9)
        strict = QualityRequirement(
            int(prediction.n_good * 0.5), int(prediction.n_bad * 0.5)
        )
        assert outcomes.probability_of_meeting(
            strict
        ) <= outcomes.probability_of_meeting(loose)

    def test_deterministic_by_seed(self, setup):
        statistics, _, _, _ = setup
        a = simulate_idjn(
            statistics.side1, statistics.side2, (0.5, 0.5), (0.5, 0.5),
            n_samples=200, seed=42,
        )
        b = simulate_idjn(
            statistics.side1, statistics.side2, (0.5, 0.5), (0.5, 0.5),
            n_samples=200, seed=42,
        )
        assert np.array_equal(a.good, b.good)

    def test_disjoint_sides_all_zero(self):
        def side(name, value):
            return SideStatistics(
                relation=name,
                n_documents=100,
                n_good_docs=50,
                n_bad_docs=10,
                good_frequency={value: 5.0},
                bad_frequency={},
                bad_in_good_frequency={},
                tp=0.9,
                fp=0.5,
            )

        outcomes = simulate_idjn(
            side("A", "x"), side("B", "y"), (1.0, 1.0), (1.0, 1.0),
            n_samples=50,
        )
        assert outcomes.mean_good == 0.0
        assert outcomes.mean_bad == 0.0

    def test_invalid_rho(self, setup):
        statistics, _, _, _ = setup
        with pytest.raises(ValueError):
            simulate_idjn(
                statistics.side1, statistics.side2, (1.5, 0.5), (0.5, 0.5)
            )
