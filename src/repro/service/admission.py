"""Priority-aware admission control and the service degrade ladder.

The original service had one overload behaviour: queue full → 503.  The
:class:`AdmissionController` replaces that binary with a ladder whose
rungs trade answer quality for latency under load:

1. **admit** — run the request normally on the worker pool;
2. **degrade** — answer an ``execute`` request from *stored* warm
   statistics through the plan cache (a plan-only answer, milliseconds,
   no database access), flagged ``"degraded": true`` so clients know the
   contract was met with a prediction rather than a run;
3. **shed** — 503 with a *jittered* ``Retry-After`` so a thundering herd
   of rejected clients does not reconverge on the same instant.

The decision is a function of queue depth, the request's priority, its
estimated cost (``plan``-mode requests cost a dict lookup when the
:class:`~repro.service.plancache.PlanCache` is warm, one optimizer build
otherwise — never a database scan), and whether degraded answers are even
possible (fresh warm statistics in the store).  Priorities move the
degrade threshold: ``high`` requests are only degraded when the queue is
completely full, ``low`` ones already at half depth.
"""

from __future__ import annotations

import dataclasses
import math
import random
import threading
from dataclasses import dataclass
from typing import Dict

#: decision labels (the ``action`` of one AdmissionDecision)
ADMIT = "admit"
DEGRADE = "degrade"
SHED = "shed"

#: queue depth (as a fraction of the limit) at which each priority class
#: is pushed down the degrade ladder; ``high`` only degrades when the
#: queue is outright full
DEGRADE_FRACTIONS: Dict[str, float] = {"high": 1.0, "normal": 0.75, "low": 0.5}


@dataclass(frozen=True)
class AdmissionDecision:
    """One admission outcome: what to do and (for sheds) when to retry.

    ``depth`` records the queue depth the decision was made against, so a
    wide event can show *why* a request was degraded or shed without
    re-deriving load from surrounding events.
    """

    action: str
    retry_after: float = 0.0
    reason: str = ""
    depth: int = 0


class AdmissionController:
    """Decides admit/degrade/shed from load, priority, and plan cost.

    Thread-safe; the jitter stream is seeded so a test (or a seeded chaos
    run) sees a reproducible Retry-After sequence.
    """

    def __init__(
        self,
        queue_limit: int,
        retry_scale: float = 0.5,
        seed: int = 0,
    ) -> None:
        if queue_limit <= 0:
            raise ValueError("queue_limit must be positive")
        self.queue_limit = queue_limit
        #: how much each queued request adds to the Retry-After base
        self.retry_scale = retry_scale
        self._rng = random.Random(f"admission|{seed}")
        self._lock = threading.Lock()
        self.decisions: Dict[str, int] = {ADMIT: 0, DEGRADE: 0, SHED: 0}

    def decide(
        self,
        mode: str,
        priority: str,
        depth: int,
        warm_available: bool,
        plan_cached: bool,
    ) -> AdmissionDecision:
        """The admission outcome for one request under the current load."""
        with self._lock:
            decision = self._decide(
                mode, priority, depth, warm_available, plan_cached
            )
            self.decisions[decision.action] += 1
            return dataclasses.replace(decision, depth=depth)

    def _decide(
        self,
        mode: str,
        priority: str,
        depth: int,
        warm_available: bool,
        plan_cached: bool,
    ) -> AdmissionDecision:
        if depth >= self.queue_limit:
            # The queue cannot take the request.  The only cheap answer
            # left is a warm-statistics plan — the last rung before 503.
            if mode == "execute" and warm_available:
                return AdmissionDecision(DEGRADE, reason="queue_full")
            return AdmissionDecision(
                SHED,
                retry_after=self._retry_after(depth),
                reason="queue_full",
            )
        if mode == "plan":
            # Plan answers never touch a database: a cached requirement is
            # a dict lookup, a cache miss one optimizer build.  Either way
            # the cost is bounded, so plan traffic rides out backlogs that
            # degrade execute traffic.
            return AdmissionDecision(
                ADMIT, reason="cached" if plan_cached else "bounded"
            )
        if depth >= self.degrade_depth(priority) and warm_available:
            return AdmissionDecision(DEGRADE, reason="backlog")
        return AdmissionDecision(ADMIT)

    def degrade_depth(self, priority: str) -> int:
        """Queue depth at which *priority* traffic starts degrading."""
        fraction = DEGRADE_FRACTIONS.get(priority, DEGRADE_FRACTIONS["normal"])
        return max(1, int(math.ceil(fraction * self.queue_limit)))

    def retry_after(self, depth: int) -> float:
        """A jittered Retry-After hint scaled to the backlog (≥ 1s)."""
        with self._lock:
            return self._retry_after(depth)

    def _retry_after(self, depth: int) -> float:
        base = 1.0 + self.retry_scale * max(depth, 0)
        return base * self._rng.uniform(1.0, 1.5)

    def snapshot(self) -> Dict[str, int]:
        """Decision tallies for metrics export."""
        with self._lock:
            return dict(self.decisions)


__all__ = [
    "ADMIT",
    "DEGRADE",
    "SHED",
    "AdmissionController",
    "AdmissionDecision",
    "DEGRADE_FRACTIONS",
]
