"""Guaranteed plan-quality bounds for optimizer pruning (DESIGN §6.7).

The Section V models are expensive because they evaluate a plan at a
*specific* operating point.  But every model's good/bad compositions are
built from per-value occurrence factors that are pointwise capped by
their full-retrieval values — coverage fractions never exceed 1, OIJN's
per-value issue coverage ``own + (1-own)·ρ_rest`` never exceeds 1, and
ZGJN's document reach never exceeds its occupancy ceiling.  Pushing those
caps through the composition algebra yields *guaranteed* upper bounds on
E[|Tgood⋈|] and E[|Tbad⋈|] at **any** effort level, computable from the
cached :class:`~repro.models.kernels.CompositionKernel` dot products in
microseconds — no model construction, no effort probes.

The optimizer uses ``good_upper`` to discard plans that provably cannot
reach ``τg`` before paying for a single model prediction (tier A of the
pruning layer; tier B — bracket dominance during bisection descent —
lives in :mod:`.optimizer`).  Bound tightness is reported q-error style
(``bound / actual`` at full effort) next to ``BENCH_perf.json``.

Soundness notes, per mode:

* **per-value**: Equation 1's good term is ``Σ_v f1(v)·f2(v)`` with
  ``f(v) ≤ tp·g(v)`` pointwise for every model (coverages ≤ 1), so
  ``good ≤ tp1·tp2·s_gg`` — exact for scan/scan IDJN at full effort.
  For ZGJN the coverage fractions are further capped by the reachable-
  document occupancy ceiling (computed from the hypergeometric
  full-retrieval tail, :func:`~repro.models.distributions.issue_probability_ceiling`),
  which tightens the bound by the same factor the model itself is capped.
* **aggregate**: the composed term is ``count·(m1·m2 + corr·s1·s2)``
  with means and *population standard deviations* of the factor arrays.
  The std is **not** pointwise-monotone under factor shrinking, so the
  cap-array moments alone are unsound; instead ``s² ≤ E[f²] ≤ E[f_cap²]``
  bounds the std by the cap array's root mean square.  Means and RMS are
  taken over the nonzero-cap subset, which dominates both the full-array
  moments (dropping zeros raises nonnegative means) and the masked
  moments the OIJN aggregate path uses (its masks *are* the nonzero-cap
  subsets).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import exp
from typing import Optional, Tuple

import numpy as np

from ..core.plan import JoinKind, JoinPlanSpec
from ..models.distributions import issue_probability_ceiling
from ..models.kernels import composition_kernel, side_kernel
from ..models.parameters import (
    JoinStatistics,
    SideStatistics,
    ValueOverlapModel,
)
from .catalog import StatisticsCatalog

#: relative slack applied before any prune decision: the models evaluate
#: the same products in a different association order (and the scalar
#: reference paths differ from the vectorized ones by ~1e-9 relative), so
#: a bound is only trusted to separate values that differ by more than
#: float-rounding noise.
BOUND_SLACK = 1.0 + 1e-9


@dataclass(frozen=True)
class PlanBounds:
    """Guaranteed effort-independent quality ceilings for one plan."""

    plan: JoinPlanSpec
    #: E[|Tgood⋈|] at any operating point is ≤ this
    good_upper: float
    #: E[|Tbad⋈|] at any operating point is ≤ this
    bad_upper: float

    def cannot_reach(self, target_good: float) -> bool:
        """True when no operating point can produce *target_good* tuples."""
        return self.good_upper * BOUND_SLACK < target_good


def _good_share(side: SideStatistics) -> float:
    """Good-document share among query-matchable documents (ZGJN model)."""
    good_docs = side.total_good_occurrences + sum(
        side.bad_in_good_frequency.values()
    )
    all_docs = side.total_good_occurrences + side.total_bad_occurrences
    if all_docs <= 0:
        return 0.0
    return good_docs / all_docs


def _zgjn_reachable_ceiling(
    side: SideStatistics, other: SideStatistics
) -> float:
    """ZGJN's occupancy ceiling on documents of *side* reachable by queries.

    Mirrors ``ZGJNModel._compute_reachable`` (per-value, dedup-corrected —
    the configuration the optimizer always constructs): a document is only
    reachable through queries for values it contains, a value is only
    queried if the other side's extractor can emit it at all, and the
    extraction ceiling is the full-retrieval hypergeometric tail.  The
    model's ``cap(raw, ceiling) ≤ ceiling`` guarantees its document reach
    never exceeds this number at any query budget.
    """
    non_empty = float(side.n_good_docs + side.n_bad_docs)
    if non_empty <= 0:
        return 0.0
    values = sorted(set(side.good_frequency) | set(side.bad_frequency))
    if not values:
        return 0.0
    g_other = np.array([other.good_frequency.get(v, 0.0) for v in values])
    b_other = np.array([other.bad_frequency.get(v, 0.0) for v in values])
    mask = (g_other != 0) | (b_other != 0)
    p_queryable = issue_probability_ceiling(
        g_other, b_other, other.tp, other.fp
    )
    hits = np.array(
        [side.good_frequency.get(v, 0.0) for v in values]
    ) + np.array([side.bad_frequency.get(v, 0.0) for v in values])
    slots = float(np.sum((p_queryable * np.minimum(hits, side.top_k))[mask]))
    return non_empty * (1.0 - exp(-slots / non_empty))


def _zgjn_coverage_caps(
    statistics: JoinStatistics,
) -> Tuple[Tuple[float, float], Tuple[float, float]]:
    """((ρg1, ρb1), (ρg2, ρb2)) ceilings on ZGJN's coverage fractions."""
    caps = []
    for side, other in (
        (statistics.side1, statistics.side2),
        (statistics.side2, statistics.side1),
    ):
        reach = _zgjn_reachable_ceiling(side, other)
        share = _good_share(side)
        rho_good = min(reach * share / max(side.n_good_docs, 1), 1.0)
        rho_bad = min(reach * (1.0 - share) / max(side.n_bad_docs, 1), 1.0)
        caps.append((rho_good, rho_bad))
    return caps[0], caps[1]


def _per_value_bounds(
    plan: JoinPlanSpec, statistics: JoinStatistics
) -> PlanBounds:
    side1, side2 = statistics.side1, statistics.side2
    kernel = composition_kernel(side1, side2)
    tp1, fp1 = side1.tp, side1.fp
    tp2, fp2 = side2.tp, side2.fp
    if plan.join is JoinKind.ZGJN:
        (rho_g1, rho_b1), (rho_g2, rho_b2) = _zgjn_coverage_caps(statistics)
    else:
        rho_g1 = rho_b1 = rho_g2 = rho_b2 = 1.0
    good = tp1 * tp2 * rho_g1 * rho_g2 * kernel.s_gg
    good_bad = (
        tp1 * fp2 * rho_g1 * (rho_g2 * kernel.s_g_bg + rho_b2 * kernel.s_g_bb)
    )
    bad_good = (
        fp1 * tp2 * rho_g2 * (rho_g1 * kernel.s_bg_g + rho_b1 * kernel.s_bb_g)
    )
    bad_bad = fp1 * fp2 * (
        rho_g1 * rho_g2 * kernel.s_bgbg
        + rho_g1 * rho_b2 * kernel.s_bgbb
        + rho_b1 * rho_g2 * kernel.s_bbbg
        + rho_b1 * rho_b2 * kernel.s_bbbb
    )
    return PlanBounds(
        plan=plan,
        good_upper=good,
        bad_upper=good_bad + bad_good + bad_bad,
    )


def _cap_moments(cap: np.ndarray) -> Tuple[float, float]:
    """(mean, RMS) of a cap array over its nonzero subset.

    Dominates the (mean, std) of *any* factor array that is pointwise
    within ``[0, cap]``, whether the composition takes moments over the
    full array or over the nonzero-cap mask.
    """
    nonzero = cap[cap > 0]
    if nonzero.size == 0:
        return 0.0, 0.0
    mean = float(nonzero.mean())
    rms = float(np.sqrt((nonzero**2).mean()))
    return mean, rms


def _aggregate_bounds(
    plan: JoinPlanSpec,
    statistics: JoinStatistics,
    overlap: Optional[ValueOverlapModel],
    correlation: float,
) -> PlanBounds:
    side1, side2 = statistics.side1, statistics.side2
    if overlap is None:
        overlap = ValueOverlapModel.from_side_values(side1, side2)
    k1, k2 = side_kernel(side1), side_kernel(side2)
    mg1, rg1 = _cap_moments(side1.tp * k1.g)
    mb1, rb1 = _cap_moments(side1.fp * (k1.bg + k1.bb))
    mg2, rg2 = _cap_moments(side2.tp * k2.g)
    mb2, rb2 = _cap_moments(side2.fp * (k2.bg + k2.bb))

    def term(count: float, m1: float, r1: float, m2: float, r2: float) -> float:
        return max(0.0, count * (m1 * m2 + correlation * r1 * r2))

    return PlanBounds(
        plan=plan,
        good_upper=term(overlap.n_gg, mg1, rg1, mg2, rg2),
        bad_upper=(
            term(overlap.n_gb, mg1, rg1, mb2, rb2)
            + term(overlap.n_bg, mb1, rb1, mg2, rg2)
            + term(overlap.n_bb, mb1, rb1, mb2, rb2)
        ),
    )


def plan_bounds(
    catalog: StatisticsCatalog,
    plan: JoinPlanSpec,
    correlation: Optional[float] = None,
) -> Optional[PlanBounds]:
    """Guaranteed quality ceilings for *plan*, or None when unavailable.

    Never raises: a catalog that cannot build statistics for the plan's
    operating point simply yields no bound (the caller falls back to the
    unpruned evaluation path, which reports such plans infeasible).
    """
    from ..models.scheme import DEFAULT_FREQUENCY_CORRELATION

    try:
        statistics = catalog.at(
            plan.extractor1.theta, plan.extractor2.theta
        )
        if catalog.per_value:
            return _per_value_bounds(plan, statistics)
        return _aggregate_bounds(
            plan,
            statistics,
            catalog.overlap,
            DEFAULT_FREQUENCY_CORRELATION
            if correlation is None
            else correlation,
        )
    except (ValueError, KeyError, ZeroDivisionError, OverflowError):
        return None
