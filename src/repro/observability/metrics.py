"""Counters, gauges, and histograms with a Prometheus-style text dump.

A :class:`MetricsRegistry` hands out label-keyed instruments on first use
(``registry.counter("repro_documents_processed_total", side="1")``) and
renders the whole family in the Prometheus exposition text format, so the
same dump can be diffed in CI, scraped in a real deployment, or compared
against ``BENCH_*.json`` wall-clock accounting.

All instruments are plain Python objects mutated in-place — no locks, no
background threads — matching the repo's single-threaded executors; the
fork-based optimizer fan-out ships child registries back as plain dicts
and merges them deterministically (:meth:`MetricsRegistry.merge`).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: default histogram buckets, in (wall-clock) seconds
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0
)


class Counter:
    """Monotone counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    Each bucket can carry one *exemplar* — an opaque id (here: a request
    id) plus the observed value that most recently landed in the bucket —
    so a slow histogram bucket links straight to the concrete request
    that produced it (the flight-recorder event, via ``/v1/debug``).
    """

    __slots__ = ("buckets", "counts", "total", "count", "exemplars")

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * (len(self.buckets) + 1)  # +Inf bucket last
        #: per-bucket most-recent exemplar: (id, observed value) or None
        self.exemplars: List[Optional[Tuple[str, float]]] = [None] * (
            len(self.buckets) + 1
        )
        self.total = 0.0
        self.count = 0

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        self.total += value
        self.count += 1
        index = len(self.buckets)  # +Inf unless a finite bound fits
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        if exemplar is not None:
            self.exemplars[index] = (str(exemplar), value)

    def exemplar_for(self, value: float) -> Optional[Tuple[str, float]]:
        """The exemplar of the bucket *value* would fall into, or None."""
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                return self.exemplars[i]
        return self.exemplars[-1]


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for disabled registries."""

    __slots__ = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        return None


NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Disabled registry: every instrument is the shared no-op."""

    enabled = False

    def counter(self, name: str, **labels: Any) -> _NullInstrument:
        return NULL_INSTRUMENT

    def gauge(self, name: str, **labels: Any) -> _NullInstrument:
        return NULL_INSTRUMENT

    def histogram(
        self, name: str, buckets: Optional[Tuple[float, ...]] = None, **labels: Any
    ) -> _NullInstrument:
        return NULL_INSTRUMENT

    def render(self) -> str:
        return ""


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_labels(labels: LabelKey) -> str:
    if not labels:
        return ""
    body = ",".join(f'{key}="{value}"' for key, value in labels)
    return "{" + body + "}"


class MetricsRegistry:
    """Get-or-create instrument store with Prometheus text rendering."""

    enabled = True

    def __init__(self) -> None:
        #: (name, labels) -> instrument, insertion-ordered for stable dumps
        self._instruments: Dict[Tuple[str, LabelKey], Any] = {}
        self._types: Dict[str, str] = {}
        self._help: Dict[str, str] = {}

    def describe(self, name: str, help_text: str) -> None:
        """Attach a ``# HELP`` line to a metric family."""
        self._help[name] = help_text

    def _get(self, kind: str, name: str, labels: Dict[str, Any], factory):
        declared = self._types.setdefault(name, kind)
        if declared != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {declared}"
            )
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory()
            self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", name, labels, Counter)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get("gauge", name, labels, Gauge)

    def histogram(
        self, name: str, buckets: Optional[Tuple[float, ...]] = None, **labels: Any
    ) -> Histogram:
        chosen = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        return self._get("histogram", name, labels, lambda: Histogram(chosen))

    # -- introspection --------------------------------------------------------

    def families(self) -> Iterable[Tuple[str, str, LabelKey, Any]]:
        """Yield (name, type, labels, instrument), dump order."""
        for (name, labels), instrument in sorted(self._instruments.items()):
            yield name, self._types[name], labels, instrument

    def value(self, name: str, **labels: Any) -> float:
        """Current value of a counter/gauge (0.0 when never touched)."""
        instrument = self._instruments.get((name, _label_key(labels)))
        return instrument.value if instrument is not None else 0.0

    def drop(self, name: str) -> None:
        """Remove every instrument of a family (e.g. refreshed info gauges)."""
        self._instruments = {
            key: instrument
            for key, instrument in self._instruments.items()
            if key[0] != name
        }
        self._types.pop(name, None)

    def totals(self) -> Dict[str, float]:
        """Flat ``name{labels} -> value`` map of counters and gauges."""
        flat: Dict[str, float] = {}
        for name, kind, labels, instrument in self.families():
            if kind == "histogram":
                flat[f"{name}_sum{_format_labels(labels)}"] = instrument.total
                flat[f"{name}_count{_format_labels(labels)}"] = float(
                    instrument.count
                )
            else:
                flat[f"{name}{_format_labels(labels)}"] = instrument.value
        return flat

    # -- rendering ------------------------------------------------------------

    def render(self) -> str:
        """The Prometheus exposition text format."""
        lines: List[str] = []
        last_name = None
        for name, kind, labels, instrument in self.families():
            if name != last_name:
                help_text = self._help.get(name) or _default_help(name)
                lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {kind}")
                last_name = name
            if kind == "histogram":
                cumulative = 0
                for bound, count in zip(instrument.buckets, instrument.counts):
                    cumulative += count
                    bucket_labels = labels + (("le", repr(bound)),)
                    lines.append(
                        f"{name}_bucket{_format_labels(bucket_labels)} {cumulative}"
                    )
                cumulative += instrument.counts[-1]
                inf_labels = labels + (("le", "+Inf"),)
                lines.append(
                    f"{name}_bucket{_format_labels(inf_labels)} {cumulative}"
                )
                lines.append(
                    f"{name}_sum{_format_labels(labels)} {_render_value(instrument.total)}"
                )
                lines.append(f"{name}_count{_format_labels(labels)} {instrument.count}")
            else:
                lines.append(
                    f"{name}{_format_labels(labels)} {_render_value(instrument.value)}"
                )
        return "\n".join(lines) + ("\n" if lines else "")

    # -- fork support ---------------------------------------------------------

    def export_state(self) -> List[Tuple[str, str, LabelKey, Any]]:
        """Picklable snapshot for shipping out of a fork worker."""
        state = []
        for name, kind, labels, instrument in self.families():
            if kind == "histogram":
                payload: Any = (
                    instrument.buckets,
                    list(instrument.counts),
                    instrument.total,
                    instrument.count,
                    list(instrument.exemplars),
                )
            else:
                payload = instrument.value
            state.append((name, kind, labels, payload))
        return state

    def merge(self, state: List[Tuple[str, str, LabelKey, Any]]) -> None:
        """Fold a child snapshot in: counters/histograms add, gauges overwrite.

        Merging children in worker-index order keeps gauge last-write
        deterministic.
        """
        for name, kind, labels, payload in state:
            label_dict = dict(labels)
            if kind == "counter":
                self.counter(name, **label_dict).inc(payload)
            elif kind == "gauge":
                self.gauge(name, **label_dict).set(payload)
            else:
                buckets, counts, total, count, exemplars = payload
                histogram = self.histogram(name, buckets=buckets, **label_dict)
                for index, bucket_count in enumerate(counts):
                    histogram.counts[index] += bucket_count
                    # child exemplar wins: it is the more recent observation
                    if exemplars[index] is not None:
                        histogram.exemplars[index] = tuple(exemplars[index])
                histogram.total += total
                histogram.count += count


def _default_help(name: str) -> str:
    return name.replace("_", " ")


def _render_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def percentile(values: Iterable[float], fraction: float) -> float:
    """Nearest-rank percentile of *values* (``fraction`` in ``[0, 1]``).

    Nearest-rank (no interpolation) so a reported p99 is a latency some
    request actually experienced; ``0.0`` for an empty input.
    """
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must lie in [0, 1], got {fraction!r}")
    rank = max(math.ceil(fraction * len(ordered)), 1)
    return ordered[rank - 1]
