"""A stdlib-only sampling profiler rendered as collapsed stacks.

``/v1/debug/profile?seconds=N`` needs to answer "where are the worker
threads spending time *right now*?" without adding per-call overhead to
the hot path.  :class:`SamplingProfiler` polls
:func:`sys._current_frames` at a fixed interval from the *calling*
thread (for the service: the HTTP handler thread serving the debug
request), aggregates each thread's stack root-first, and renders the
counts in the flamegraph "collapsed" format::

    thread;module.py:outer;module.py:inner 42

Caveats (documented in DESIGN §6.8): samples are wall-clock, so a
thread blocked on a lock or socket counts the same as one burning CPU;
the sampler never sees stacks shorter than one interval; and
``sys._current_frames`` momentarily holds the interpreter's internal
state, so very small intervals (<1ms) are clamped.  The profiler only
runs while a debug request asks for it — zero steady-state cost.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Dict, List, Optional

__all__ = ["ProfileResult", "SamplingProfiler"]

#: floor on the sampling interval, seconds
MIN_INTERVAL = 0.001

#: ceiling on one profiling window, seconds (debug endpoint guard)
MAX_SECONDS = 60.0


class ProfileResult:
    """Aggregated samples: collapsed stack -> observation count."""

    def __init__(
        self, stacks: Dict[str, int], samples: int, duration: float
    ) -> None:
        self.stacks = stacks
        self.samples = samples
        self.duration = duration

    def render(self) -> str:
        """Flamegraph collapsed format, highest count first."""
        lines = [
            f"{stack} {count}"
            for stack, count in sorted(
                self.stacks.items(), key=lambda item: (-item[1], item[0])
            )
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> Dict[str, object]:
        return {
            "samples": self.samples,
            "duration_seconds": self.duration,
            "stacks": dict(
                sorted(self.stacks.items(), key=lambda item: (-item[1], item[0]))
            ),
        }


def _frame_label(frame) -> str:
    code = frame.f_code
    return f"{os.path.basename(code.co_filename)}:{code.co_name}"


def _collapse(thread_name: str, frame) -> str:
    parts: List[str] = []
    while frame is not None:
        parts.append(_frame_label(frame))
        frame = frame.f_back
    parts.append(thread_name)
    return ";".join(reversed(parts))


class SamplingProfiler:
    """Poll every live thread's stack for a bounded window.

    Thread names become stack roots, so one profile separates the
    service worker pool (``join-service-*``) from HTTP handler threads.
    The calling thread is excluded (it would only ever show this
    sampling loop).  Concurrent profile requests serialize on a module
    lock — overlapping samplers would double the interpreter pauses for
    no extra information.
    """

    _lock = threading.Lock()

    def __init__(
        self,
        interval: float = 0.005,
        clock=time.perf_counter,
        sleep=time.sleep,
    ) -> None:
        self.interval = max(float(interval), MIN_INTERVAL)
        self.clock = clock
        self.sleep = sleep

    def sample_for(
        self, seconds: float, name_prefix: Optional[str] = None
    ) -> ProfileResult:
        """Sample for *seconds* (clamped to ``MAX_SECONDS``), blocking.

        ``name_prefix`` restricts sampling to threads whose name starts
        with the prefix (e.g. ``join-service`` for just the worker pool).
        """
        seconds = min(max(float(seconds), 0.0), MAX_SECONDS)
        stacks: Dict[str, int] = {}
        samples = 0
        started = self.clock()
        with self._lock:
            while True:
                elapsed = self.clock() - started
                if samples and elapsed >= seconds:
                    break
                names = {
                    thread.ident: thread.name
                    for thread in threading.enumerate()
                    if thread.ident is not None
                }
                current = threading.get_ident()
                for ident, frame in sys._current_frames().items():
                    if ident == current:
                        continue
                    name = names.get(ident, f"thread-{ident}")
                    if name_prefix is not None and not name.startswith(
                        name_prefix
                    ):
                        continue
                    stack = _collapse(name, frame)
                    stacks[stack] = stacks.get(stack, 0) + 1
                samples += 1
                if self.clock() - started >= seconds:
                    break
                self.sleep(self.interval)
        duration = self.clock() - started
        return ProfileResult(stacks, samples, duration)
