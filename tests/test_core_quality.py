"""Tests for quality metrics and execution reports."""

import pytest

from repro.core import (
    ExecutionReport,
    JoinComposition,
    QualityMetrics,
    QualityRequirement,
    TimeBreakdown,
)


class TestQualityMetrics:
    def test_precision(self):
        metrics = QualityMetrics(n_good=8, n_bad=2)
        assert metrics.precision == pytest.approx(0.8)

    def test_precision_of_empty_result_is_one(self):
        assert QualityMetrics(n_good=0, n_bad=0).precision == 1.0

    def test_recall(self):
        metrics = QualityMetrics(n_good=5, n_bad=0, reachable_good=10)
        assert metrics.recall == pytest.approx(0.5)

    def test_recall_unknown_without_reachable(self):
        assert QualityMetrics(n_good=5, n_bad=0).recall is None

    def test_recall_capped_at_one(self):
        metrics = QualityMetrics(n_good=15, n_bad=0, reachable_good=10)
        assert metrics.recall == 1.0

    def test_recall_of_zero_reachable(self):
        assert QualityMetrics(n_good=0, n_bad=0, reachable_good=0).recall == 1.0

    def test_from_composition(self):
        comp = JoinComposition(n_good=3, n_good_bad=1, n_bad_good=1, n_bad_bad=1)
        metrics = QualityMetrics.from_composition(comp)
        assert metrics.n_good == 3
        assert metrics.n_bad == 3


class TestTimeBreakdown:
    def test_total(self):
        time = TimeBreakdown(retrieval=1, extraction=2, filtering=3, querying=4)
        assert time.total == 10

    def test_add(self):
        a = TimeBreakdown(retrieval=1)
        a.add(TimeBreakdown(extraction=2, querying=1))
        assert a.total == 4
        assert a.extraction == 2


class TestJoinComposition:
    def test_bad_is_sum_of_components(self):
        comp = JoinComposition(n_good=1, n_good_bad=2, n_bad_good=3, n_bad_bad=4)
        assert comp.n_bad == 9
        assert comp.n_total == 10


class TestExecutionReport:
    def _report(self, good=5, bad=2):
        return ExecutionReport(
            composition=JoinComposition(n_good=good, n_good_bad=bad),
            time=TimeBreakdown(retrieval=10.0),
        )

    def test_check_requirement(self):
        report = self._report(good=5, bad=2)
        assert report.check(QualityRequirement(5, 2))
        assert not report.check(QualityRequirement(6, 2))
        assert not report.check(QualityRequirement(5, 1))

    def test_metrics(self):
        assert self._report().metrics().precision == pytest.approx(5 / 7)

    def test_summary_mentions_counts(self):
        summary = self._report().summary()
        assert "good=5" in summary
        assert "bad=2" in summary
