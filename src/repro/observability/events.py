"""Wide events and the flight recorder: per-request service introspection.

One *wide event* is emitted per service request — a single flat record
carrying everything an operator needs to answer "why was this request
slow?": task signature, priority, the admission decision, deadline
budget/spent, coarse phase timings, the chosen plan, cache/pruning
counters, drift deltas, and the outcome.  Events land in a bounded
in-memory ring buffer (the :class:`FlightRecorder`) that the service
exposes through ``GET /v1/debug/requests``.

Retention is *tail-based*: the sampling decision is made after the
request finishes, when its outcome and latency are known.  Errors,
deadline 504s, and sheds are always kept; requests slower than the
rolling p99 are kept; the boring majority is down-sampled 1-in-N
(deterministically, by request id, so reruns keep the same events).
Kept events are appended to a JSONL *spill* file so a crash does not
lose the interesting tail, and only kept events retain their span
records — cheap to observe everything, expensive detail on demand.
"""

from __future__ import annotations

import collections
import json
import pathlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence

from .metrics import percentile

__all__ = [
    "WideEvent",
    "TailSampler",
    "FlightRecorder",
    "span_tree",
    "WIDE_EVENT_SCHEMA",
]

#: schema tag stamped on every emitted event
WIDE_EVENT_SCHEMA = "wide-event/1"


@dataclass
class WideEvent:
    """One canonical structured record per service request."""

    id: int
    ts: float  # completion time, service clock
    task: str
    signature: str
    mode: str  # "plan" | "execute"
    priority: str
    tau_good: int
    tau_bad: int
    outcome: str  # "ok" | "degraded" | "shed" | "deadline" | "error"
    admission: Dict[str, Any] = field(default_factory=dict)
    queue_seconds: float = 0.0
    total_seconds: float = 0.0
    phases: Dict[str, float] = field(default_factory=dict)
    deadline_ms: Optional[float] = None
    deadline_spent_ms: Optional[float] = None
    phase: Optional[str] = None  # interrupted phase (deadline/error only)
    plan: Optional[str] = None
    warm_started: Optional[bool] = None
    rounds: Optional[int] = None
    pilot_fresh_documents: Optional[int] = None
    counters: Dict[str, float] = field(default_factory=dict)
    drift: Optional[Dict[str, float]] = None
    error: Optional[str] = None
    keep: Optional[str] = None  # set by the recorder: why it was kept

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": WIDE_EVENT_SCHEMA,
            "id": self.id,
            "ts": self.ts,
            "task": self.task,
            "signature": self.signature,
            "mode": self.mode,
            "priority": self.priority,
            "tau_good": self.tau_good,
            "tau_bad": self.tau_bad,
            "outcome": self.outcome,
            "admission": dict(self.admission),
            "queue_seconds": self.queue_seconds,
            "total_seconds": self.total_seconds,
            "phases": dict(self.phases),
            "deadline_ms": self.deadline_ms,
            "deadline_spent_ms": self.deadline_spent_ms,
            "phase": self.phase,
            "plan": self.plan,
            "warm_started": self.warm_started,
            "rounds": self.rounds,
            "pilot_fresh_documents": self.pilot_fresh_documents,
            "counters": dict(self.counters),
            "drift": dict(self.drift) if self.drift is not None else None,
            "error": self.error,
            "keep": self.keep,
        }


class TailSampler:
    """Keep-or-drop decisions made *after* the request finishes.

    Decision order (first match wins):

    1. non-success outcomes (anything but ``ok``/``degraded``) — always keep;
    2. latency at or above the rolling p99 of recent requests — keep
       (only once at least ``min_samples`` latencies have been seen, so
       a cold recorder does not flag everything as slow);
    3. deterministic 1-in-``sample_every`` by request id — keep;
    4. otherwise drop.

    The latency window is updated *after* the decision: tail-based
    sampling compares a request against the distribution that preceded
    it, not one that already contains it.
    """

    BORING_OUTCOMES = frozenset({"ok", "degraded"})

    def __init__(
        self,
        sample_every: int = 10,
        slow_fraction: float = 0.99,
        min_samples: int = 20,
        window: int = 512,
    ) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        if not 0.0 < slow_fraction <= 1.0:
            raise ValueError(
                f"slow_fraction must lie in (0, 1], got {slow_fraction!r}"
            )
        self.sample_every = sample_every
        self.slow_fraction = slow_fraction
        self.min_samples = min_samples
        self._latencies: Deque[float] = collections.deque(maxlen=window)

    def decide(self, event: WideEvent) -> Optional[str]:
        """Why to keep *event*, or ``None`` to drop it."""
        reason: Optional[str] = None
        if event.outcome not in self.BORING_OUTCOMES:
            reason = event.outcome
        elif (
            len(self._latencies) >= self.min_samples
            and event.total_seconds
            >= percentile(self._latencies, self.slow_fraction)
        ):
            reason = "slow"
        elif event.id % self.sample_every == 1 % self.sample_every:
            reason = "sampled"
        self._latencies.append(event.total_seconds)
        return reason


class FlightRecorder:
    """Bounded ring of wide events with JSONL spill for the kept tail.

    Every event enters the ring (so ``/v1/debug/requests`` shows the
    recent past regardless of sampling); only *kept* events retain span
    records and are appended to the spill file.  All methods are
    thread-safe: the service's worker pool records concurrently.
    """

    def __init__(
        self,
        capacity: int = 512,
        sampler: Optional[TailSampler] = None,
        spill_path: Optional[str] = None,
        clock=time.time,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.sampler = sampler if sampler is not None else TailSampler()
        self.spill_path = (
            pathlib.Path(spill_path) if spill_path is not None else None
        )
        self.clock = clock
        self._ring: Deque[Dict[str, Any]] = collections.deque(maxlen=capacity)
        self._spans: "collections.OrderedDict[int, List[Dict[str, Any]]]" = (
            collections.OrderedDict()
        )
        self._lock = threading.Lock()
        self._events_total = 0
        self._kept_total = 0
        self._spilled_total = 0
        self._by_outcome: Dict[str, int] = {}

    # -- recording ------------------------------------------------------------

    def record(
        self,
        event: WideEvent,
        spans: Optional[Sequence[Dict[str, Any]]] = None,
    ) -> Optional[str]:
        """Admit one finished request; returns the keep reason (or None)."""
        with self._lock:
            keep = self.sampler.decide(event)
            event.keep = keep
            payload = event.to_dict()
            self._ring.append(payload)
            self._events_total += 1
            self._by_outcome[event.outcome] = (
                self._by_outcome.get(event.outcome, 0) + 1
            )
            if keep is not None:
                self._kept_total += 1
                if spans:
                    self._spans[event.id] = list(spans)
                    while len(self._spans) > self.capacity:
                        self._spans.popitem(last=False)
                if self.spill_path is not None:
                    self._spill(payload)
            return keep

    def _spill(self, payload: Dict[str, Any]) -> None:
        self.spill_path.parent.mkdir(parents=True, exist_ok=True)
        with self.spill_path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, sort_keys=True) + "\n")
        self._spilled_total += 1

    # -- querying -------------------------------------------------------------

    def recent(
        self,
        limit: int = 50,
        outcome: Optional[str] = None,
        mode: Optional[str] = None,
        priority: Optional[str] = None,
        phase: Optional[str] = None,
        since_id: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Most-recent-first slice of the ring, filtered."""
        with self._lock:
            events = list(self._ring)
        selected: List[Dict[str, Any]] = []
        for event in reversed(events):
            if outcome is not None and event["outcome"] != outcome:
                continue
            if mode is not None and event["mode"] != mode:
                continue
            if priority is not None and event["priority"] != priority:
                continue
            if phase is not None and not (
                event["phase"] == phase or phase in event["phases"]
            ):
                continue
            if since_id is not None and event["id"] <= since_id:
                continue
            selected.append(event)
            if len(selected) >= limit:
                break
        return selected

    def get(self, request_id: int) -> Optional[Dict[str, Any]]:
        """Full event plus span tree (spans only for kept events)."""
        with self._lock:
            found = None
            for event in self._ring:
                if event["id"] == request_id:
                    found = dict(event)
                    break
            if found is None:
                return None
            spans = self._spans.get(request_id)
        found["spans"] = span_tree(spans) if spans else []
        return found

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "ring_size": len(self._ring),
                "events_total": self._events_total,
                "kept_total": self._kept_total,
                "spilled_total": self._spilled_total,
                "by_outcome": dict(sorted(self._by_outcome.items())),
                "spill_path": (
                    str(self.spill_path) if self.spill_path is not None else None
                ),
            }


def span_tree(records: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Nest flat tracer records into parent/child trees.

    Tracer records carry ``id``/``parent``; spans whose parent is absent
    from the record set (or ``None``) become roots.  Events (``dur_us``
    absent) nest like spans.  Record order within one level is retained.
    """
    nodes: Dict[int, Dict[str, Any]] = {}
    roots: List[Dict[str, Any]] = []
    for record in records:
        node = dict(record)
        node["children"] = []
        nodes[record["id"]] = node
    for record in records:
        node = nodes[record["id"]]
        parent = record.get("parent")
        if parent is not None and parent in nodes:
            nodes[parent]["children"].append(node)
        else:
            roots.append(node)
    return roots
