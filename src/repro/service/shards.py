"""Crash-safe sharded statistics persistence.

The single ``statistics.json`` of :class:`~repro.service.store.StatisticsStore`
has two serving problems: every tenant (corpus) contends on one file, and
a crash between the temp-file write and the ``os.replace`` loses the whole
generation being written.  :class:`ShardedStatisticsStore` keeps the base
class's in-memory model, schema checking, and fingerprint gating, and
replaces only the persistence layer:

* **Sharding** — records are grouped by a two-hex-character prefix of
  their corpus fingerprint (side records) or of a digest of their
  fingerprint list (task records), into ``shards/<key>.json`` +
  ``shards/<key>.journal`` pairs.  Independent corpora land in
  independent files, so saves touch only the shards whose records
  actually changed.
* **Write-ahead journal** — a save *appends* one checksummed, fsynced
  record (the shard's full payload at the current generation) to the
  shard's journal.  Appends never rewrite committed bytes, so a crash —
  including ``kill -9`` mid-write — can only tear the record being
  appended, never an earlier committed one.
* **Compaction** — every ``compact_every`` journal records the shard's
  snapshot is rewritten atomically (temp + ``os.replace``) and the
  journal is truncated by atomically replacing it with an empty file,
  bounding journal growth without ever exposing a torn state.
* **Recovery** — loading replays each shard's journal over its snapshot;
  the *last valid* record (well-formed JSON, matching CRC) wins, and the
  first invalid record ends the trustworthy prefix (everything after a
  torn write is dropped).  Recovered records then pass the exact same
  schema/coherence filters as the base class, plus shard-placement and
  generation-monotonicity invariants via
  :mod:`repro.validation.invariants`.  The store's generation resumes at
  the maximum committed shard generation, so plan-cache keys stay
  monotone across restarts.

A root containing only the legacy single-file layout is migrated on the
first save; until then the legacy file is loaded as-is.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import random
import time
import zlib
from typing import Any, Callable, Dict, Optional, Tuple

from ..validation.invariants import active_checker
from .store import (
    STORE_VERSION,
    StatisticsStore,
    _CURVE_SCHEMA,
    _SIDE_SCHEMA,
    _TASK_SCHEMA,
    _check_schema,
    _coherent_side,
    _coherent_task,
    _valid_parameters,
)

#: shard filename suffixes: `<key>.json` snapshot + `<key>.journal` WAL
SNAPSHOT_SUFFIX = ".json"
JOURNAL_SUFFIX = ".journal"

#: hex characters of fingerprint used as the shard key (256 shards max)
SHARD_KEY_WIDTH = 2


def side_shard(record: Dict[str, Any]) -> str:
    """The shard key of a side record (its corpus fingerprint prefix)."""
    return str(record["fingerprint"])[:SHARD_KEY_WIDTH]


def task_shard(record: Dict[str, Any]) -> str:
    """The shard key of a task record (digest of its fingerprint list)."""
    joined = "|".join(str(f) for f in record["fingerprints"])
    return hashlib.blake2b(joined.encode(), digest_size=16).hexdigest()[
        :SHARD_KEY_WIDTH
    ]


def _canonical(value: Any) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def encode_journal_record(
    generation: int,
    sides: Dict[str, Any],
    tasks: Dict[str, Any],
    curves: Optional[Dict[str, Any]] = None,
) -> bytes:
    """One self-checking journal line: full shard payload + CRC32.

    ``curves`` is omitted from the encoding when None, reproducing the
    pre-curve record layout byte for byte (and its CRC).
    """
    body = {"generation": generation, "sides": sides, "tasks": tasks}
    if curves is not None:
        body["curves"] = curves
    crc = zlib.crc32(_canonical(body).encode("utf-8"))
    return _canonical({**body, "crc": crc}).encode("utf-8") + b"\n"


def decode_journal_record(line: bytes) -> Optional[Dict[str, Any]]:
    """Parse one journal line; None for anything torn or corrupted.

    The CRC is recomputed over the canonical re-encoding of the parsed
    body — JSON round-trips ints and floats exactly, so a single flipped
    or missing byte anywhere in the line fails the check.  Records
    written before curve persistence existed lack the ``curves`` key;
    they decode without one (their CRC covers the original three-key
    body, so old journals replay unchanged — the replay path treats a
    missing ``curves`` as empty).
    """
    try:
        record = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(record, dict) or set(record) not in (
        {"generation", "sides", "tasks", "crc"},
        {"generation", "sides", "tasks", "curves", "crc"},
    ):
        return None
    body = {
        "generation": record["generation"],
        "sides": record["sides"],
        "tasks": record["tasks"],
    }
    if "curves" in record:
        body["curves"] = record["curves"]
        if not isinstance(body["curves"], dict):
            return None
    if not isinstance(body["generation"], int) or isinstance(
        body["generation"], bool
    ):
        return None
    if not isinstance(body["sides"], dict) or not isinstance(
        body["tasks"], dict
    ):
        return None
    if record["crc"] != zlib.crc32(_canonical(body).encode("utf-8")):
        return None
    return body


class ShardedStatisticsStore(StatisticsStore):
    """Statistics store sharded by corpus fingerprint, journaled for
    crash safety.  Drop-in for :class:`StatisticsStore` — same in-memory
    API, different on-disk layout."""

    SHARD_DIR = "shards"

    def __init__(
        self,
        root: str,
        clock: Callable[[], float] = time.time,
        compact_every: int = 8,
    ) -> None:
        self.compact_every = max(int(compact_every), 1)
        #: shard key -> canonical JSON of its last persisted records,
        #: for dirty detection (clean shards are skipped on save)
        self._persisted: Dict[str, str] = {}
        #: shard key -> journal records since the last compaction
        self._journal_records: Dict[str, int] = {}
        #: facts from the last recovery pass, surfaced in summary()
        self.recovery: Dict[str, Any] = {}
        super().__init__(root, clock=clock)

    @property
    def shard_dir(self) -> pathlib.Path:
        return self.root / self.SHARD_DIR

    # -- recovery -------------------------------------------------------------

    def load(self) -> None:
        """Recover from shards+journals; torn tails dropped, never served."""
        self.sides = {}
        self.tasks = {}
        self.curves = {}
        self._persisted = {}
        self._journal_records = {}
        recovery: Dict[str, Any] = {
            "shards": 0,
            "journal_records_replayed": 0,
            "torn_records_dropped": 0,
            "invalid_records_dropped": 0,
            "legacy_layout": False,
            "generation": 0,
        }
        keys = self._shard_keys()
        if not keys:
            # Legacy single-file layout (or an empty store): defer to the
            # base loader; the first save migrates to shards.
            super().load()
            recovery["legacy_layout"] = self.path.exists()
            self.recovery = recovery
            return
        generation = 0
        for key in sorted(keys):
            payload, facts = self._recover_shard(key)
            recovery["shards"] += 1
            recovery["journal_records_replayed"] += facts["journal_records"]
            recovery["torn_records_dropped"] += facts["torn_records"]
            if payload is None:
                continue
            shard_generation = payload.get("generation", 0)
            if isinstance(shard_generation, int) and not isinstance(
                shard_generation, bool
            ):
                generation = max(generation, shard_generation)
            recovery["invalid_records_dropped"] += self._absorb_shard(
                key, payload
            )
            self._persisted[key] = _canonical(
                {
                    "sides": {
                        name: record
                        for name, record in self.sides.items()
                        if side_shard(record) == key
                    },
                    "tasks": {
                        name: record
                        for name, record in self.tasks.items()
                        if task_shard(record) == key
                    },
                    "curves": {
                        name: record
                        for name, record in self.curves.items()
                        if task_shard(record) == key
                    },
                }
            )
            self._journal_records[key] = facts["journal_records"]
        self.generation = generation
        self._saved_generation = generation
        recovery["generation"] = generation
        self.recovery = recovery
        self._check_coherence("store.shard.load")

    def _shard_keys(self) -> Tuple[str, ...]:
        directory = self.shard_dir
        if not directory.is_dir():
            return ()
        keys = set()
        for path in directory.iterdir():
            name = path.name
            if name.endswith(".tmp"):
                continue
            if name.endswith(JOURNAL_SUFFIX):
                keys.add(name[: -len(JOURNAL_SUFFIX)])
            elif name.endswith(SNAPSHOT_SUFFIX):
                keys.add(name[: -len(SNAPSHOT_SUFFIX)])
        return tuple(keys)

    def _recover_shard(
        self, key: str
    ) -> Tuple[Optional[Dict[str, Any]], Dict[str, int]]:
        """Snapshot + journal replay for one shard.

        Returns ``(payload, facts)``; the payload is the last committed
        state (the newest valid journal record, else the snapshot, else
        None for a shard with nothing readable).
        """
        facts = {"journal_records": 0, "torn_records": 0}
        payload: Optional[Dict[str, Any]] = None
        snapshot_path = self.shard_dir / f"{key}{SNAPSHOT_SUFFIX}"
        try:
            raw = json.loads(snapshot_path.read_text())
            if isinstance(raw, dict) and raw.get("version") == STORE_VERSION:
                payload = raw
        except (OSError, ValueError):
            payload = None
        base_generation = 0
        if payload is not None:
            base_generation = payload.get("generation", 0)
            if not isinstance(base_generation, int) or isinstance(
                base_generation, bool
            ):
                base_generation = 0
        checker = active_checker()
        journal_path = self.shard_dir / f"{key}{JOURNAL_SUFFIX}"
        try:
            lines = journal_path.read_bytes().split(b"\n")
        except OSError:
            lines = []
        for line in lines:
            if not line.strip():
                continue
            record = decode_journal_record(line)
            if record is None:
                # A torn or corrupted record ends the trustworthy prefix:
                # anything after it may depend on the lost write.
                facts["torn_records"] += 1
                break
            facts["journal_records"] += 1
            if checker.enabled:
                checker.check_monotone(
                    "store.journal.recover",
                    f"shard {key} generation",
                    base_generation,
                    record["generation"],
                )
            base_generation = record["generation"]
            payload = {
                "version": STORE_VERSION,
                "generation": record["generation"],
                "sides": record["sides"],
                "tasks": record["tasks"],
                "curves": record.get("curves", {}),
            }
        return payload, facts

    def _absorb_shard(self, key: str, payload: Dict[str, Any]) -> int:
        """Merge one recovered shard payload; returns records dropped.

        Applies the base class's schema/coherence filters plus shard
        placement: a record whose own shard key disagrees with the file
        it was found in is corruption evidence and is dropped.
        """
        dropped = 0
        sides = payload.get("sides", {})
        tasks = payload.get("tasks", {})
        curves = payload.get("curves", {})
        if isinstance(sides, dict):
            for name, record in sides.items():
                if (
                    isinstance(record, dict)
                    and _check_schema(record, _SIDE_SCHEMA)
                    and _valid_parameters(record["parameters"])
                    and _coherent_side(name, record)
                    and side_shard(record) == key
                ):
                    self.sides[name] = record
                else:
                    dropped += 1
        if isinstance(tasks, dict):
            for name, record in tasks.items():
                if (
                    isinstance(record, dict)
                    and _check_schema(record, _TASK_SCHEMA)
                    and _coherent_task(record)
                    and task_shard(record) == key
                ):
                    self.tasks[name] = record
                else:
                    dropped += 1
        if isinstance(curves, dict):
            for name, record in curves.items():
                if (
                    isinstance(record, dict)
                    and _check_schema(record, _CURVE_SCHEMA)
                    and _coherent_task(record)
                    and task_shard(record) == key
                ):
                    self.curves[name] = record
                else:
                    dropped += 1
        return dropped

    # -- persistence ----------------------------------------------------------

    def save(self) -> str:
        """Journal every dirty shard (append + fsync); compact when due."""
        self._check_coherence("store.save")
        directory = self.shard_dir
        directory.mkdir(parents=True, exist_ok=True)
        desired: Dict[str, Dict[str, Dict[str, Any]]] = {}

        def shard_of(key: str) -> Dict[str, Dict[str, Any]]:
            return desired.setdefault(
                key, {"sides": {}, "tasks": {}, "curves": {}}
            )

        for name, record in self.sides.items():
            shard_of(side_shard(record))["sides"][name] = record
        for name, record in self.tasks.items():
            shard_of(task_shard(record))["tasks"][name] = record
        for name, record in self.curves.items():
            shard_of(task_shard(record))["curves"][name] = record
        for key in sorted(desired):
            shard = desired[key]
            fingerprint = _canonical(
                {
                    "sides": shard["sides"],
                    "tasks": shard["tasks"],
                    "curves": shard["curves"],
                }
            )
            if self._persisted.get(key) == fingerprint:
                continue  # clean shard — independent tenants don't contend
            self._append_journal(key, shard)
            self._persisted[key] = fingerprint
            count = self._journal_records.get(key, 0) + 1
            self._journal_records[key] = count
            if count >= self.compact_every:
                self._compact(key, shard)
        for key in sorted(set(self._persisted) - set(desired)):
            # Every record of this shard was invalidated (fingerprint
            # staleness); its files are dead weight.
            for suffix in (SNAPSHOT_SUFFIX, JOURNAL_SUFFIX):
                try:
                    os.remove(directory / f"{key}{suffix}")
                except OSError:
                    pass
            self._persisted.pop(key, None)
            self._journal_records.pop(key, None)
        if self.path.exists():
            # The legacy single file is superseded by the shard layout.
            try:
                os.remove(self.path)
            except OSError:
                pass
        self._saved_generation = self.generation
        return str(directory)

    def _append_journal(
        self, key: str, shard: Dict[str, Dict[str, Any]]
    ) -> None:
        line = encode_journal_record(
            self.generation,
            shard["sides"],
            shard["tasks"],
            curves=shard.get("curves", {}),
        )
        journal = self.shard_dir / f"{key}{JOURNAL_SUFFIX}"
        with open(journal, "ab") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())

    def _compact(self, key: str, shard: Dict[str, Dict[str, Any]]) -> None:
        """Fold the journal into the snapshot; both steps atomic."""
        directory = self.shard_dir
        snapshot = {
            "version": STORE_VERSION,
            "generation": self.generation,
            "sides": shard["sides"],
            "tasks": shard["tasks"],
            "curves": shard.get("curves", {}),
        }
        snapshot_path = directory / f"{key}{SNAPSHOT_SUFFIX}"
        tmp = directory / f"{key}{SNAPSHOT_SUFFIX}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, snapshot_path)
        # Truncate the journal atomically: replace it with an empty file
        # rather than truncating in place (a crash between snapshot and
        # truncation just replays records the snapshot already holds).
        empty = directory / f"{key}{JOURNAL_SUFFIX}.tmp"
        with open(empty, "wb") as handle:
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(empty, directory / f"{key}{JOURNAL_SUFFIX}")
        self._journal_records[key] = 0

    # -- reporting ------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        data = super().summary()
        data["path"] = str(self.shard_dir)
        data["layout"] = "sharded"
        data["recovery"] = dict(self.recovery)
        return data


def tear_journal(
    root: str, seed: int = 0
) -> Optional[Dict[str, Any]]:
    """Chaos helper: truncate one shard journal inside its *last* record.

    Simulates a crash mid-append (the only region a real ``kill -9`` can
    tear, since every earlier record was fsynced before the next append
    started).  Returns what was done, or None when no journal has bytes.
    """
    rng = random.Random(f"tear|{seed}")
    directory = pathlib.Path(root) / ShardedStatisticsStore.SHARD_DIR
    if not directory.is_dir():
        return None
    journals = sorted(
        path
        for path in directory.glob(f"*{JOURNAL_SUFFIX}")
        if path.stat().st_size > 0
    )
    if not journals:
        return None
    target = rng.choice(journals)
    raw = target.read_bytes()
    last_start = raw.rstrip(b"\n").rfind(b"\n") + 1
    cut = rng.randrange(last_start, len(raw)) if len(raw) > last_start else 0
    with open(target, "rb+") as handle:
        handle.truncate(cut)
    return {
        "path": str(target),
        "original_size": len(raw),
        "truncated_to": cut,
    }


__all__ = [
    "JOURNAL_SUFFIX",
    "SNAPSHOT_SUFFIX",
    "ShardedStatisticsStore",
    "decode_journal_record",
    "encode_journal_record",
    "side_shard",
    "task_shard",
    "tear_journal",
]
