"""Measuring an extractor's tp(θ)/fp(θ) knob curves (Section III-A).

Per the paper, for a knob configuration θ:

* ``tp(θ)`` is the fraction of good tuple occurrences in the θ output over
  all good occurrences extractable *at any* configuration;
* ``fp(θ)`` is the same ratio for bad occurrences.

Because knobs are monotone (see :mod:`repro.extraction.base`), the
all-configurations reference set is exactly the θ=0 output.  Rates are
measured at *occurrence* granularity — one (document, tuple) pair counts
once — matching how the Section V models consume them (each retrieved
document yields an occurrence independently with probability tp(θ)).

This is the offline profiling step of the paper's setup: characterization
runs on the training database, and the resulting curves parameterize the
quality models for the (unseen) target databases.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..textdb.database import TextDatabase
from .base import Extractor


@dataclass(frozen=True)
class ConfidenceReference:
    """Binned confidence distributions of good and bad occurrences.

    Measured on the training database at the most permissive setting
    (θ=0), these are the class-conditional score distributions the online
    estimator uses to split observed extractions into good and bad without
    a verification oracle (Section VI).  Bins partition [0, 1] uniformly.
    """

    n_bins: int
    good: Tuple[float, ...]
    bad: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.good) != self.n_bins or len(self.bad) != self.n_bins:
            raise ValueError("bin vectors must have length n_bins")

    def bin_of(self, confidence: float) -> int:
        index = int(confidence * self.n_bins)
        return min(max(index, 0), self.n_bins - 1)

    def _conditional(
        self, bins: Tuple[float, ...], theta: float
    ) -> Tuple[float, ...]:
        """Renormalize a class distribution to scores the knob θ admits.

        Valid when confidence is the knob's decision score (extraction at
        θ keeps exactly the occurrences scoring ≥ θ), which all extractors
        in this library satisfy.
        """
        cutoff = self.bin_of(theta)
        masked = [p if i >= cutoff else 0.0 for i, p in enumerate(bins)]
        total = sum(masked)
        if total <= 0:
            return tuple(1.0 / self.n_bins for _ in bins)
        return tuple(p / total for p in masked)

    def good_at(self, theta: float) -> Tuple[float, ...]:
        return self._conditional(self.good, theta)

    def bad_at(self, theta: float) -> Tuple[float, ...]:
        return self._conditional(self.bad, theta)

    @classmethod
    def from_samples(
        cls,
        good_confidences: Sequence[float],
        bad_confidences: Sequence[float],
        n_bins: int = 20,
        smoothing: float = 0.5,
    ) -> "ConfidenceReference":
        def histogram(samples: Sequence[float]) -> Tuple[float, ...]:
            counts = [smoothing] * n_bins
            for value in samples:
                index = min(max(int(value * n_bins), 0), n_bins - 1)
                counts[index] += 1.0
            total = sum(counts)
            return tuple(c / total for c in counts)

        return cls(
            n_bins=n_bins,
            good=histogram(good_confidences),
            bad=histogram(bad_confidences),
        )


@dataclass(frozen=True)
class KnobCharacterization:
    """Measured tp/fp curves over a θ grid for one extraction system."""

    system_name: str
    relation: str
    thetas: Tuple[float, ...]
    tp: Tuple[float, ...]
    fp: Tuple[float, ...]
    n_good_reference: int
    n_bad_reference: int
    confidences: Optional[ConfidenceReference] = None

    def __post_init__(self) -> None:
        if not (len(self.thetas) == len(self.tp) == len(self.fp)):
            raise ValueError("grid and curves must have equal length")
        if list(self.thetas) != sorted(self.thetas):
            raise ValueError("theta grid must be sorted ascending")

    def _interpolate(self, curve: Sequence[float], theta: float) -> float:
        thetas = self.thetas
        if theta <= thetas[0]:
            return curve[0]
        if theta >= thetas[-1]:
            return curve[-1]
        hi = bisect_left(thetas, theta)
        lo = hi - 1
        span = thetas[hi] - thetas[lo]
        if span == 0:
            return curve[lo]
        w = (theta - thetas[lo]) / span
        return curve[lo] * (1 - w) + curve[hi] * w

    def tp_at(self, theta: float) -> float:
        """Interpolated true-positive rate at θ."""
        return self._interpolate(self.tp, theta)

    def fp_at(self, theta: float) -> float:
        """Interpolated false-positive rate at θ."""
        return self._interpolate(self.fp, theta)


def characterize(
    extractor: Extractor,
    database: TextDatabase,
    thetas: Optional[Sequence[float]] = None,
    sample_size: Optional[int] = None,
) -> KnobCharacterization:
    """Measure tp(θ)/fp(θ) by running the extractor over *database*.

    ``sample_size`` restricts profiling to a prefix of the database's scan
    order — the cheap offline variant the optimizer uses.  The reference
    sets are the θ=0 occurrences; each grid point then re-runs the
    extractor and counts surviving occurrences.
    """
    if thetas is None:
        thetas = [i / 20 for i in range(21)]
    thetas = sorted(thetas)
    if not thetas or thetas[0] < 0 or thetas[-1] > 1:
        raise ValueError("thetas must lie within [0, 1]")
    documents = (
        database.scan(0, sample_size) if sample_size else list(database.documents)
    )
    reference = extractor.with_theta(0.0)
    good_ref: set = set()
    bad_ref: set = set()
    good_confidences: List[float] = []
    bad_confidences: List[float] = []
    for doc in documents:
        for tup in reference.extract(doc):
            key = (tup.document_id, tup.values)
            if tup.is_good:
                if key not in good_ref:
                    good_confidences.append(tup.confidence)
                good_ref.add(key)
            else:
                if key not in bad_ref:
                    bad_confidences.append(tup.confidence)
                bad_ref.add(key)
    tp_curve: List[float] = []
    fp_curve: List[float] = []
    for theta in thetas:
        configured = extractor.with_theta(theta)
        good_seen: set = set()
        bad_seen: set = set()
        for doc in documents:
            for tup in configured.extract(doc):
                key = (tup.document_id, tup.values)
                (good_seen if tup.is_good else bad_seen).add(key)
        tp_curve.append(len(good_seen) / len(good_ref) if good_ref else 0.0)
        fp_curve.append(len(bad_seen) / len(bad_ref) if bad_ref else 0.0)
    confidences = None
    if good_confidences and bad_confidences:
        confidences = ConfidenceReference.from_samples(
            good_confidences, bad_confidences
        )
    return KnobCharacterization(
        system_name=extractor.name,
        relation=extractor.relation,
        thetas=tuple(thetas),
        tp=tuple(tp_curve),
        fp=tuple(fp_curve),
        n_good_reference=len(good_ref),
        n_bad_reference=len(bad_ref),
        confidences=confidences,
    )
