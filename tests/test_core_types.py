"""Unit tests for repro.core.types."""

import pytest

from repro.core import (
    DocumentClass,
    ExtractedTuple,
    Fact,
    JoinTuple,
    RelationSchema,
    TupleLabel,
)


def make_tuple(relation="HQ", values=("acme", "boston"), good=True, doc=0):
    return ExtractedTuple(
        relation=relation,
        values=values,
        document_id=doc,
        confidence=0.9,
        is_good=good,
    )


class TestRelationSchema:
    def test_arity(self):
        schema = RelationSchema("HQ", ("Company", "Location"))
        assert schema.arity == 2

    def test_index_of(self):
        schema = RelationSchema("HQ", ("Company", "Location"))
        assert schema.index_of("Company") == 0
        assert schema.index_of("Location") == 1

    def test_index_of_missing_raises(self):
        schema = RelationSchema("HQ", ("Company", "Location"))
        with pytest.raises(KeyError):
            schema.index_of("CEO")

    def test_empty_attributes_rejected(self):
        with pytest.raises(ValueError):
            RelationSchema("R", ())

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(ValueError):
            RelationSchema("R", ("A", "A"))

    def test_unary_schema_allowed(self):
        assert RelationSchema("R", ("A",)).arity == 1


class TestFact:
    def test_value_of(self):
        fact = Fact("HQ", ("acme", "boston"), is_true=True)
        assert fact.value_of(0) == "acme"
        assert fact.value_of(1) == "boston"

    def test_facts_hashable_and_distinct_by_truth(self):
        a = Fact("HQ", ("acme", "boston"), is_true=True)
        b = Fact("HQ", ("acme", "boston"), is_true=False)
        assert a != b
        assert len({a, b}) == 2


class TestExtractedTuple:
    def test_label_good(self):
        assert make_tuple(good=True).label is TupleLabel.GOOD

    def test_label_bad(self):
        assert make_tuple(good=False).label is TupleLabel.BAD

    def test_value_of(self):
        tup = make_tuple(values=("acme", "boston"))
        assert tup.value_of(1) == "boston"

    def test_immutable(self):
        tup = make_tuple()
        with pytest.raises(AttributeError):
            tup.confidence = 0.1


class TestJoinTuple:
    def _join(self, good_left, good_right):
        left = make_tuple("HQ", ("acme", "boston"), good=good_left)
        right = ExtractedTuple(
            relation="EX",
            values=("acme", "jones"),
            document_id=7,
            confidence=0.8,
            is_good=good_right,
        )
        return JoinTuple(left=left, right=right, join_value="acme")

    def test_good_only_when_both_good(self):
        assert self._join(True, True).is_good
        assert not self._join(True, False).is_good
        assert not self._join(False, True).is_good
        assert not self._join(False, False).is_good

    def test_label(self):
        assert self._join(True, True).label is TupleLabel.GOOD
        assert self._join(False, True).label is TupleLabel.BAD

    def test_values_states_join_value_once(self):
        joined = self._join(True, True)
        assert joined.values == ("acme", "boston", "jones")

    def test_values_respects_right_join_index(self):
        left = make_tuple("HQ", ("acme", "boston"))
        right = ExtractedTuple(
            relation="EX",
            values=("jones", "acme"),
            document_id=7,
            confidence=0.8,
            is_good=True,
        )
        joined = JoinTuple(
            left=left, right=right, join_value="acme", right_join_index=1
        )
        assert joined.values == ("acme", "boston", "jones")


class TestDocumentClass:
    def test_three_classes(self):
        assert {c.value for c in DocumentClass} == {"good", "bad", "empty"}
