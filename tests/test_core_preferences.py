"""Tests for quality requirements and their higher-level mappings."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    QualityRequirement,
    requirement_from_precision,
    requirement_from_recall,
)


class TestQualityRequirement:
    def test_satisfied(self):
        req = QualityRequirement(tau_good=10, tau_bad=5)
        assert req.satisfied_by(10, 5)
        assert req.satisfied_by(11, 0)

    def test_not_satisfied_on_good_shortfall(self):
        req = QualityRequirement(tau_good=10, tau_bad=5)
        assert not req.satisfied_by(9, 0)

    def test_not_satisfied_on_bad_excess(self):
        req = QualityRequirement(tau_good=10, tau_bad=5)
        assert not req.satisfied_by(100, 6)

    def test_bad_exceeded(self):
        req = QualityRequirement(tau_good=1, tau_bad=5)
        assert req.bad_exceeded(6)
        assert not req.bad_exceeded(5)

    def test_good_met(self):
        req = QualityRequirement(tau_good=3, tau_bad=5)
        assert req.good_met(3)
        assert not req.good_met(2.5)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            QualityRequirement(tau_good=-1, tau_bad=0)
        with pytest.raises(ValueError):
            QualityRequirement(tau_good=0, tau_bad=-1)

    def test_zero_requirement_trivially_satisfiable(self):
        assert QualityRequirement(0, 0).satisfied_by(0, 0)


class TestPrecisionMapping:
    def test_exact_example(self):
        # precision >= 0.8 over top-10 → 8 good, at most 2 bad
        req = requirement_from_precision(0.8, 10)
        assert req.tau_good == 8
        assert req.tau_bad == 2

    def test_full_precision(self):
        req = requirement_from_precision(1.0, 7)
        assert req.tau_good == 7
        assert req.tau_bad == 0

    def test_invalid_precision(self):
        with pytest.raises(ValueError):
            requirement_from_precision(0.0, 10)
        with pytest.raises(ValueError):
            requirement_from_precision(1.2, 10)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            requirement_from_precision(0.5, 0)

    @given(st.floats(0.01, 1.0), st.integers(1, 1000))
    def test_mapping_is_consistent(self, precision, k):
        req = requirement_from_precision(precision, k)
        assert req.tau_good + req.tau_bad == k
        assert req.tau_good / k >= precision - 1e-9


class TestRecallMapping:
    def test_exact_example(self):
        req = requirement_from_recall(0.5, 100, max_bad=30)
        assert req.tau_good == 50
        assert req.tau_bad == 30

    def test_rounds_up(self):
        req = requirement_from_recall(0.34, 10, max_bad=1)
        assert req.tau_good == 4

    def test_invalid_recall(self):
        with pytest.raises(ValueError):
            requirement_from_recall(0.0, 10, max_bad=1)

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            requirement_from_recall(0.5, -1, max_bad=1)
