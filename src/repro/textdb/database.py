"""Text databases: scan access plus a top-k keyword-search interface.

A :class:`TextDatabase` models what the paper assumes of a real text
collection (Section III-B, IV):

* **scan access** — documents can be retrieved sequentially, in an order
  that carries no information about document quality;
* **search access** — conjunctive keyword queries return matching
  documents, but only up to ``max_results`` per query (the search-interface
  limit that caps what OIJN/ZGJN can reach, shown as the grey region of
  Figure 6).

Search results are ranked by a deterministic per-(query, document) hash:
each query's top-k behaves like an independent random sample of its match
set with respect to document quality — the assumption behind the paper's
``k · P(q)`` expectation and the conditional-independence step of its AQG
model (Equation 2).  A *global* static rank would instead hand every
correlated query the same document prefix, which no ranked search engine
does for distinct queries.  The seeded scan permutation is still used for
sequential (Scan/Filtered-Scan) access.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .document import Document
from .index import InvertedIndex


class TextDatabase:
    """An immutable document collection with scan and search interfaces."""

    def __init__(
        self,
        name: str,
        documents: Sequence[Document],
        max_results: int = 100,
        rank_seed: int = 0,
    ) -> None:
        if max_results <= 0:
            raise ValueError("max_results must be positive")
        self.name = name
        self._documents: Dict[int, Document] = {}
        for doc in documents:
            if doc.doc_id in self._documents:
                raise ValueError(f"duplicate document id {doc.doc_id}")
            self._documents[doc.doc_id] = doc
        self.max_results = max_results
        self._scan_order: List[int] = sorted(self._documents)
        rng = random.Random(rank_seed)
        rng.shuffle(self._scan_order)
        self._rank_seed = rank_seed
        self.index = InvertedIndex(self._documents.values())

    @property
    def rank_seed(self) -> int:
        """Seed of the scan permutation and per-query rankings."""
        return self._rank_seed

    def _query_rank(self, tokens: Tuple[str, ...], doc_id: int) -> int:
        """Deterministic per-(query, document) rank for top-k truncation."""
        payload = f"{self._rank_seed}|{'|'.join(tokens)}|{doc_id}".encode()
        return int.from_bytes(hashlib.blake2b(payload, digest_size=8).digest(), "big")

    def __len__(self) -> int:
        return len(self._documents)

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._documents

    def get(self, doc_id: int) -> Document:
        return self._documents[doc_id]

    @property
    def documents(self) -> Iterator[Document]:
        for doc_id in sorted(self._documents):
            yield self._documents[doc_id]

    # -- scan interface -----------------------------------------------------

    def scan_order(self) -> List[int]:
        """Document ids in the database's sequential-retrieval order."""
        return list(self._scan_order)

    def scan(self, start: int = 0, count: Optional[int] = None) -> List[Document]:
        """Retrieve ``count`` documents sequentially starting at *start*."""
        if count is None:
            ids = self._scan_order[start:]
        else:
            ids = self._scan_order[start : start + count]
        return [self._documents[i] for i in ids]

    # -- search interface ---------------------------------------------------

    def match_count(self, tokens: Sequence[str]) -> int:
        """Total number of documents matching a query (no truncation).

        This is the ``H(q)`` statistic of Section V-D; real search engines
        expose it as the reported hit count.
        """
        return len(self.index.search(tokens))

    def search(
        self, tokens: Sequence[str], max_results: Optional[int] = None
    ) -> List[int]:
        """Top-k document ids matching all query tokens.

        ``max_results`` overrides the interface default (but can never
        exceed it — the interface is the hard limit).
        """
        limit = self.max_results if max_results is None else min(
            max_results, self.max_results
        )
        matches = self.index.search(tokens)
        key = tuple(tokens)
        matches.sort(key=lambda doc_id: self._query_rank(key, doc_id))
        return matches[:limit]
