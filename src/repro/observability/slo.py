"""Declarative SLOs and multi-window burn-rate tracking.

An SLO spec is a comma list of objectives::

    --slo p99=2s,availability=99.5

``pNN=<duration>`` is a latency objective — at least NN% of requests
finish within the threshold (suffixes: ``ms``, ``s``, ``m``; bare
numbers are seconds).  ``availability=<percent>`` is an availability
objective — at least that percentage of requests succeed (outcome
``ok``/``degraded``).

Burn rate follows the SRE-workbook definition: the observed bad
fraction divided by the error-budget fraction.  A burn rate of 1.0
spends the budget exactly at the rate the window allows; above ~1 the
objective is burning too fast, and multi-window evaluation (default
1m / 5m / 30m) separates a transient blip (short window hot, long
windows calm) from a sustained regression (all windows hot).

Each window also reports its *worst exemplar* — the request id of the
slowest (latency objectives) or a failed (availability) request — so a
hot burn rate links straight to a flight-recorder event.
"""

from __future__ import annotations

import collections
import time
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "SLOObjective",
    "SLOConfig",
    "SLOTracker",
    "compliance",
    "DEFAULT_SLO_SPEC",
    "DEFAULT_WINDOWS",
]

DEFAULT_SLO_SPEC = "p99=2s,availability=99.5"

#: default burn-rate windows, seconds (1m / 5m / 30m)
DEFAULT_WINDOWS: Tuple[float, ...] = (60.0, 300.0, 1800.0)

_DURATION_SUFFIXES = (("ms", 0.001), ("s", 1.0), ("m", 60.0))


def _parse_duration(text: str) -> float:
    raw = text.strip().lower()
    for suffix, scale in _DURATION_SUFFIXES:
        if raw.endswith(suffix):
            return float(raw[: -len(suffix)]) * scale
    return float(raw)


@dataclass(frozen=True)
class SLOObjective:
    """One objective: latency (``pNN<=T``) or availability (``>=X%``)."""

    kind: str  # "latency" | "availability"
    #: latency: percentile fraction in (0, 1); availability: target fraction
    target: float
    #: latency threshold in seconds (latency objectives only)
    threshold: Optional[float] = None

    @property
    def budget(self) -> float:
        """Allowed bad fraction (the error budget)."""
        return 1.0 - self.target

    def describe(self) -> str:
        if self.kind == "latency":
            return f"p{self.target * 100:g}<={self.threshold:g}s"
        return f"availability>={self.target * 100:g}%"

    def is_bad(self, latency: float, available: bool) -> bool:
        """Does one observation spend error budget?"""
        if self.kind == "availability":
            return not available
        # an unavailable request never met the latency objective either
        return (not available) or latency > self.threshold


@dataclass(frozen=True)
class SLOConfig:
    objectives: Tuple[SLOObjective, ...]
    spec: str

    @staticmethod
    def parse(spec: str) -> "SLOConfig":
        """Parse ``p99=2s,availability=99.5`` into objectives."""
        objectives: List[SLOObjective] = []
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            name, sep, value = part.partition("=")
            name = name.strip().lower()
            if not sep:
                raise ValueError(f"malformed SLO objective {part!r}")
            if name == "availability":
                target = float(value) / 100.0
                if not 0.0 < target < 1.0:
                    raise ValueError(
                        f"availability must lie in (0, 100), got {value!r}"
                    )
                objectives.append(SLOObjective("availability", target))
            elif name.startswith("p") and name[1:].replace(".", "").isdigit():
                fraction = float(name[1:]) / 100.0
                if not 0.0 < fraction < 1.0:
                    raise ValueError(
                        f"latency percentile must lie in (0, 100), got {name!r}"
                    )
                threshold = _parse_duration(value)
                if threshold <= 0:
                    raise ValueError(
                        f"latency threshold must be positive, got {value!r}"
                    )
                objectives.append(
                    SLOObjective("latency", fraction, threshold)
                )
            else:
                raise ValueError(f"unknown SLO objective {name!r}")
        if not objectives:
            raise ValueError(f"empty SLO spec {spec!r}")
        return SLOConfig(tuple(objectives), spec)


def compliance(
    observations: Sequence[Tuple[float, bool, Any]],
    objective: SLOObjective,
) -> Dict[str, Any]:
    """Burn rate + worst exemplar of one objective over observations.

    ``observations`` are ``(latency_seconds, available, exemplar_id)``
    tuples.  Burn rate is ``bad_fraction / budget``; an empty window
    reports a burn rate of 0.0 (nothing burned nothing).
    """
    requests = len(observations)
    bad = 0
    worst: Optional[Dict[str, Any]] = None
    for latency, available, exemplar in observations:
        if not objective.is_bad(latency, available):
            continue
        bad += 1
        # worst = slowest bad request; unavailable beats merely-slow
        rank = (0 if available else 1, latency)
        if worst is None or rank >= (
            0 if worst["available"] else 1,
            worst["latency"],
        ):
            worst = {
                "id": exemplar,
                "latency": latency,
                "available": available,
            }
    bad_fraction = bad / requests if requests else 0.0
    return {
        "objective": objective.describe(),
        "requests": requests,
        "bad": bad,
        "bad_fraction": bad_fraction,
        "budget": objective.budget,
        "burn_rate": bad_fraction / objective.budget,
        "worst_exemplar": worst,
    }


class SLOTracker:
    """Rolling multi-window burn-rate evaluation over recent requests.

    Holds the last ``capacity`` observations (timestamp, latency,
    availability, request id) and evaluates every objective over every
    window on demand.  The observation ring bounds memory, so very long
    windows under very high traffic see a truncated (most recent) view —
    fine for an in-process debug plane.
    """

    def __init__(
        self,
        config: SLOConfig,
        windows: Sequence[float] = DEFAULT_WINDOWS,
        capacity: int = 4096,
        clock=time.time,
    ) -> None:
        self.config = config
        self.windows = tuple(sorted(windows))
        self.clock = clock
        self._observations: Deque[Tuple[float, float, bool, Any]] = (
            collections.deque(maxlen=capacity)
        )

    def observe(
        self,
        latency: float,
        available: bool,
        request_id: Any,
        now: Optional[float] = None,
    ) -> None:
        ts = now if now is not None else self.clock()
        self._observations.append((ts, latency, available, request_id))

    def snapshot(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Per-objective, per-window burn rates with worst exemplars."""
        ts = now if now is not None else self.clock()
        observations = list(self._observations)
        report: List[Dict[str, Any]] = []
        for objective in self.config.objectives:
            windows = []
            for window in self.windows:
                recent = [
                    (latency, available, exemplar)
                    for (seen, latency, available, exemplar) in observations
                    if ts - seen <= window
                ]
                entry = compliance(recent, objective)
                entry["window_seconds"] = window
                windows.append(entry)
            report.append(
                {"objective": objective.describe(), "windows": windows}
            )
        return {
            "spec": self.config.spec,
            "observations": len(observations),
            "objectives": report,
            "healthy": all(
                window["burn_rate"] <= 1.0
                for objective in report
                for window in objective["windows"]
            ),
        }

    def worst_burn_rates(self, now: Optional[float] = None) -> Dict[str, float]:
        """objective -> max burn rate across windows (cheap stats summary)."""
        snapshot = self.snapshot(now=now)
        return {
            objective["objective"]: max(
                window["burn_rate"] for window in objective["windows"]
            )
            for objective in snapshot["objectives"]
        }
