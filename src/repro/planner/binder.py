"""Binding multiway plans to live n-ary executors.

The planner reasons over :class:`MultiwayPlan` descriptors; this module
turns a chosen plan into a runnable executor against concrete per-alias
databases, extractors, classifiers, and learned queries.  Star graphs
bind to the existing :class:`MultiJoinState`; general trees bind to
:class:`TreeJoinState`.  The ``INTERLEAVED`` strategy binds to
:class:`InterleavedNaryJoin`; ``PIPELINE`` runs the ripple executor (the
join tree is the planner's cost artifact — the n-ary state makes the
materialization order immaterial to the result, which is exactly why the
quality contract is order-independent).

Per-side document caps come from the model's predicted events at the
plan's operating point with a slack factor — the (τg, τb) stopping
condition does the fine-grained halt, the caps are the safety net, as in
``optimizer.binder.budgets_from_evaluation``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence

from ..core.plan import RetrievalKind
from ..extraction.base import Extractor
from ..joins.costs import SideCosts
from ..multiway.executor import (
    MultiQualityEstimator,
    MultiwayIndependentJoin,
    MultiwaySide,
)
from ..multiway.interleaved import InterleavedNaryJoin, TreeEdge, TreeJoinState
from ..multiway.state import MultiJoinState
from ..observability.context import ObservabilityContext
from ..retrieval.aqg import AQGRetriever, LearnedQuery
from ..retrieval.base import DocumentRetriever
from ..retrieval.classifier import RuleClassifier
from ..retrieval.filtered_scan import FilteredScanRetriever
from ..retrieval.scan import ScanRetriever
from ..robustness.context import ResilienceContext
from ..textdb.database import TextDatabase
from .graph import JoinGraph
from .model import GraphCompositionModel
from .plan import ExecutionStrategy, MultiwayPlan, PlannedEvaluation


@dataclass
class MultiwayEnvironment:
    """Live bindings for every relation alias of a join graph."""

    databases: Mapping[str, TextDatabase]
    extractors: Mapping[str, Extractor]
    classifiers: Mapping[str, RuleClassifier] = field(default_factory=dict)
    learned_queries: Mapping[str, Sequence[LearnedQuery]] = field(default_factory=dict)
    costs: Mapping[str, SideCosts] = field(default_factory=dict)
    resilience: Optional[ResilienceContext] = None
    observability: Optional[ObservabilityContext] = None

    def database(self, name: str) -> TextDatabase:
        try:
            return self.databases[name]
        except KeyError:
            raise ValueError(f"no database bound for relation {name!r}") from None

    def extractor_at(self, name: str, theta: float) -> Extractor:
        try:
            base = self.extractors[name]
        except KeyError:
            raise ValueError(f"no extractor bound for relation {name!r}") from None
        return base.with_theta(theta)

    def side_costs(self, name: str) -> SideCosts:
        return self.costs.get(name, SideCosts())

    def retriever(self, name: str, kind: RetrievalKind) -> DocumentRetriever:
        database = self.database(name)
        if kind is RetrievalKind.SCAN:
            return ScanRetriever(
                database,
                resilience=self.resilience,
                observability=self.observability,
            )
        if kind is RetrievalKind.FILTERED_SCAN:
            classifier = self.classifiers.get(name)
            if classifier is None:
                raise ValueError(f"no classifier bound for relation {name!r}")
            return FilteredScanRetriever(
                database,
                classifier,
                resilience=self.resilience,
                observability=self.observability,
            )
        if kind is RetrievalKind.AQG:
            queries = self.learned_queries.get(name) or ()
            if not queries:
                raise ValueError(f"no learned queries bound for relation {name!r}")
            return AQGRetriever(
                database,
                queries,
                resilience=self.resilience,
                observability=self.observability,
            )
        raise ValueError(f"{kind} is not an explicit retrieval strategy")


def bind_multiway_plan(
    environment: MultiwayEnvironment,
    graph: JoinGraph,
    evaluation: PlannedEvaluation,
    model: Optional[GraphCompositionModel] = None,
    estimator: Optional[MultiQualityEstimator] = None,
    slack: float = 1.5,
) -> MultiwayIndependentJoin:
    """Build a single-use n-ary executor for a planned evaluation."""
    if slack < 1.0:
        raise ValueError("slack must be at least 1")
    plan: MultiwayPlan = evaluation.plan
    extractors = [
        environment.extractor_at(name, plan.config_for(name).theta)
        for name in graph.names
    ]
    schemas = [extractor.schema for extractor in extractors]
    caps: Dict[str, Optional[int]] = {name: None for name in graph.names}
    if model is not None and evaluation.efforts:
        for name in graph.names:
            config = plan.config_for(name)
            events = model.retrieval_model(config).events(evaluation.efforts[name])
            caps[name] = max(1, int(math.ceil(events.processed * slack)))
    sides = [
        MultiwaySide(
            database=environment.database(name),
            extractor=extractor,
            retriever=environment.retriever(name, plan.config_for(name).retrieval),
            costs=environment.side_costs(name),
            max_documents=caps[name],
        )
        for name, extractor in zip(graph.names, extractors)
    ]
    if graph.is_star():
        attribute = graph.edges[0].left_attribute
        state = MultiJoinState(schemas, join_attribute=attribute)
    else:
        index_of = {name: i for i, name in enumerate(graph.names)}
        state = TreeJoinState(
            schemas,
            [
                TreeEdge(
                    left=index_of[edge.left],
                    left_attribute=edge.left_attribute,
                    right=index_of[edge.right],
                    right_attribute=edge.right_attribute,
                )
                for edge in graph.edges
            ],
        )
    executor_type = (
        InterleavedNaryJoin
        if plan.strategy is ExecutionStrategy.INTERLEAVED
        else MultiwayIndependentJoin
    )
    return executor_type(
        sides,
        estimator=estimator,
        state=state,
        observability=environment.observability,
    )
