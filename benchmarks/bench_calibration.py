"""Estimation-calibration benchmark (Section VI supporting experiment).

Sweeps pilot sizes, scores the label-free parameter estimates against
ground truth, and asserts the working regime the adaptive optimizer relies
on: at reasonable pilot sizes (≥120 documents here) the structural
estimates are within small multiplicative factors and the good-occurrence
share within ~0.25 — sufficient for plan *ranking*, which is what the
optimizer consumes (see bench_estimated_optimizer.py for the end-to-end
consequence).
"""

import pytest

from repro.experiments import format_calibration, run_calibration

PILOTS = (60, 120, 240)


def test_calibration(benchmark, task, report_sink):
    rows = benchmark.pedantic(
        lambda: run_calibration(task, pilot_sizes=PILOTS),
        rounds=1,
        iterations=1,
    )
    report_sink(
        "estimation_calibration",
        format_calibration(
            rows, "Estimation calibration — relative errors vs ground truth"
        ),
    )
    mature = [r for r in rows if r.pilot_documents >= 120]
    assert mature
    for row in mature:
        # Structural quantities within small multiplicative factors...
        assert abs(row.n_good_values_error) < 1.0, row
        assert abs(row.good_occurrences_error) < 1.5, row
        assert abs(row.n_good_docs_error) < 1.0, row
        # ...and the class split is informative.
        assert row.share_error < 0.3, row
