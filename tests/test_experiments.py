"""Tests for the experiment harness: testbed, figure runners, Table II."""

import pytest

from repro.core import JoinKind, QualityRequirement
from repro.experiments import (
    TABLE2_REQUIREMENTS,
    TestbedConfig,
    build_testbed,
    build_trajectories,
    format_accuracy_rows,
    format_documents_rows,
    format_table2_rows,
    record_trajectory,
    run_figure9,
    run_figure10,
    run_figure11,
    run_figure12,
    run_table2,
)
from repro.optimizer import enumerate_plans


class TestTestbed:
    def test_memoized(self, testbed):
        assert build_testbed(TestbedConfig(scale=0.6)) is testbed

    def test_three_relations(self, testbed):
        assert set(testbed.extractors) == {"HQ", "EX", "MG"}

    def test_three_eval_databases(self, testbed):
        assert set(testbed.databases) == {"nyt96", "nyt95", "wsj"}

    def test_knob_curves_sane(self, testbed):
        for relation, char in testbed.characterizations.items():
            assert char.tp_at(0.0) == pytest.approx(1.0)
            assert char.tp_at(0.4) > char.fp_at(0.4), relation

    def test_default_task_is_hq_ex(self, hq_ex_task):
        assert hq_ex_task.relation1 == "HQ"
        assert hq_ex_task.relation2 == "EX"
        assert hq_ex_task.database1.name == "nyt96"
        assert hq_ex_task.database2.name == "nyt95"

    def test_alternate_task(self, testbed):
        task = testbed.task(relation1="MG", relation2="EX", database1="wsj",
                            database2="nyt95")
        assert task.relation1 == "MG"
        assert task.profile1.n_good_docs > 0

    def test_seed_queries_present(self, hq_ex_task):
        assert len(hq_ex_task.seed_queries) == 3


class TestFigureRunners:
    def test_figure9_shape(self, hq_ex_task):
        rows = run_figure9(hq_ex_task, percents=(25, 100))
        assert len(rows) == 2
        # Quality grows with coverage, estimates track actuals.
        assert rows[1].actual_good > rows[0].actual_good
        assert rows[1].estimated_good > rows[0].estimated_good
        assert rows[1].estimated_good == pytest.approx(
            rows[1].actual_good, rel=0.35
        )
        assert rows[1].estimated_time == pytest.approx(rows[1].actual_time)

    def test_figure10_shape(self, hq_ex_task):
        rows = run_figure10(hq_ex_task, percents=(25, 100))
        assert rows[1].estimated_good == pytest.approx(
            rows[1].actual_good, rel=0.5
        )
        assert rows[1].estimated_time == pytest.approx(
            rows[1].actual_time, rel=0.25
        )

    def test_figure11_shape(self, hq_ex_task):
        rows = run_figure11(hq_ex_task, percents=(30, 100))
        # ZGJN: trend agreement within a factor (paper reports the same
        # systematic deviation for this model).
        for row in rows:
            assert row.actual_good / 4 <= row.estimated_good <= row.actual_good * 4
        assert rows[1].actual_good >= rows[0].actual_good

    def test_figure12_shape(self, hq_ex_task):
        rows = run_figure12(hq_ex_task, percents=(30, 100))
        for row in rows:
            assert row.estimated_docs2 == pytest.approx(
                row.actual_docs2, rel=1.0
            )
        assert rows[1].actual_docs2 >= rows[0].actual_docs2

    def test_formatting(self, hq_ex_task):
        rows = run_figure9(hq_ex_task, percents=(50,))
        text = format_accuracy_rows(rows, "Figure 9")
        assert "Figure 9" in text and "est good" in text
        doc_rows = run_figure12(hq_ex_task, percents=(50,))
        assert "est |Dr1|" in format_documents_rows(doc_rows, "Figure 12")


class TestTable2:
    @pytest.fixture(scope="class")
    def small_plan_space(self, hq_ex_task):
        return enumerate_plans(
            hq_ex_task.extractor1.name,
            hq_ex_task.extractor2.name,
            thetas1=(0.4,),
            thetas2=(0.4,),
        )

    @pytest.fixture(scope="class")
    def trajectories(self, hq_ex_task, small_plan_space):
        return build_trajectories(hq_ex_task, small_plan_space)

    def test_trajectory_monotone(self, hq_ex_task, small_plan_space):
        trajectory = record_trajectory(hq_ex_task, small_plan_space[0])
        assert trajectory.goods == sorted(trajectory.goods)
        assert trajectory.bads == sorted(trajectory.bads)
        assert trajectory.times == sorted(trajectory.times)

    def test_time_to_meet(self, hq_ex_task, small_plan_space, trajectories):
        trajectory = next(iter(trajectories.values()))
        final_good = trajectory.goods[-1]
        requirement = QualityRequirement(max(final_good // 2, 1), 10**9)
        time = trajectory.time_to_meet(requirement)
        assert time is not None
        assert 0 < time <= trajectory.times[-1]

    def test_unreachable_requirement(self, trajectories):
        trajectory = next(iter(trajectories.values()))
        assert trajectory.time_to_meet(QualityRequirement(10**9, 10**9)) is None

    def test_rows_structure(self, hq_ex_task, small_plan_space, trajectories):
        rows = run_table2(
            hq_ex_task,
            requirements=((5, 1000), (50, 10000)),
            plans=small_plan_space,
            trajectories=trajectories,
        )
        assert len(rows) == 2
        for row in rows:
            assert row.n_candidates > 0
            assert row.chosen is not None
            # Chosen plan must actually meet the requirement...
            assert row.chosen_time is not None
            # ...and be within a small factor of the actually-fastest.
            if row.n_faster:
                assert row.faster_range[0] > 0.15

    def test_zgjn_not_chosen(self, hq_ex_task, small_plan_space, trajectories):
        """The paper's headline negative result."""
        rows = run_table2(
            hq_ex_task,
            requirements=((5, 1000), (20, 2000), (100, 10**5)),
            plans=small_plan_space,
            trajectories=trajectories,
        )
        assert all(
            row.chosen is None or row.chosen.join is not JoinKind.ZGJN
            for row in rows
        )

    def test_eliminated_plans_much_slower(
        self, hq_ex_task, small_plan_space, trajectories
    ):
        rows = run_table2(
            hq_ex_task,
            requirements=((20, 10**5),),
            plans=small_plan_space,
            trajectories=trajectories,
        )
        [row] = rows
        assert row.n_slower > 0
        assert row.slower_range[1] > 1.5

    def test_formatting(self, hq_ex_task, small_plan_space, trajectories):
        rows = run_table2(
            hq_ex_task,
            requirements=((5, 1000),),
            plans=small_plan_space,
            trajectories=trajectories,
        )
        text = format_table2_rows(rows, "Table II")
        assert "tau_g" in text and "chosen plan" in text

    def test_requirement_grid_covers_paper_range(self):
        taus = [tg for tg, _ in TABLE2_REQUIREMENTS]
        assert min(taus) == 1
        assert max(taus) >= 1024
