"""Snowball-style pattern-similarity extractor.

Stands in for the paper's Snowball system [1]: candidate tuples are entity
pairs co-occurring in a sentence, scored by the similarity between the
sentence's context terms and the system's extraction patterns; the ``minSim``
threshold θ decides which candidates are emitted.

The entity-recognition step of a real IE pipeline (POS + NE tagging) is
simulated with per-attribute entity dictionaries supplied by the world —
exact dictionaries over the synthetic entity tokens, playing the role of a
perfect tagger so that all extraction noise comes from context scoring,
where the knob operates.

Similarity is the fraction of a candidate's context tokens that belong to
the system's pattern term set — a normalized overlap, the same family of
measure Snowball uses between a tuple's context vector and its patterns.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..core.types import ExtractedTuple, RelationSchema
from ..textdb.document import Document
from .base import Extractor, label_candidate


class SnowballExtractor(Extractor):
    """Pattern-overlap extractor with a ``min_sim`` knob."""

    def __init__(
        self,
        schema: RelationSchema,
        entity_dictionaries: Dict[str, FrozenSet[str]],
        pattern_terms: Sequence[str],
        theta: float = 0.4,
        system_name: str = "snowball",
        label_oracle: Optional[Callable[[Tuple[str, ...]], bool]] = None,
    ) -> None:
        super().__init__(schema, theta)
        if schema.arity != 2:
            raise ValueError("SnowballExtractor handles binary relations")
        missing = [a for a in schema.attributes if a not in entity_dictionaries]
        if missing:
            raise KeyError(f"no entity dictionary for attributes {missing}")
        if not pattern_terms:
            raise ValueError("pattern_terms must be non-empty")
        self._dictionaries = {
            attr: frozenset(entity_dictionaries[attr]) for attr in schema.attributes
        }
        self._patterns = frozenset(pattern_terms)
        self._system_name = system_name
        #: Optional gold-set verifier for real text without planted
        #: mentions (the paper verifies tuples against a web gold set).
        #: Used only to annotate evaluation labels, never to extract.
        self._label_oracle = label_oracle

    @property
    def name(self) -> str:
        return self._system_name

    @property
    def pattern_terms(self) -> FrozenSet[str]:
        return self._patterns

    def with_theta(self, theta: float) -> "SnowballExtractor":
        return SnowballExtractor(
            schema=self.schema,
            entity_dictionaries=self._dictionaries,
            pattern_terms=self._patterns,
            theta=theta,
            system_name=self._system_name,
            label_oracle=self._label_oracle,
        )

    def similarity(self, context: Sequence[str]) -> float:
        """Pattern overlap of a candidate's context (1.0 when no context)."""
        if not context:
            return 1.0
        hits = sum(1 for token in context if token in self._patterns)
        return hits / len(context)

    def extract(self, document: Document) -> List[ExtractedTuple]:
        first_dict = self._dictionaries[self.schema.attributes[0]]
        second_dict = self._dictionaries[self.schema.attributes[1]]
        tuples: List[ExtractedTuple] = []
        for sentence in document.sentences:
            firsts = [
                (i, t) for i, t in enumerate(sentence) if t in first_dict
            ]
            seconds = [
                (i, t) for i, t in enumerate(sentence) if t in second_dict
            ]
            if not firsts or not seconds:
                continue
            for i1, e1 in firsts:
                for i2, e2 in seconds:
                    if i1 == i2:
                        continue
                    context = [
                        t
                        for i, t in enumerate(sentence)
                        if i != i1 and i != i2 and t not in first_dict
                        and t not in second_dict
                    ]
                    score = self.similarity(context)
                    if score < self.theta:
                        continue
                    values = (e1, e2)
                    if self._label_oracle is not None:
                        is_good = self._label_oracle(values)
                    else:
                        is_good = label_candidate(
                            document, self.relation, values
                        )
                    tuples.append(
                        ExtractedTuple(
                            relation=self.relation,
                            values=values,
                            document_id=document.doc_id,
                            confidence=score,
                            is_good=is_good,
                        )
                    )
        return tuples
