"""Runtime invariant enforcement for models, optimizer, executors, and store.

The analytical models, the plan-evaluation engine, and the estimator all
rest on invariants that nothing enforced at runtime: probabilities stay in
``[0, 1]``, compositions are non-negative, effort curves are monotone,
document counts are conserved, class mixes live on the simplex.  This
module makes those invariants *checkable in production code paths* without
taxing the default hot path:

* the module-level **active checker** defaults to a disabled instance;
  every instrumented call site guards with ``if checker.enabled:`` so an
  unchecked run performs one attribute test per site and is byte-identical
  to the pre-instrumentation code;
* ``--selfcheck`` (any CLI command) or ``REPRO_SELFCHECK=1`` installs an
  enabled checker that raises :class:`InvariantViolation` on the first
  broken invariant;
* the differential harness installs a *collecting* checker
  (``raise_on_violation=False``) and reports every violation in
  ``validation_report.json``.

This module deliberately imports nothing from the rest of the package so
any layer (models, optimizer, joins, estimation, service) can depend on it
without cycles.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: environment variable that enables the layer process-wide ("1", "true", ...)
ENV_FLAG = "REPRO_SELFCHECK"

#: absolute slack for float comparisons; invariants are mathematical
#: identities up to rounding of vectorized vs scalar evaluation order
ATOL = 1e-9


class InvariantViolation(AssertionError):
    """A runtime invariant did not hold."""


@dataclass(frozen=True)
class Violation:
    """One recorded invariant violation."""

    where: str
    message: str

    def to_dict(self) -> Dict[str, str]:
        return {"where": self.where, "message": self.message}


class InvariantChecker:
    """Records (and optionally raises on) broken invariants.

    ``enabled=False`` instances are pure null objects: instrumented call
    sites test :attr:`enabled` and skip every check, so the disabled
    checker costs one attribute read and changes no numerics.
    """

    def __init__(
        self, enabled: bool = True, raise_on_violation: bool = True
    ) -> None:
        self.enabled = enabled
        self.raise_on_violation = raise_on_violation
        self.violations: List[Violation] = []
        self.checks_run = 0
        #: fit-input fingerprint -> best log-likelihood seen, for the
        #: refit-monotonicity invariant (same data can never fit worse)
        self._refit_likelihoods: Dict[str, float] = {}

    # -- core -----------------------------------------------------------------

    def violation(self, where: str, message: str) -> None:
        """Record one broken invariant; raise when configured to."""
        entry = Violation(where=where, message=message)
        self.violations.append(entry)
        if self.raise_on_violation:
            raise InvariantViolation(f"{where}: {message}")

    def check(self, condition: bool, where: str, message: str) -> None:
        """Generic invariant: *condition* must hold."""
        self.checks_run += 1
        if not condition:
            self.violation(where, message)

    def reset(self) -> None:
        self.violations.clear()
        self.checks_run = 0
        self._refit_likelihoods.clear()

    # -- scalar helpers -------------------------------------------------------

    def check_finite(self, where: str, name: str, value: float) -> None:
        self.check(
            math.isfinite(value), where, f"{name} is not finite: {value!r}"
        )

    def check_unit(
        self, where: str, name: str, value: float, slack: float = ATOL
    ) -> None:
        """*value* must be a probability/fraction in ``[0, 1]``."""
        self.check(
            math.isfinite(value) and -slack <= value <= 1.0 + slack,
            where,
            f"{name} must lie in [0, 1], got {value!r}",
        )

    def check_non_negative(
        self, where: str, name: str, value: float, slack: float = ATOL
    ) -> None:
        self.check(
            math.isfinite(value) and value >= -slack,
            where,
            f"{name} must be non-negative, got {value!r}",
        )

    def check_monotone(
        self,
        where: str,
        name: str,
        previous: float,
        current: float,
        slack: float = 0.0,
    ) -> None:
        """*current* must not regress below *previous* (e.g. generations)."""
        self.check(
            current >= previous - slack,
            where,
            f"{name} regressed: {previous!r} -> {current!r}",
        )

    # -- model kernels --------------------------------------------------------

    def check_composition(
        self,
        where: str,
        good: float,
        good_bad: float,
        bad_good: float,
        bad_bad: float,
    ) -> None:
        """Expected join-class counts are non-negative and finite."""
        for name, value in (
            ("good", good),
            ("good_bad", good_bad),
            ("bad_good", bad_good),
            ("bad_bad", bad_bad),
        ):
            self.check_non_negative(where, name, value, slack=1e-6)

    def check_coverages(self, where: str, *rhos: float) -> None:
        for i, rho in enumerate(rhos):
            self.check_unit(where, f"rho[{i}]", rho, slack=1e-6)

    # -- plan evaluation engine -----------------------------------------------

    def check_curve(
        self,
        where: str,
        n_good: Sequence[float],
        n_bad: Sequence[float],
        time: Sequence[float],
    ) -> None:
        """Effort curves are non-decreasing in effort (the model contract)."""
        for name, values in (("n_good", n_good), ("n_bad", n_bad), ("time", time)):
            previous = None
            for value in values:
                self.check_finite(where, name, float(value))
                if previous is not None:
                    scale = 1e-9 * (1.0 + abs(previous))
                    self.check(
                        float(value) >= previous - scale,
                        where,
                        f"{name} decreases along the effort grid "
                        f"({previous!r} -> {value!r})",
                    )
                previous = float(value)

    def check_bracket(
        self,
        where: str,
        n_good: Sequence[float],
        tau_good: float,
        hi_index: int,
        width: int,
    ) -> None:
        """A located transition bracket really brackets the answer.

        The engine's ``searchsorted`` shortcut promises the bisection
        postcondition: the predicate holds at ``hi_index`` and fails at
        ``hi_index - width`` (or the bracket is the never-probed leftmost
        interval ``(0, width]``).
        """
        self.check(
            0 < hi_index < len(n_good),
            where,
            f"bracket index {hi_index} outside the curve grid",
        )
        if not 0 < hi_index < len(n_good):
            return
        self.check(
            float(n_good[hi_index]) >= tau_good,
            where,
            f"curve value {n_good[hi_index]!r} at the bracket's upper edge "
            f"does not reach tau_good={tau_good!r}",
        )
        lo_index = hi_index - width
        if lo_index > 0:
            self.check(
                float(n_good[lo_index]) < tau_good,
                where,
                f"curve value {n_good[lo_index]!r} at the bracket's lower "
                f"edge already reaches tau_good={tau_good!r} — the bracket "
                "is not minimal",
            )

    # -- executors ------------------------------------------------------------

    def check_conservation(
        self,
        where: str,
        documents_processed: int,
        productive: int,
        unproductive: int,
        yields_total: int,
    ) -> None:
        """Processed documents split exactly into productive + unproductive."""
        self.check(
            min(documents_processed, productive, unproductive) >= 0,
            where,
            "negative document count in the observation collector",
        )
        self.check(
            productive + unproductive == documents_processed,
            where,
            f"document conservation broken: {productive} productive + "
            f"{unproductive} unproductive != {documents_processed} processed",
        )
        self.check(
            yields_total == productive,
            where,
            f"yield histogram covers {yields_total} documents but "
            f"{productive} were productive",
        )

    # -- MLE estimator --------------------------------------------------------

    def check_estimate(
        self, where: str, parameters: Any, database_size: int
    ) -> None:
        """An estimate is finite, non-negative, and simplex-consistent."""
        for name in ("n_good_values", "n_bad_values", "n_good_docs", "n_bad_docs"):
            self.check_non_negative(
                where, name, float(getattr(parameters, name)), slack=1e-6
            )
        self.check_unit(
            where,
            "good_occurrence_share",
            float(parameters.good_occurrence_share),
            slack=1e-6,
        )
        self.check_finite(
            where, "log_likelihood", float(parameters.log_likelihood)
        )
        for name in ("beta_good", "beta_bad"):
            self.check_finite(where, name, float(getattr(parameters, name)))
        self.check(
            parameters.k_max_good >= 1 and parameters.k_max_bad >= 1,
            where,
            "power-law support caps must be at least 1",
        )
        docs = float(parameters.n_good_docs) + float(parameters.n_bad_docs)
        self.check(
            docs <= database_size + 0.5 + 1e-6 * database_size,
            where,
            f"estimated document classes ({docs:.1f}) exceed the database "
            f"size ({database_size})",
        )

    def check_refit(
        self, where: str, key: str, log_likelihood: float
    ) -> None:
        """Refitting the same observations can never fit them worse.

        *key* fingerprints the fit inputs (observations + context + grid);
        across EM-style refit rounds the data grows — and the fingerprint
        changes — so likelihoods are compared only between fits of
        identical inputs, where the grid search is deterministic and the
        achieved likelihood must not decrease.
        """
        self.check_finite(where, "log_likelihood", log_likelihood)
        previous = self._refit_likelihoods.get(key)
        if previous is not None:
            self.check(
                log_likelihood >= previous - 1e-6 * (1.0 + abs(previous)),
                where,
                f"refit of identical observations ({key[:16]}…) reached "
                f"log-likelihood {log_likelihood!r}, below the earlier "
                f"{previous!r}",
            )
        if previous is None or log_likelihood > previous:
            self._refit_likelihoods[key] = log_likelihood

    # -- reporting ------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        return {
            "enabled": self.enabled,
            "checks_run": self.checks_run,
            "violations": [v.to_dict() for v in self.violations],
        }


def _env_enabled() -> bool:
    return os.environ.get(ENV_FLAG, "").strip().lower() not in (
        "",
        "0",
        "false",
        "off",
        "no",
    )


#: the process-wide checker consulted by every instrumented call site
_ACTIVE: InvariantChecker = InvariantChecker(
    enabled=_env_enabled(), raise_on_violation=True
)


def active_checker() -> InvariantChecker:
    """The checker instrumented call sites consult (possibly disabled)."""
    return _ACTIVE


def install_checker(checker: InvariantChecker) -> InvariantChecker:
    """Swap the active checker; returns the previous one (for restoring)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = checker
    return previous


def enable_selfcheck(raise_on_violation: bool = True) -> InvariantChecker:
    """Install and return an enabled checker (the ``--selfcheck`` path)."""
    return_value = InvariantChecker(
        enabled=True, raise_on_violation=raise_on_violation
    )
    install_checker(return_value)
    return return_value


def disable_selfcheck() -> InvariantChecker:
    """Install and return a disabled (null) checker."""
    return_value = InvariantChecker(enabled=False)
    install_checker(return_value)
    return return_value


__all__ = [
    "ATOL",
    "ENV_FLAG",
    "InvariantChecker",
    "InvariantViolation",
    "Violation",
    "active_checker",
    "disable_selfcheck",
    "enable_selfcheck",
    "install_checker",
]
