"""Join algorithms over extracted relations: IDJN, OIJN, ZGJN (Section IV).

All executors share ripple-join result maintenance, estimate-driven
stopping on (τg, τb), simulated-time accounting, and online observation
collection for the optimizer's parameter estimation.
"""

from .base import (
    UNLIMITED,
    ActualQuality,
    Budgets,
    JoinAlgorithm,
    JoinExecution,
    JoinInputs,
    QualityEstimator,
)
from .costs import CostModel, SideCosts
from .idjn import IndependentJoin
from .oijn import OuterInnerJoin
from .stats_collector import ObservationCollector, RelationObservations
from .zgjn import ZigZagJoin

__all__ = [
    "UNLIMITED",
    "ActualQuality",
    "Budgets",
    "CostModel",
    "IndependentJoin",
    "JoinAlgorithm",
    "JoinExecution",
    "JoinInputs",
    "ObservationCollector",
    "OuterInnerJoin",
    "QualityEstimator",
    "RelationObservations",
    "SideCosts",
    "ZigZagJoin",
]
