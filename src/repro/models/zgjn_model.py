"""Analytical model of the Zig-Zag Join (Section V-E).

ZGJN's behaviour is governed by the *zig-zag graph*: attribute values hit
documents of the opposite database (hit edges), documents generate
attribute values (generates edges).  The model describes both edge-degree
distributions with generating functions and chains the Newman/Strogatz/
Watts properties (Moments, Power, Composition — see
:mod:`repro.models.generating`) to predict, as a function of the number of
queries issued from R1 values:

    E[|Dr2|] = Q1 · μ(H1)                  documents retrieved from D2
    E[|Ar2|] = E[|Dr2|] · μ(Ga2)           R2 values generated from them
    E[|Dr1|] = E[|Ar2|] · μ(H2)            documents those values hit in D1
    E[|Ar1|] = E[|Dr1|] · μ(Ga1)           R1 values generated in turn

where H is the size-biased hit distribution (hits capped at the search
interface's top-k) and Ga the size-biased per-document yield distribution
after extraction thinning.  Every expectation is clipped at its reachable
ceiling (query-matchable documents, distinct values) — the model-level
counterpart of the search-interface limit of Figure 6(b).

The extracted-value totals are split into good/bad occurrences by each
side's occurrence shares, converted to document-coverage fractions, and
pushed through the Section V-B composition scheme.  ``include_stall=True``
(default) keeps zero-hit values in the hit distributions, modelling query
stalling; ``False`` reproduces the paper's "all queries match" assumption,
which it reports as a source of bad-tuple overestimation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..joins.costs import CostModel
from .generating import GeneratingFunction
from .kernels import compose_aggregate_arrays, composition_kernel, side_kernel
from .parameters import JoinStatistics, SideStatistics, ValueOverlapModel
from .predictions import QualityPrediction, charge_events
from .retrieval_models import EffortEvents
from .scheme import (
    SideFactors,
    compose_aggregate,
    compose_per_value,
    occurrence_factors,
)


@dataclass(frozen=True)
class ZGJNReach:
    """Expected execution reach after q1 queries from R1 values."""

    queries_from_r1: float
    documents2: float
    values2: float
    documents1: float
    values1: float

    @property
    def queries_from_r2(self) -> float:
        """Queries issued against D1 (one per distinct R2 value used)."""
        return self.values2


def _hit_distribution_aggregate(
    own: SideStatistics,
    other: SideStatistics,
    overlap: "ValueOverlapModel",
    own_is_side1: bool,
    include_stall: bool,
) -> GeneratingFunction:
    """h0 when value identities don't align (estimated statistics).

    The overlap-class counts say how many of *own*'s values occur in the
    other relation at all; those shared values draw their hit counts from
    the other side's per-value frequency distribution (capped at top-k),
    and the rest stall with zero hits.
    """
    n_own = float(
        len(set(own.good_frequency) | set(own.bad_frequency))
    )
    if n_own <= 0:
        raise ValueError(f"side {own.relation} has no values")
    if own_is_side1:
        shared = overlap.n_gg + overlap.n_gb + overlap.n_bg + overlap.n_bb
    else:
        shared = overlap.n_gg + overlap.n_bg + overlap.n_gb + overlap.n_bb
    shared = min(shared, n_own)
    hit_histogram: Dict[int, float] = {}
    other_values = list(other.good_frequency.values()) + list(
        other.bad_frequency.values()
    )
    if not other_values:
        other_values = [0.0]
    for freq in other_values:
        k = int(min(round(freq), other.top_k))
        hit_histogram[k] = hit_histogram.get(k, 0.0) + 1.0
    total_other = sum(hit_histogram.values())
    histogram: Dict[int, float] = {
        k: shared * weight / total_other for k, weight in hit_histogram.items()
    }
    stall_mass = n_own - shared
    if include_stall and stall_mass > 0:
        histogram[0] = histogram.get(0, 0.0) + stall_mass
    if not any(k > 0 and v > 0 for k, v in histogram.items()):
        raise ValueError("every query stalls; no zig-zag execution possible")
    max_k = max(histogram)
    coeffs = [histogram.get(k, 0.0) for k in range(max_k + 1)]
    return GeneratingFunction(coeffs)


def _hit_distribution(
    own: SideStatistics, other: SideStatistics, include_stall: bool
) -> GeneratingFunction:
    """h0: capped hits on the *other* database per value of *own*.

    A value's query matches every document of the other database carrying
    an occurrence of it — ``H(q) = g(a) + b(a)`` there — truncated at the
    other interface's top-k.  Values absent from the other relation stall
    (zero hits); ``include_stall`` keeps or drops that mass.
    """
    histogram: Dict[int, float] = {}
    values = sorted(set(own.good_frequency) | set(own.bad_frequency))
    if not values:
        raise ValueError(f"side {own.relation} has no values")
    for value in values:
        hits = other.good_frequency.get(value, 0.0) + other.bad_frequency.get(
            value, 0.0
        )
        k = int(min(round(hits), other.top_k))
        if k == 0 and not include_stall:
            continue
        histogram[k] = histogram.get(k, 0.0) + 1.0
    if not histogram:
        raise ValueError("every query stalls; no zig-zag execution possible")
    max_k = max(histogram)
    coeffs = [histogram.get(k, 0.0) for k in range(max_k + 1)]
    return GeneratingFunction(coeffs)


def _yield_distribution(side: SideStatistics) -> GeneratingFunction:
    """ga0: extracted values per retrieved document, after thinning."""
    if side.values_per_document:
        base = GeneratingFunction.from_histogram(dict(side.values_per_document))
    else:
        total = side.total_good_occurrences + side.total_bad_occurrences
        non_empty = max(side.n_good_docs + side.n_bad_docs, 1)
        base = GeneratingFunction.degenerate(max(1, round(total / non_empty)))
    total_occ = side.total_good_occurrences + side.total_bad_occurrences
    if total_occ <= 0:
        return base.thinned(0.0)
    rate = (
        side.tp * side.total_good_occurrences
        + side.fp * side.total_bad_occurrences
    ) / total_occ
    return base.thinned(rate)


class ZGJNModel:
    """Predicts output quality and time of ZGJN plans."""

    def __init__(
        self,
        statistics: JoinStatistics,
        costs: Optional[CostModel] = None,
        per_value: bool = True,
        overlap: Optional[ValueOverlapModel] = None,
        include_stall: bool = True,
        dedup_correction: bool = True,
        vectorized: bool = True,
    ) -> None:
        self.statistics = statistics
        self.costs = costs or CostModel()
        self.per_value = per_value
        self.include_stall = include_stall
        #: ``True`` evaluates the reachable-document ceilings and the join
        #: composition on arrays; ``False`` walks the scalar reference
        #: loops.  Both agree within 1e-9 (golden-tested).
        self.vectorized = vectorized
        #: the ceilings are effort-independent; computing them inside every
        #: reach() call was pure rework
        self._ceiling_cache: Dict[int, float] = {}
        #: The raw generating-function chain counts every hit, but the
        #: execution retrieves each document (and issues each value query)
        #: once; the occupancy correction N·(1 - e^(-raw/N)) accounts for
        #: collisions.  The paper omits it — one cause of the bad-tuple
        #: overestimation it reports; ``False`` reproduces that behaviour.
        self.dedup_correction = dedup_correction
        side1, side2 = statistics.side1, statistics.side2
        if per_value:
            self.overlap = None
            self.h0_1 = _hit_distribution(side1, side2, include_stall)
            self.h0_2 = _hit_distribution(side2, side1, include_stall)
        else:
            self.overlap = overlap or ValueOverlapModel.from_side_values(
                side1, side2
            )
            self.h0_1 = _hit_distribution_aggregate(
                side1, side2, self.overlap, True, include_stall
            )
            self.h0_2 = _hit_distribution_aggregate(
                side2, side1, self.overlap, False, include_stall
            )
        for label, h0 in (("R1", self.h0_1), ("R2", self.h0_2)):
            if h0.mean() <= 0:
                raise ValueError(
                    f"every query from {label} stalls (no shared join "
                    "values); no zig-zag execution is possible"
                )
        self.ga0_1 = _yield_distribution(side1)
        self.ga0_2 = _yield_distribution(side2)

    # -- reach ------------------------------------------------------------------

    def _distinct_values(self, side: SideStatistics) -> float:
        return float(len(set(side.good_frequency) | set(side.bad_frequency)))

    def _reachable_documents(self, side: SideStatistics) -> float:
        """Ceiling on documents of *side* that zig-zag queries can reach.

        A document is reachable only through queries for join values it
        contains, and a value is only ever queried if (a) it also occurs
        in the *other* relation and (b) the other side's extractor emits
        it at least once at its operating point.  The expected ceiling is
        an occupancy bound: Σ over shared values of
        ``p_queryable · min(hits, top_k)`` doc-slots thrown into the
        side's non-empty documents.  Without this correction the model
        predicts near-complete coverage and ZGJN looks far better than it
        is — the paper reports the matching overestimation.

        The ceiling is effort-independent, so it is computed once per side
        and cached.
        """
        key = 1 if side is self.statistics.side1 else 2
        if key not in self._ceiling_cache:
            self._ceiling_cache[key] = self._compute_reachable(side)
        return self._ceiling_cache[key]

    def _vectorized_slots(
        self, side: SideStatistics, other: SideStatistics
    ) -> float:
        """Array evaluation of the per-value slot sum (reference: below)."""
        values = sorted(set(side.good_frequency) | set(side.bad_frequency))
        g_other = np.array(
            [other.good_frequency.get(v, 0.0) for v in values]
        )
        b_other = np.array([other.bad_frequency.get(v, 0.0) for v in values])
        mask = (g_other != 0) | (b_other != 0)
        p_queryable = 1.0 - (1.0 - other.tp) ** g_other * (
            1.0 - other.fp
        ) ** b_other
        hits = np.array(
            [side.good_frequency.get(v, 0.0) for v in values]
        ) + np.array([side.bad_frequency.get(v, 0.0) for v in values])
        return float(
            np.sum((p_queryable * np.minimum(hits, side.top_k))[mask])
        )

    def _compute_reachable(self, side: SideStatistics) -> float:
        other = (
            self.statistics.side2
            if side is self.statistics.side1
            else self.statistics.side1
        )
        non_empty = float(side.n_good_docs + side.n_bad_docs)
        if non_empty <= 0:
            return 0.0
        if self.per_value and self.vectorized:
            slots = self._vectorized_slots(side, other)
        elif self.per_value:
            slots = 0.0
            for value in sorted(
                set(side.good_frequency) | set(side.bad_frequency)
            ):
                g_other = other.good_frequency.get(value, 0.0)
                b_other = other.bad_frequency.get(value, 0.0)
                if g_other == 0 and b_other == 0:
                    continue
                p_queryable = 1.0 - (1.0 - other.tp) ** g_other * (
                    1.0 - other.fp
                ) ** b_other
                hits = side.good_frequency.get(
                    value, 0.0
                ) + side.bad_frequency.get(value, 0.0)
                slots += p_queryable * min(hits, side.top_k)
        else:
            # Aggregate mode: class means in place of per-value identity.
            overlap = self.overlap
            shared = (
                overlap.n_gg + overlap.n_gb + overlap.n_bg + overlap.n_bb
            )
            own_values = list(side.good_frequency.values()) + list(
                side.bad_frequency.values()
            )
            other_values = list(other.good_frequency.values()) + list(
                other.bad_frequency.values()
            )
            if not own_values or not other_values:
                return 0.0
            mean_hits = sum(min(v, side.top_k) for v in own_values) / len(
                own_values
            )
            mean_other_freq = sum(other_values) / len(other_values)
            rate = (other.tp + other.fp) / 2.0
            p_queryable = 1.0 - (1.0 - rate) ** mean_other_freq
            shared = min(shared, float(len(own_values)))
            slots = shared * mean_hits * p_queryable
        if not self.dedup_correction:
            return min(slots, non_empty) if slots else non_empty
        from math import exp

        return non_empty * (1.0 - exp(-slots / non_empty))

    def max_queries_from_r1(self) -> int:
        """The query budget axis: at most one query per distinct R1 value."""
        return int(self._distinct_values(self.statistics.side1))

    def reach(self, q1: float) -> ZGJNReach:
        """Chain the Moments/Power/Composition expectations, with ceilings."""
        if q1 < 0:
            raise ValueError("q1 must be non-negative")
        side1, side2 = self.statistics.side1, self.statistics.side2
        mu_h1 = self.h0_1.size_biased_mean()
        mu_h2 = self.h0_2.size_biased_mean()
        mu_ga1 = self.ga0_1.size_biased_mean()
        mu_ga2 = self.ga0_2.size_biased_mean()
        q1 = min(q1, self.max_queries_from_r1())

        def cap(raw: float, ceiling: float) -> float:
            if ceiling <= 0:
                return 0.0
            if not self.dedup_correction:
                return min(raw, ceiling)
            from math import exp

            return ceiling * (1.0 - exp(-raw / ceiling))

        dr2 = cap(q1 * mu_h1, self._reachable_documents(side2))
        ar2 = cap(dr2 * mu_ga2, self._distinct_values(side2))
        dr1 = cap(ar2 * mu_h2, self._reachable_documents(side1))
        ar1 = cap(dr1 * mu_ga1, self._distinct_values(side1))
        return ZGJNReach(
            queries_from_r1=q1,
            documents2=dr2,
            values2=ar2,
            documents1=dr1,
            values1=ar1,
        )

    # -- composition --------------------------------------------------------------

    def _good_share(self, side: SideStatistics) -> float:
        """Good-document share among query-matchable documents."""
        good_docs = side.total_good_occurrences + sum(
            side.bad_in_good_frequency.values()
        )
        all_docs = side.total_good_occurrences + side.total_bad_occurrences
        if all_docs <= 0:
            return 0.0
        return good_docs / all_docs

    def _coverage_fractions(
        self, side_index: int, documents: float
    ) -> Tuple[float, float]:
        """(ρ_good, ρ_bad) given this side's retrieved-document count."""
        side = self.statistics.side(side_index)
        share = self._good_share(side)
        good_docs = documents * share
        bad_docs = documents * (1.0 - share)
        rho_good = min(good_docs / max(side.n_good_docs, 1), 1.0)
        rho_bad = min(bad_docs / max(side.n_bad_docs, 1), 1.0)
        return rho_good, rho_bad

    def side_factors(self, side_index: int, documents: float) -> SideFactors:
        """Occurrence factors given this side's retrieved-document count."""
        side = self.statistics.side(side_index)
        rho_good, rho_bad = self._coverage_fractions(side_index, documents)
        return occurrence_factors(side, rho_good=rho_good, rho_bad=rho_bad)

    def predict(self, q1: float) -> QualityPrediction:
        """Expected composition and time after q1 queries from R1 values."""
        reach = self.reach(q1)
        if self.vectorized:
            # ZGJN factors are coverage-separable, so composition reduces
            # to the precomputed kernel dot products (per-value mode) or
            # the factor-array moments (aggregate mode).
            rho1 = self._coverage_fractions(1, reach.documents1)
            rho2 = self._coverage_fractions(2, reach.documents2)
            side1, side2 = self.statistics.side1, self.statistics.side2
            if self.per_value:
                kernel = composition_kernel(side1, side2)
                composition = kernel.compose_coverage(
                    rho1[0], rho1[1], rho2[0], rho2[1]
                )
            else:
                k1, k2 = side_kernel(side1), side_kernel(side2)
                composition = compose_aggregate_arrays(
                    k1.good_factors(rho1[0]),
                    k1.bad_factors(rho1[0], rho1[1]),
                    k2.good_factors(rho2[0]),
                    k2.bad_factors(rho2[0], rho2[1]),
                    self.overlap,
                )
        else:
            factors1 = self.side_factors(1, reach.documents1)
            factors2 = self.side_factors(2, reach.documents2)
            if self.per_value:
                composition = compose_per_value(factors1, factors2)
            else:
                composition = compose_aggregate(
                    factors1, factors2, self.overlap
                )
        events = {
            1: EffortEvents(
                retrieved=reach.documents1,
                processed=reach.documents1,
                filtered=0.0,
                queries=reach.queries_from_r2,
            ),
            2: EffortEvents(
                retrieved=reach.documents2,
                processed=reach.documents2,
                filtered=0.0,
                queries=reach.queries_from_r1,
            ),
        }
        return QualityPrediction(
            composition=composition,
            time=charge_events(events, self.costs),
            efforts={1: reach.queries_from_r2, 2: reach.queries_from_r1},
            events=events,
        )

    def documents_curve(
        self, q1_grid: Sequence[float]
    ) -> Dict[float, ZGJNReach]:
        """E[|Dr1|], E[|Dr2|] over a query-budget grid (Figure 12)."""
        return {q1: self.reach(q1) for q1 in q1_grid}
