"""Reproduce the paper's model-accuracy study (Figures 9-12) as tables.

For each join algorithm, sweeps the execution depth and prints the
analytical estimate next to the actual measurement — the textual
equivalent of the paper's estimated/actual curve pairs.

Run:  python examples/model_accuracy.py
"""

from repro.experiments import (
    TestbedConfig,
    build_testbed,
    format_accuracy_rows,
    format_documents_rows,
    run_figure9,
    run_figure10,
    run_figure11,
    run_figure12,
)

testbed = build_testbed(TestbedConfig(scale=0.6))
task = testbed.task()
percents = (10, 25, 50, 75, 100)

print(format_accuracy_rows(
    run_figure9(task, percents=percents),
    "Figure 9 — IDJN (Scan/Scan), minSim=0.4",
))
print()
print(format_accuracy_rows(
    run_figure10(task, percents=percents),
    "Figure 10 — OIJN (Scan outer), minSim=0.4",
))
print()
print(format_accuracy_rows(
    run_figure11(task, percents=percents),
    "Figure 11 — ZGJN, minSim=0.4",
))
print()
print(format_documents_rows(
    run_figure12(task, percents=percents),
    "Figure 12 — ZGJN documents retrieved",
))
print("""
Reading the tables: estimates should track actuals closely for IDJN
(hypergeometric sampling is exact in expectation), well for OIJN, and
within a small factor for ZGJN — whose generating-function model the paper
itself reports as the coarsest (systematic bad-tuple overestimation).
""")
