"""Logging configuration for the CLI and library diagnostics.

One ``repro`` logger hierarchy, one stderr handler, plain-message format:
diagnostics keep their exact historical text (``repro: error: ...`` is
still a single line on stderr) while becoming level-filtered through the
CLI's ``-v/--log-level`` flag.  Machine-readable results (tables, chosen
plans, summaries) stay on stdout via ``print`` and are unaffected.

The handler resolves ``sys.stderr`` at emit time rather than capturing it
at configuration time, so pytest's stream capture (and any other stderr
redirection) keeps working across repeated ``main()`` invocations.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, Union

ROOT_LOGGER = "repro"

LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}


class _LiveStderrHandler(logging.StreamHandler):
    """A StreamHandler bound to *current* ``sys.stderr``, not a snapshot."""

    def __init__(self) -> None:
        logging.Handler.__init__(self)

    @property
    def stream(self):
        return sys.stderr

    @stream.setter
    def stream(self, value) -> None:  # StreamHandler's ctor assigns; ignore
        pass


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """The ``repro`` logger, or a child (``get_logger("cli")``)."""
    return logging.getLogger(f"{ROOT_LOGGER}.{name}" if name else ROOT_LOGGER)


def resolve_level(level: Union[str, int]) -> int:
    if isinstance(level, int):
        return level
    try:
        return LEVELS[level.lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; pick one of {sorted(LEVELS)}"
        ) from None


def configure_logging(level: Union[str, int] = "info") -> logging.Logger:
    """(Re)configure the ``repro`` logger; idempotent across calls."""
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(resolve_level(level))
    logger.propagate = False
    if not any(
        isinstance(handler, _LiveStderrHandler) for handler in logger.handlers
    ):
        handler = _LiveStderrHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        logger.addHandler(handler)
    return logger
