"""Accuracy tests for the three join-quality models against executions.

These are the library-level counterparts of the paper's Figures 9-11
accuracy study: with perfect knowledge of the database statistics, each
model's estimates must track the corresponding actual execution within a
documented tolerance (exact proportions at full coverage for IDJN/Scan).
"""

import pytest

from repro.core import RetrievalKind
from repro.joins import Budgets, IndependentJoin, OuterInnerJoin, ZigZagJoin
from repro.models import (
    IDJNModel,
    JoinStatistics,
    OIJNModel,
    SideStatistics,
    ZGJNModel,
)
from repro.models.scheme import (
    SideFactors,
    compose_aggregate,
    compose_per_value,
    occurrence_factors,
)
from repro.models.parameters import ValueOverlapModel
from repro.joins import JoinInputs
from repro.retrieval import Query, ScanRetriever


@pytest.fixture(scope="module")
def statistics(mini_profile1, mini_profile2, mini_char1, mini_char2, mini_db1, mini_db2):
    return JoinStatistics(
        side1=SideStatistics.from_profile(
            mini_profile1,
            tp=mini_char1.tp_at(0.4),
            fp=mini_char1.fp_at(0.4),
            top_k=mini_db1.max_results,
        ),
        side2=SideStatistics.from_profile(
            mini_profile2,
            tp=mini_char2.tp_at(0.4),
            fp=mini_char2.fp_at(0.4),
            top_k=mini_db2.max_results,
        ),
    )


@pytest.fixture(scope="module")
def inputs(mini_db1, mini_db2, mini_extractor1, mini_extractor2):
    return JoinInputs(
        database1=mini_db1,
        database2=mini_db2,
        extractor1=mini_extractor1,
        extractor2=mini_extractor2,
    )


class TestScheme:
    def test_per_value_composition(self):
        f1 = SideFactors(good={"a": 2.0, "b": 1.0}, bad={"a": 0.5})
        f2 = SideFactors(good={"a": 3.0}, bad={"b": 2.0, "c": 1.0})
        comp = compose_per_value(f1, f2)
        assert comp.good == pytest.approx(6.0)  # a: 2*3
        assert comp.good_bad == pytest.approx(2.0)  # b: 1*2
        assert comp.bad_good == pytest.approx(1.5)  # a: 0.5*3
        assert comp.bad_bad == pytest.approx(0.0)

    def test_aggregate_independence_limit(self):
        f1 = SideFactors(good={"a": 2.0, "b": 4.0}, bad={})
        f2 = SideFactors(good={"x": 1.0, "y": 3.0}, bad={})
        overlap = ValueOverlapModel(n_gg=2, n_gb=0, n_bg=0, n_bb=0)
        comp = compose_aggregate(f1, f2, overlap, correlation=0.0)
        assert comp.good == pytest.approx(2 * 3.0 * 2.0)  # n * m1 * m2

    def test_aggregate_correlation_adds_covariance(self):
        f1 = SideFactors(good={"a": 2.0, "b": 4.0}, bad={})
        f2 = SideFactors(good={"x": 1.0, "y": 3.0}, bad={})
        overlap = ValueOverlapModel(n_gg=2, n_gb=0, n_bg=0, n_bb=0)
        independent = compose_aggregate(f1, f2, overlap, correlation=0.0)
        correlated = compose_aggregate(f1, f2, overlap, correlation=1.0)
        assert correlated.good == pytest.approx(independent.good + 2 * 1.0 * 1.0)

    def test_invalid_correlation(self):
        f = SideFactors(good={}, bad={})
        with pytest.raises(ValueError):
            compose_aggregate(f, f, ValueOverlapModel(0, 0, 0, 0), correlation=2.0)

    def test_occurrence_factors_formulas(self, statistics):
        side = statistics.side1
        factors = occurrence_factors(side, rho_good=0.5, rho_bad=0.25)
        value = next(iter(side.good_frequency))
        expected = side.tp * side.good_frequency[value] * 0.5
        assert factors.good[value] == pytest.approx(expected)

    def test_occurrence_factors_validate_rho(self, statistics):
        with pytest.raises(ValueError):
            occurrence_factors(statistics.side1, 1.5, 0.0)


class TestIDJNModel:
    def test_exact_at_full_coverage(self, statistics, inputs):
        model = IDJNModel(statistics, RetrievalKind.SCAN, RetrievalKind.SCAN)
        n1, n2 = len(inputs.database1), len(inputs.database2)
        prediction = model.predict(n1, n2)
        execution = IndependentJoin(
            inputs, ScanRetriever(inputs.database1), ScanRetriever(inputs.database2)
        ).run()
        actual = execution.report.composition
        assert prediction.n_good == pytest.approx(actual.n_good, rel=0.10)
        assert prediction.n_bad == pytest.approx(actual.n_bad, rel=0.10)

    def test_tracks_partial_coverage(self, statistics, inputs):
        model = IDJNModel(statistics, RetrievalKind.SCAN, RetrievalKind.SCAN)
        n1 = len(inputs.database1) // 2
        n2 = len(inputs.database2) // 2
        prediction = model.predict(n1, n2)
        execution = IndependentJoin(
            inputs, ScanRetriever(inputs.database1), ScanRetriever(inputs.database2)
        ).run(budgets=Budgets(max_documents1=n1, max_documents2=n2))
        actual = execution.report.composition
        # Unbiased but subject to scan-order sampling variance (verified
        # across rank seeds); the paper's Figure 9 shows the same scatter.
        assert prediction.n_good == pytest.approx(actual.n_good, rel=0.45)
        assert prediction.n_bad == pytest.approx(actual.n_bad, rel=0.45)

    def test_time_model_exact_for_scan(self, statistics, inputs):
        model = IDJNModel(statistics, RetrievalKind.SCAN, RetrievalKind.SCAN)
        prediction = model.predict(100, 150)
        assert prediction.total_time == pytest.approx(100 * 5 + 150 * 5)

    def test_quality_monotone_in_effort(self, statistics):
        model = IDJNModel(statistics, RetrievalKind.SCAN, RetrievalKind.SCAN)
        goods = [model.predict(n, n).n_good for n in (0, 100, 200, 400)]
        assert goods == sorted(goods)
        assert goods[0] == 0.0

    def test_zero_effort_zero_quality(self, statistics):
        model = IDJNModel(statistics, RetrievalKind.SCAN, RetrievalKind.SCAN)
        prediction = model.predict(0, 0)
        assert prediction.n_good == 0.0
        assert prediction.n_bad == 0.0
        assert prediction.total_time == 0.0


class TestOIJNModel:
    def test_tracks_execution(self, statistics, inputs):
        model = OIJNModel(statistics, RetrievalKind.SCAN, outer=1)
        n1 = len(inputs.database1) // 2
        prediction = model.predict(n1)
        execution = OuterInnerJoin(
            inputs, ScanRetriever(inputs.database1), outer=1
        ).run(budgets=Budgets(max_documents1=n1))
        actual = execution.report.composition
        assert prediction.n_good == pytest.approx(actual.n_good, rel=0.4)
        assert prediction.n_bad == pytest.approx(actual.n_bad, rel=0.4)

    def test_query_count_tracks_execution(self, statistics, inputs):
        model = OIJNModel(statistics, RetrievalKind.SCAN, outer=1)
        n1 = len(inputs.database1)
        prediction = model.predict(n1)
        execution = OuterInnerJoin(
            inputs, ScanRetriever(inputs.database1), outer=1
        ).run()
        assert prediction.events[2].queries == pytest.approx(
            execution.report.queries_issued[2], rel=0.25
        )

    def test_outer_choice_respected(self, statistics):
        model = OIJNModel(statistics, RetrievalKind.SCAN, outer=2)
        prediction = model.predict(100)
        assert 2 in prediction.efforts
        assert prediction.events[1].queries > 0  # inner side is 1

    def test_monotone(self, statistics):
        model = OIJNModel(statistics, RetrievalKind.SCAN, outer=1)
        goods = [model.predict(n).n_good for n in (0, 50, 150, 450)]
        assert goods == sorted(goods)

    def test_invalid_outer(self, statistics):
        with pytest.raises(ValueError):
            OIJNModel(statistics, RetrievalKind.SCAN, outer=0)


class TestBestOuter:
    def test_returns_valid_side_and_times(self, statistics):
        from repro.models import best_outer

        side, times = best_outer(statistics, RetrievalKind.SCAN, tau_good=50)
        assert side in (1, 2)
        assert times[side] is not None
        # The winner's predicted time is no worse than the loser's.
        other = 2 if side == 1 else 1
        if times[other] is not None:
            assert times[side] <= times[other]

    def test_unreachable_target(self, statistics):
        from repro.models import best_outer

        side, times = best_outer(
            statistics, RetrievalKind.SCAN, tau_good=10**9
        )
        assert side == 1
        assert times[1] is None and times[2] is None

    def test_advice_consistent_with_models(self, statistics):
        from repro.models import best_outer

        tau_good = 100
        side, times = best_outer(
            statistics, RetrievalKind.SCAN, tau_good=tau_good
        )
        # Re-derive the winner's time with a fresh model at full effort
        # resolution; must be reachable.
        model = OIJNModel(statistics, RetrievalKind.SCAN, outer=side)
        assert model.predict(model.max_effort).n_good >= tau_good


class TestZGJNModel:
    def test_reach_chain_monotone(self, statistics):
        model = ZGJNModel(statistics)
        reaches = [model.reach(q) for q in (0, 5, 20, 50)]
        docs2 = [r.documents2 for r in reaches]
        assert docs2 == sorted(docs2)
        assert reaches[0].documents2 == 0.0

    def test_reach_bounded_by_ceilings(self, statistics):
        model = ZGJNModel(statistics)
        reach = model.reach(10**6)
        side2 = statistics.side2
        assert reach.documents2 <= side2.n_good_docs + side2.n_bad_docs

    def test_tracks_execution_order_of_magnitude(
        self, statistics, inputs, mini_profile1
    ):
        model = ZGJNModel(statistics)
        seeds = [
            Query.of(v) for v, _ in mini_profile1.good_frequency.most_common(3)
        ]
        q = 20
        prediction = model.predict(q)
        execution = ZigZagJoin(inputs, seeds).run(
            budgets=Budgets(max_queries1=q, max_queries2=q)
        )
        actual = execution.report.composition
        # ZGJN's model is the coarsest (the paper reports systematic
        # overestimation); require agreement within a factor of 3.
        assert prediction.n_good == pytest.approx(actual.n_good, rel=2.0)
        assert actual.n_good / 3 <= prediction.n_good <= actual.n_good * 3

    def test_stall_flag_changes_estimates(self, statistics):
        with_stall = ZGJNModel(statistics, include_stall=True)
        without = ZGJNModel(statistics, include_stall=False)
        assert (
            without.reach(10).documents2 >= with_stall.reach(10).documents2 - 1e-9
        )

    def test_dedup_correction_reduces_reach(self, statistics):
        corrected = ZGJNModel(statistics, dedup_correction=True)
        raw = ZGJNModel(statistics, dedup_correction=False)
        assert corrected.reach(30).documents2 <= raw.reach(30).documents2 + 1e-9

    def test_negative_queries_rejected(self, statistics):
        with pytest.raises(ValueError):
            ZGJNModel(statistics).reach(-1)
