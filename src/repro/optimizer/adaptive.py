"""End-to-end adaptive, quality-aware join optimization (Section VI).

The optimizer "begins with an initial choice of execution strategy; as the
initial strategy progresses, [it] derives the necessary parameters and
determines a desirable execution strategy for τg and τb, while checking
for robustness using cross-validation."  Concretely:

1. **Pilot**: run a short IDJN/Scan prefix on both databases — the
   cheapest way to obtain unbiased sample frequencies s(a) and confidence
   observations on each side.
2. **Estimate**: fit each side's database statistics by MLE
   (:mod:`repro.estimation`) and derive the join-overlap classes.
3. **Optimize**: evaluate every candidate plan with the Section V models
   over the *estimated* statistics and pick the fastest feasible plan.
4. **Cross-validate**: re-estimate on two random halves of the observed
   values; if the halves disagree with the full fit about the best plan,
   the statistics are not yet trustworthy — extend the pilot and repeat
   (up to ``max_rounds``).
5. **Execute** the chosen plan, stopping on *estimated* join quality (the
   per-value good posteriors from the confidence split — never ground
   truth), with the evaluation's predicted operating point as a budget
   safety net.

The pilot's observations (and its extracted tuples, when the chosen plan
is scan-compatible) are not discarded: pilot time is accounted into the
final report, matching the paper's cost accounting for adaptive runs.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.plan import JoinPlanSpec
from ..core.preferences import QualityRequirement
from ..core.relation import JoinState
from ..extraction.characterization import KnobCharacterization
from ..estimation.mle import ObservationContext
from ..estimation.online import SideEstimate, estimate_overlap, estimate_side
from ..joins.base import Budgets, JoinAlgorithm, JoinExecution
from ..joins.idjn import IndependentJoin
from ..joins.base import JoinInputs
from ..joins.stats_collector import RelationObservations
from ..models.parameters import SideStatistics
from ..observability.context import ensure_observability
from ..observability.tracer import SpanKind
from ..retrieval.scan import ScanRetriever
from ..robustness.checkpoint import checkpoint_execution, restore_execution
from ..robustness.context import AccessPathUnavailable
from ..robustness.deadline import Deadline, DeadlineExceeded
from ..robustness.degradation import split_path, surviving_plans
from .binder import ExecutionEnvironment, bind_plan, budgets_from_evaluation
from .catalog import StatisticsCatalog
from .optimizer import JoinOptimizer, OptimizationResult, PlanEvaluation


class TuplePosterior:
    """Per-occurrence good probability from an extractor confidence score.

    With a class-conditional confidence reference and a fitted good-share
    λ, the posterior of a score in bin b is ``λ·Pg(b) / (λ·Pg(b) +
    (1-λ)·Pb(b))`` — calibrated occurrence-level classification with no
    labels.  Without a reference, every occurrence falls back to λ.
    """

    def __init__(
        self,
        reference: Optional[object],
        good_share: float,
        theta: float = 0.0,
    ) -> None:
        self.good_share = min(max(good_share, 1e-6), 1.0 - 1e-6)
        self._reference = reference
        if reference is not None:
            good = reference.good_at(theta)
            bad = reference.bad_at(theta)
            lam = self.good_share
            self._by_bin = [
                (lam * g) / max(lam * g + (1.0 - lam) * b, 1e-12)
                for g, b in zip(good, bad)
            ]
        else:
            self._by_bin = None

    def __call__(self, confidence: float) -> float:
        if self._by_bin is None:
            return self.good_share
        return self._by_bin[self._reference.bin_of(confidence)]


class PosteriorQuality:
    """Join-quality estimator from per-tuple confidence posteriors.

    A join tuple is good iff both constituent occurrences are good; the
    estimator scores each result ``p1(left) · p2(right)`` from the sides'
    occurrence-level posteriors — never touching ground-truth labels —
    and accumulates expected good/bad counts incrementally.
    """

    def __init__(
        self,
        side1: TuplePosterior,
        side2: TuplePosterior,
    ) -> None:
        self.side1 = side1
        self.side2 = side2
        self._cursor = 0
        self._good = 0.0

    def estimate(self, state: JoinState) -> Tuple[float, float]:
        fresh = state.results_since(self._cursor)
        self._cursor += len(fresh)
        for joined in fresh:
            p1 = self.side1(joined.left.confidence)
            p2 = self.side2(joined.right.confidence)
            self._good += p1 * p2
        total = float(self._cursor)
        return self._good, total - self._good


@dataclass(frozen=True)
class PilotWarmStart:
    """Prior pilot state from an earlier run over the *same* corpus.

    ``snapshot`` is a :func:`~repro.robustness.checkpoint.checkpoint_execution`
    dict of the earlier run's final pilot executor (an IDJN Scan/Scan at the
    pilot θ); ``documents`` its per-side pilot size after any
    cross-validation doubling; ``rounds`` how many estimate→optimize rounds
    it took to converge.  Restoring the snapshot replays those documents'
    observations without touching the databases — the scan order is
    deterministic, so for an unchanged corpus the restored pilot is exactly
    what re-running it would observe.  Persistence and freshness checking
    (corpus fingerprints, sample-count confidence) live in
    :mod:`repro.service.store`; the driver trusts what it is handed.
    """

    snapshot: Dict[str, Any]
    documents: int
    rounds: int = 1


@dataclass
class AdaptiveResult:
    """Everything an adaptive run produced."""

    requirement: QualityRequirement
    chosen: Optional[PlanEvaluation]
    optimization: Optional[OptimizationResult]
    execution: Optional[JoinExecution]
    pilot: JoinExecution
    estimates: Tuple[SideEstimate, SideEstimate]
    rounds: int
    #: number of mid-flight plan switches (0 without reoptimization points)
    plan_switches: int = 0
    #: access paths whose circuit breaker opened mid-run, in the order the
    #: optimizer degraded around them (empty = no degradation happened)
    degraded_paths: Tuple[str, ...] = ()
    #: simulated seconds spent inside executors that later hit a dead
    #: access path; carried into the final report's time (accounted, not
    #: dropped), surfaced here so degraded runs can be audited
    wasted_time: float = 0.0
    #: whether the pilot was warm-started from stored prior state
    warm_started: bool = False
    #: documents the pilot actually pulled from the databases *this run*
    #: (restored documents are excluded) — the number a warm start saves
    pilot_fresh_documents: int = 0
    #: final per-side pilot size (after any cross-validation doubling)
    pilot_size: int = 0
    #: checkpoint of the final pilot executor, captured when the driver
    #: was built with ``snapshot_pilot=True`` so callers (the service's
    #: statistics store) can warm-start later runs
    pilot_snapshot: Optional[Dict[str, Any]] = None

    @property
    def total_time(self) -> float:
        time = self.pilot.report.time.total
        if self.execution is not None:
            time += self.execution.report.time.total
        return time


class AdaptiveJoinExecutor:
    """Pilot → estimate → optimize → cross-validate → execute."""

    def __init__(
        self,
        environment: ExecutionEnvironment,
        characterization1: KnobCharacterization,
        characterization2: KnobCharacterization,
        plans: Sequence[JoinPlanSpec],
        pilot_theta: float = 0.4,
        pilot_documents: int = 100,
        max_rounds: int = 3,
        cross_validate: bool = True,
        classifier_profile1=None,
        classifier_profile2=None,
        query_stats1=(),
        query_stats2=(),
        feasibility_margin: float = 0.15,
        reoptimization_points: Sequence[float] = (),
        warm_start: Optional[PilotWarmStart] = None,
        snapshot_pilot: bool = False,
    ) -> None:
        if pilot_documents <= 0:
            raise ValueError("pilot_documents must be positive")
        self.environment = environment
        #: shared tracing/metrics/drift context, taken from the environment
        #: so executors, optimizers, and the driver report into one place
        self.observability = ensure_observability(environment.observability)
        self.characterizations = {1: characterization1, 2: characterization2}
        self.plans = list(plans)
        self.pilot_theta = pilot_theta
        self.pilot_documents = pilot_documents
        self.max_rounds = max_rounds
        self.cross_validate = cross_validate
        #: Offline (label-free) retrieval-strategy parameters: classifier
        #: rates from the training corpus, query precision from training
        #: with observable target hit counts (Section VI: these are
        #: "easily estimated in a pre-execution, offline step").
        self.classifier_profiles = {1: classifier_profile1, 2: classifier_profile2}
        self.query_stats = {1: tuple(query_stats1), 2: tuple(query_stats2)}
        self.feasibility_margin = feasibility_margin
        #: Mid-flight re-optimization milestones as fractions of the good
        #: target, e.g. (0.3, 0.6): after reaching each milestone the
        #: optimizer re-estimates from everything observed so far and may
        #: switch plans, carrying the produced tuples forward ("build on
        #: the current execution with a different join execution plan").
        points = tuple(sorted(reoptimization_points))
        if any(not 0.0 < point < 1.0 for point in points):
            raise ValueError("reoptimization points must lie in (0, 1)")
        self.reoptimization_points = points
        #: how many opened access paths the executor will degrade around
        #: before giving up and propagating :class:`AccessPathUnavailable`
        self.max_degradations = 4
        #: prior pilot state to resume from instead of scanning afresh
        self.warm_start = warm_start
        #: capture the final pilot executor's checkpoint on the result
        self.snapshot_pilot = snapshot_pilot
        #: live documents pulled during pilots this run (restored excluded)
        self._pilot_fresh_documents = 0

    # -- deadlines -------------------------------------------------------------

    def _deadline(self) -> Optional[Deadline]:
        """The request deadline riding on the environment's resilience
        context (installed by the serving layer), or None."""
        resilience = self.environment.resilience
        if resilience is None:
            return None
        return getattr(resilience, "deadline", None)

    def _check_deadline(self, where: str) -> None:
        """Phase-boundary deadline check (CPU-bound phases issue no
        database accesses, so the per-access check never fires there)."""
        deadline = self._deadline()
        if deadline is not None:
            deadline.check(where)

    def _attach_partial(
        self,
        error: DeadlineExceeded,
        phase: str,
        executor: JoinAlgorithm,
        plan: Optional[str] = None,
    ) -> None:
        """Describe the interrupted executor on the unwinding exception.

        Captures a resumable checkpoint when the executor's shape
        supports one; checkpoint failure must never mask the deadline
        error itself.
        """
        snapshot: Optional[Dict[str, Any]] = None
        try:
            snapshot = checkpoint_execution(executor)
        except Exception:  # noqa: BLE001 — best-effort capture only
            snapshot = None
        session = executor.session
        composition = session.state.composition
        error.attach(
            phase,
            plan=plan,
            good=composition.n_good,
            bad=composition.n_bad,
            results=len(session.state),
            documents_processed={
                str(side): session.collector.side(side).documents_processed
                for side in (1, 2)
            },
            simulated_time=round(session.time.total, 6),
            checkpoint=snapshot,
        )

    # -- pilot ----------------------------------------------------------------

    def _pilot_executor(self) -> IndependentJoin:
        env = self.environment
        inputs = JoinInputs(
            database1=env.database1,
            database2=env.database2,
            extractor1=env.extractor_at(1, self.pilot_theta),
            extractor2=env.extractor_at(2, self.pilot_theta),
            join_attribute=env.join_attribute,
        )
        return IndependentJoin(
            inputs,
            retriever1=ScanRetriever(
                env.database1,
                resilience=env.resilience,
                observability=env.observability,
            ),
            retriever2=ScanRetriever(
                env.database2,
                resilience=env.resilience,
                observability=env.observability,
            ),
            costs=env.costs,
            resilience=env.resilience,
            observability=env.observability,
        )

    def _run_pilot(
        self, documents: int, executor: Optional[IndependentJoin] = None
    ) -> Tuple[JoinExecution, IndependentJoin]:
        """Run (or resume) a pilot to *documents* processed per side.

        Budgets are absolute session totals, so resuming a restored
        executor whose session already covers *documents* touches no
        database at all — that boundary case is exactly a fully-warm
        start.  Fresh documents pulled live are tallied separately from
        whatever a warm start restored.
        """
        pilot = executor if executor is not None else self._pilot_executor()
        before = sum(
            pilot.session.collector.side(side).documents_processed
            for side in (1, 2)
        )
        try:
            with self.observability.phase("pilot"), self.observability.span(
                SpanKind.PILOT, "pilot", documents=documents, resumed=before > 0
            ):
                execution = pilot.run(
                    budgets=Budgets(
                        max_documents1=documents, max_documents2=documents
                    )
                )
        except DeadlineExceeded as expired:
            after = sum(
                pilot.session.collector.side(side).documents_processed
                for side in (1, 2)
            )
            self._pilot_fresh_documents += after - before
            self._attach_partial(expired, "pilot", pilot)
            raise
        after = sum(
            pilot.session.collector.side(side).documents_processed
            for side in (1, 2)
        )
        self._pilot_fresh_documents += after - before
        return execution, pilot

    def _warm_pilot(
        self, warm: PilotWarmStart
    ) -> Tuple[JoinExecution, IndependentJoin, int]:
        """Restore the stored pilot and top it up to the configured size.

        The snapshot carries retriever positions, so when this run's
        ``pilot_documents`` exceeds the stored size the scan resumes
        *after* the stored prefix — the fresh accesses and the restored
        observations never overlap, and the merged result equals a cold
        pilot of the larger size document-for-document.
        """
        executor = self._pilot_executor()
        restore_execution(executor, warm.snapshot)
        documents = max(self.pilot_documents, warm.documents)
        execution, executor = self._run_pilot(documents, executor=executor)
        return execution, executor, documents

    # -- estimation -------------------------------------------------------------

    def _estimate_sides(
        self, pilot: JoinExecution
    ) -> Tuple[SideEstimate, SideEstimate]:
        estimates = []
        for side in (1, 2):
            observations = pilot.observations.side(side)
            database = self.environment.database(side)
            char = self.characterizations[side]
            context = ObservationContext(
                database_size=len(database),
                coverage=max(
                    observations.documents_processed / len(database), 1e-6
                ),
                tp=char.tp_at(self.pilot_theta),
                fp=char.fp_at(self.pilot_theta),
                theta=self.pilot_theta,
            )
            with self.observability.phase("estimate"), self.observability.span(
                SpanKind.MLE_REFIT,
                f"mle.side{side}",
                side=side,
                documents=observations.documents_processed,
                distinct_values=observations.distinct_values,
            ):
                estimates.append(
                    estimate_side(
                        observations,
                        context,
                        reference=char.confidences,
                        top_k=database.max_results,
                    )
                )
        return estimates[0], estimates[1]

    def _catalog(
        self,
        estimate1: SideEstimate,
        estimate2: SideEstimate,
        observations1: RelationObservations,
        observations2: RelationObservations,
    ) -> StatisticsCatalog:
        overlap = estimate_overlap(
            estimate1, estimate2, observations1, observations2
        )

        def builder(side: int, estimate: SideEstimate):
            database = self.environment.database(side)
            char = self.characterizations[side]
            parameters = estimate.parameters

            def build(theta: float) -> SideStatistics:
                n_good_docs = int(
                    min(round(parameters.n_good_docs), len(database))
                )
                n_bad_docs = int(
                    min(
                        round(parameters.n_bad_docs),
                        len(database) - n_good_docs,
                    )
                )
                return SideStatistics.from_histograms(
                    relation=parameters.relation,
                    n_documents=len(database),
                    n_good_docs=n_good_docs,
                    n_bad_docs=n_bad_docs,
                    good_histogram=parameters.good_histogram(),
                    bad_histogram=parameters.bad_histogram(),
                    tp=char.tp_at(theta),
                    fp=char.fp_at(theta),
                    top_k=database.max_results,
                    value_prefix=f"{parameters.relation}:",
                )

            return build

        return StatisticsCatalog(
            side_builder1=builder(1, estimate1),
            side_builder2=builder(2, estimate2),
            classifier1=self.classifier_profiles[1],
            classifier2=self.classifier_profiles[2],
            queries1=self.query_stats[1],
            queries2=self.query_stats[2],
            overlap=overlap,
            per_value=False,
        )

    # -- cross-validation ---------------------------------------------------------

    @staticmethod
    def _halve(
        observations: RelationObservations, parity: int
    ) -> RelationObservations:
        """One value-hash half of the observations (counts rescaled ×2
        downstream by doubling estimated populations).

        The split uses a *stable* hash: Python's built-in ``hash`` is
        salted per process, which would make cross-validation outcomes
        nondeterministic across runs.
        """
        import zlib

        half = RelationObservations(
            relation=observations.relation,
            attribute_index=observations.attribute_index,
        )
        half.documents_processed = observations.documents_processed
        half.productive_documents = observations.productive_documents
        half.unproductive_documents = observations.unproductive_documents
        half.tuples_per_document.update(observations.tuples_per_document)
        for value, count in observations.sample_frequency.items():
            if zlib.crc32(value.encode()) % 2 == parity:
                half.sample_frequency[value] = count
                if value in observations.value_confidences:
                    half.value_confidences[value] = list(
                        observations.value_confidences[value]
                    )
        return half

    def _stable_choice(
        self,
        pilot: JoinExecution,
        requirement: QualityRequirement,
        chosen_plan: JoinPlanSpec,
    ) -> bool:
        """Do value-split halves agree with the full fit's plan choice?"""
        with self.observability.phase("crossvalidate"), self.observability.span(
            SpanKind.CROSS_VALIDATE,
            "crossvalidate",
            plan=chosen_plan.describe(),
        ) as span:
            stable = self._stable_choice_inner(requirement, chosen_plan, pilot)
            span.set(stable=stable)
        return stable

    def _stable_choice_inner(
        self,
        requirement: QualityRequirement,
        chosen_plan: JoinPlanSpec,
        pilot: JoinExecution,
    ) -> bool:
        for parity in (0, 1):
            halves = []
            for side in (1, 2):
                half = self._halve(pilot.observations.side(side), parity)
                if not half.sample_frequency:
                    return False
                halves.append(half)
            # Rebuild estimates from the halves, doubling populations.
            estimates = []
            for side, half in zip((1, 2), halves):
                database = self.environment.database(side)
                char = self.characterizations[side]
                context = ObservationContext(
                    database_size=len(database),
                    coverage=max(
                        half.documents_processed / len(database), 1e-6
                    ),
                    tp=char.tp_at(self.pilot_theta),
                    fp=char.fp_at(self.pilot_theta),
                    theta=self.pilot_theta,
                )
                estimate = estimate_side(
                    half,
                    context,
                    reference=char.confidences,
                    top_k=database.max_results,
                )
                doubled = dataclasses.replace(
                    estimate.parameters,
                    n_good_values=estimate.parameters.n_good_values * 2,
                    n_bad_values=estimate.parameters.n_bad_values * 2,
                )
                estimates.append(
                    dataclasses.replace(estimate, parameters=doubled)
                )
            catalog = self._catalog(
                estimates[0], estimates[1], halves[0], halves[1]
            )
            optimizer = JoinOptimizer(
                catalog,
                costs=self.environment.costs,
                feasibility_margin=self.feasibility_margin,
                prune=True,
            )
            result = optimizer.optimize(self.plans, requirement)
            if result.chosen is None or result.chosen.plan != chosen_plan:
                return False
        return True

    # -- drift telemetry --------------------------------------------------------

    def _record_drift(
        self,
        label: str,
        optimizer: JoinOptimizer,
        chosen: Optional[PlanEvaluation],
        execution: JoinExecution,
    ) -> None:
        """Snapshot predicted vs. observed join quality at one MLE refit.

        Observed counts come from the oracle composition of the live state
        (telemetry only — the estimators never read labels); predictions
        from the chosen evaluation's operating point, plus the engine's
        effort curve when one was built.
        """
        observability = self.observability
        if not observability.enabled:
            return
        composition = execution.state.composition
        documents = tuple(
            execution.observations.side(side).documents_processed
            for side in (1, 2)
        )
        if chosen is not None and chosen.prediction is not None:
            observability.record_drift(
                label=label,
                plan=chosen.plan.describe(),
                documents_processed=documents,
                observed_good=composition.n_good,
                observed_bad=composition.n_bad,
                predicted_good=chosen.prediction.n_good,
                predicted_bad=chosen.prediction.n_bad,
                predicted_time=chosen.predicted_time,
                effort_fraction=chosen.effort_fraction,
                curve=optimizer.curve_points(chosen.plan),
            )
        else:
            observability.record_drift(
                label=label,
                plan="",
                documents_processed=documents,
                observed_good=composition.n_good,
                observed_bad=composition.n_bad,
                predicted_good=0.0,
                predicted_bad=0.0,
            )

    # -- the driver -----------------------------------------------------------------

    def run(self, requirement: QualityRequirement) -> AdaptiveResult:
        self._pilot_fresh_documents = 0
        warm = self.warm_start
        if warm is not None:
            pilot, pilot_executor, documents = self._warm_pilot(warm)
            # Resume the round count where the stored run converged, so a
            # run that stopped on max_rounds does not restart its
            # cross-validation doubling from scratch.
            rounds = max(warm.rounds - 1, 0)
        else:
            documents = self.pilot_documents
            pilot, pilot_executor = self._run_pilot(documents)
            rounds = 0
        optimization: Optional[OptimizationResult] = None
        while True:
            rounds += 1
            try:
                # Estimation/optimization are CPU-bound (no database
                # accesses), so expiry during them surfaces here at the
                # round boundary with the pilot's state attached.
                self._check_deadline("adaptive.optimize")
            except DeadlineExceeded as expired:
                self._attach_partial(expired, "optimize", pilot_executor)
                raise
            estimate1, estimate2 = self._estimate_sides(pilot)
            catalog = self._catalog(
                estimate1,
                estimate2,
                pilot.observations.side(1),
                pilot.observations.side(2),
            )
            optimizer = JoinOptimizer(
                catalog,
                costs=self.environment.costs,
                feasibility_margin=self.feasibility_margin,
                observability=self.environment.observability,
                prune=True,
            )
            with self.observability.phase("optimize"):
                optimization = optimizer.optimize(self.plans, requirement)
            self._record_drift(
                f"pilot-round-{rounds}", optimizer, optimization.chosen, pilot
            )
            if optimization.chosen is None:
                break
            if not self.cross_validate or rounds >= self.max_rounds:
                break
            if self._stable_choice(
                pilot, requirement, optimization.chosen.plan
            ):
                break
            documents *= 2
            pilot, pilot_executor = self._run_pilot(documents)
        pilot_snapshot = (
            checkpoint_execution(pilot_executor) if self.snapshot_pilot else None
        )
        if optimization is None or optimization.chosen is None:
            return AdaptiveResult(
                requirement=requirement,
                chosen=None,
                optimization=optimization,
                execution=None,
                pilot=pilot,
                estimates=(estimate1, estimate2),
                rounds=rounds,
                warm_started=warm is not None,
                pilot_fresh_documents=self._pilot_fresh_documents,
                pilot_size=documents,
                pilot_snapshot=pilot_snapshot,
            )
        chosen = optimization.chosen
        # Drive the estimated-quality stopping condition to the same
        # overprovisioned target the optimizer planned for; posteriors are
        # noisy and an exactly-τg stop routinely lands just short.
        target_good = int(
            math.ceil(requirement.tau_good * (1.0 + self.feasibility_margin))
        )
        execution, chosen, switches, degraded, wasted = self._execute(
            requirement, target_good, chosen, (estimate1, estimate2), pilot
        )
        return AdaptiveResult(
            requirement=requirement,
            chosen=chosen,
            optimization=optimization,
            execution=execution,
            pilot=pilot,
            estimates=(estimate1, estimate2),
            rounds=rounds,
            plan_switches=switches,
            degraded_paths=tuple(degraded),
            wasted_time=wasted,
            warm_started=warm is not None,
            pilot_fresh_documents=self._pilot_fresh_documents,
            pilot_size=documents,
            pilot_snapshot=pilot_snapshot,
        )

    # -- execution (with optional mid-flight re-optimization) -------------------

    def _build_executor(self, plan, estimates):
        estimate1, estimate2 = estimates
        estimator = PosteriorQuality(
            side1=TuplePosterior(
                self.characterizations[1].confidences,
                estimate1.parameters.good_occurrence_share,
                theta=plan.extractor1.theta,
            ),
            side2=TuplePosterior(
                self.characterizations[2].confidences,
                estimate2.parameters.good_occurrence_share,
                theta=plan.extractor2.theta,
            ),
        )
        return bind_plan(self.environment, plan, estimator=estimator)

    def _reestimate_with_execution(self, pilot, execution):
        """Re-fit the statistics from pilot + execution observations."""
        merged = []
        for side in (1, 2):
            combined = RelationObservations(
                relation=pilot.observations.side(side).relation,
                attribute_index=pilot.observations.side(side).attribute_index,
            )
            for source in (pilot, execution):
                observations = source.observations.side(side)
                combined.documents_processed += observations.documents_processed
                combined.productive_documents += observations.productive_documents
                combined.unproductive_documents += (
                    observations.unproductive_documents
                )
                combined.tuples_per_document.update(
                    observations.tuples_per_document
                )
                for value, count in observations.sample_frequency.items():
                    combined.sample_frequency[value] += count
                for value, confs in observations.value_confidences.items():
                    combined.value_confidences.setdefault(value, []).extend(
                        confs
                    )
            merged.append(combined)
        estimates = []
        for side, observations in zip((1, 2), merged):
            database = self.environment.database(side)
            char = self.characterizations[side]
            context = ObservationContext(
                database_size=len(database),
                coverage=min(
                    max(observations.documents_processed / len(database), 1e-6),
                    1.0,
                ),
                tp=char.tp_at(self.pilot_theta),
                fp=char.fp_at(self.pilot_theta),
                theta=self.pilot_theta,
            )
            with self.observability.phase("estimate"), self.observability.span(
                SpanKind.MLE_REFIT,
                f"mle.side{side}",
                side=side,
                documents=observations.documents_processed,
                distinct_values=observations.distinct_values,
            ):
                estimates.append(
                    estimate_side(
                        observations,
                        context,
                        reference=char.confidences,
                        top_k=database.max_results,
                    )
                )
        return (estimates[0], estimates[1]), merged

    def _side_of_path(self, path: str) -> int:
        """Which join side an access path belongs to (by database name)."""
        name, _ = split_path(path)
        if name == self.environment.database1.name:
            return 1
        if name == self.environment.database2.name:
            return 2
        raise ValueError(f"access path {path!r} matches neither database")

    def _reoptimize(self, plans, requirement, estimates, pilot):
        """Optimize *plans* under the current estimates.

        Returns ``(result, optimizer)`` — the optimizer is kept so drift
        telemetry can attach the chosen plan's predicted effort curve.
        """
        catalog = self._catalog(
            estimates[0],
            estimates[1],
            pilot.observations.side(1),
            pilot.observations.side(2),
        )
        optimizer = JoinOptimizer(
            catalog,
            costs=self.environment.costs,
            feasibility_margin=self.feasibility_margin,
            observability=self.environment.observability,
            prune=True,
        )
        with self.observability.phase("optimize"), self.observability.span(
            SpanKind.REOPTIMIZE, "reoptimize", plans=len(plans)
        ):
            result = optimizer.optimize(plans, requirement)
        return result, optimizer

    def _carry_over(self, old_executor, chosen, estimates):
        """Bind *chosen* and move the old executor's tuples and time into it.

        This is the Section VI "build on the current execution" option:
        nothing already extracted is re-paid, and the old executor's
        simulated time flows into the new session so the final report
        accounts for every second spent.
        """
        old_state = old_executor.session.state
        old_time = old_executor.session.time
        executor = self._build_executor(chosen.plan, estimates)
        executor.session.state.add_left(list(old_state.left))
        executor.session.state.add_right(list(old_state.right))
        executor.session.time.add(old_time)
        return executor

    def _execute(self, requirement, target_good, chosen, estimates, pilot):
        """Run the chosen plan, optionally re-optimizing at milestones.

        Returns (final execution, final evaluation, number of plan
        switches, degraded access paths, wasted time).  On a switch, the
        produced base tuples are carried into the new plan's executor —
        the Section VI "build on the current execution" option.

        When a circuit breaker opens (an executor raises
        :class:`AccessPathUnavailable`), the optimizer *degrades*: it
        drops every plan that needs the dead path, re-optimizes over the
        survivors, and resumes from the tuples already produced.  The time
        spent inside the failed executor is carried into the replacement
        (and reported as ``wasted_time``), so degradation never makes a
        run look cheaper than it was.
        """
        executor = self._build_executor(chosen.plan, estimates)
        switches = 0
        degraded: List[str] = []
        wasted = 0.0
        plans = list(self.plans)
        milestones = [
            max(1, int(math.ceil(point * target_good)))
            for point in self.reoptimization_points
        ] + [target_good]
        execution = None
        index = 0
        while index < len(milestones):
            milestone = milestones[index]
            partial = QualityRequirement(
                tau_good=milestone, tau_bad=requirement.tau_bad
            )
            try:
                with self.observability.phase(
                    "execute"
                ), self.observability.span(
                    SpanKind.EXECUTE,
                    f"execute.{chosen.plan.join.value.lower()}",
                    plan=chosen.plan.describe(),
                    milestone=milestone,
                ):
                    execution = executor.run(
                        requirement=partial,
                        budgets=budgets_from_evaluation(
                            chosen.plan, chosen, slack=3.0
                        ),
                    )
            except DeadlineExceeded as expired:
                self._attach_partial(
                    expired, "execute", executor, plan=chosen.plan.describe()
                )
                raise
            except AccessPathUnavailable as failure:
                if len(degraded) >= self.max_degradations:
                    raise
                side = self._side_of_path(failure.path)
                _, operation = split_path(failure.path)
                plans = surviving_plans(plans, side, operation)
                result = None
                if plans:
                    result, _ = self._reoptimize(
                        plans, requirement, estimates, pilot
                    )
                if result is None or result.chosen is None:
                    raise
                degraded.append(failure.path)
                wasted += executor.session.time.total
                chosen = result.chosen
                executor = self._carry_over(executor, chosen, estimates)
                continue  # retry the same milestone on the new plan
            index += 1
            if milestone >= target_good:
                break
            # Re-estimate from everything observed, re-optimize the rest.
            new_estimates, _ = self._reestimate_with_execution(pilot, execution)
            result, optimizer = self._reoptimize(
                plans, requirement, new_estimates, pilot
            )
            self._record_drift(
                f"milestone-{milestone}", optimizer, result.chosen, execution
            )
            if result.chosen is None or result.chosen.plan == chosen.plan:
                continue
            # Switch: bind the new plan and carry the produced tuples over.
            switches += 1
            chosen = result.chosen
            estimates = new_estimates
            executor = self._carry_over(executor, chosen, estimates)
        return execution, chosen, switches, degraded, wasted
