"""Analytical model of the Independent Join (Section V-C).

IDJN extracts the two relations independently, so each side's expected
occurrence factors depend only on its own retrieval model and extractor
operating point; the join composition is the Section V-B scheme applied to
the two factor sets, and execution time is the sum of both sides' billable
events:

    Time = Σ_i |Dr_i|·(tR + tE)  (+ |Dr_i|·tF for FS, + |Qs_i|·tQ for AQG).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..core.plan import RetrievalKind
from ..joins.costs import CostModel
from .kernels import compose_aggregate_arrays, composition_kernel, side_kernel
from .parameters import JoinStatistics, ValueOverlapModel
from .predictions import QualityPrediction, charge_events
from .retrieval_models import RetrievalModel, build_retrieval_model
from .scheme import (
    CompositionEstimate,
    SideFactors,
    compose_aggregate,
    compose_per_value,
    occurrence_factors,
)
from .uncertainty import (
    IntervalEstimate,
    compose_with_variance,
    occurrence_variances,
)


class IDJNModel:
    """Predicts output quality and time of IDJN plans.

    ``per_value=True`` (default) composes over actual value identities —
    the ground-truth mode of the Figure 9 accuracy experiments.  With
    ``per_value=False`` the model runs in aggregate (estimated-statistics)
    mode: the overlap-class counts must then be supplied.
    """

    def __init__(
        self,
        statistics: JoinStatistics,
        retrieval1: RetrievalKind,
        retrieval2: RetrievalKind,
        costs: Optional[CostModel] = None,
        per_value: bool = True,
        overlap: Optional[ValueOverlapModel] = None,
        vectorized: bool = True,
    ) -> None:
        self.statistics = statistics
        self.costs = costs or CostModel()
        self.per_value = per_value
        #: ``True`` composes via the array kernels of
        #: :mod:`repro.models.kernels`; ``False`` walks the scalar
        #: reference scheme.  Both agree within 1e-9 (golden-tested).
        self.vectorized = vectorized
        self.models: Dict[int, RetrievalModel] = {
            i: build_retrieval_model(
                kind,
                statistics.side(i),
                classifier=statistics.classifier(i),
                queries=statistics.queries(i),
            )
            for i, kind in ((1, retrieval1), (2, retrieval2))
        }
        if per_value:
            self.overlap = None
        else:
            self.overlap = overlap or ValueOverlapModel.from_side_values(
                statistics.side1, statistics.side2
            )

    def max_effort(self, side: int) -> int:
        return self.models[side].max_effort

    def side_factors(self, side: int, effort: float) -> SideFactors:
        model = self.models[side]
        return occurrence_factors(
            self.statistics.side(side),
            rho_good=model.good_fraction_processed(effort),
            rho_bad=model.bad_fraction_processed(effort),
        )

    def _compose_vectorized(
        self, effort1: float, effort2: float
    ) -> CompositionEstimate:
        """Kernel composition: both sides' factors are coverage-separable."""
        side1, side2 = self.statistics.side1, self.statistics.side2
        rho = {}
        for index in (1, 2):
            model = self.models[index]
            effort = effort1 if index == 1 else effort2
            rho[index] = (
                model.good_fraction_processed(effort),
                model.bad_fraction_processed(effort),
            )
        if self.per_value:
            kernel = composition_kernel(side1, side2)
            return kernel.compose_coverage(
                rho[1][0], rho[1][1], rho[2][0], rho[2][1]
            )
        k1, k2 = side_kernel(side1), side_kernel(side2)
        return compose_aggregate_arrays(
            k1.good_factors(rho[1][0]),
            k1.bad_factors(rho[1][0], rho[1][1]),
            k2.good_factors(rho[2][0]),
            k2.bad_factors(rho[2][0], rho[2][1]),
            self.overlap,
        )

    def predict(self, effort1: float, effort2: float) -> QualityPrediction:
        """Expected join composition and time at the given efforts."""
        if self.vectorized:
            composition = self._compose_vectorized(effort1, effort2)
        else:
            factors1 = self.side_factors(1, effort1)
            factors2 = self.side_factors(2, effort2)
            if self.per_value:
                composition = compose_per_value(factors1, factors2)
            else:
                composition = compose_aggregate(
                    factors1, factors2, self.overlap
                )
        events = {
            1: self.models[1].events(effort1),
            2: self.models[2].events(effort2),
        }
        return QualityPrediction(
            composition=composition,
            time=charge_events(events, self.costs),
            efforts={1: effort1, 2: effort2},
            events=events,
        )

    def sweep(
        self, efforts: Sequence[Tuple[float, float]]
    ) -> Dict[Tuple[float, float], QualityPrediction]:
        """Predictions over a list of (effort1, effort2) operating points."""
        return {pair: self.predict(*pair) for pair in efforts}

    def predict_interval(
        self, effort1: float, effort2: float, z: float = 1.96
    ) -> Tuple[IntervalEstimate, IntervalEstimate]:
        """(good, bad) interval estimates at the given operating point.

        Normal-approximation confidence intervals from the per-value
        binomial variance model (:mod:`repro.models.uncertainty`); only
        meaningful in per-value mode, where value identities are known.
        """
        if not self.per_value:
            raise RuntimeError(
                "interval prediction needs per-value statistics"
            )
        pieces = []
        for side_index, effort in ((1, effort1), (2, effort2)):
            model = self.models[side_index]
            side = self.statistics.side(side_index)
            rho_good = model.good_fraction_processed(effort)
            rho_bad = model.bad_fraction_processed(effort)
            pieces.append(
                (
                    occurrence_factors(side, rho_good, rho_bad),
                    occurrence_variances(side, rho_good, rho_bad),
                )
            )
        (factors1, variances1), (factors2, variances2) = pieces
        return compose_with_variance(
            factors1, variances1, factors2, variances2, z=z
        )
