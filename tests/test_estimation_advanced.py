"""Deeper estimation tests: channel round-trips, split quality, reports."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimation import PowerLawModel, estimate_parameters
from repro.estimation.mle import ObservationContext, _fit_single_class
from repro.joins.stats_collector import RelationObservations


class TestSingleClassChannelRoundTrip:
    """Generate s(a) from a known (N, β, p_obs); the class fit must
    recover the population size and exponent."""

    @pytest.mark.parametrize("beta,p_obs", [(0.8, 0.5), (1.4, 0.3), (1.0, 0.7)])
    def test_recovery(self, beta, p_obs):
        rng = np.random.default_rng(11)
        law = PowerLawModel(beta=beta, k_max=60)
        n_values = 400
        frequencies = rng.choice(
            law.support(), size=n_values, p=law.pmf()
        )
        observed = rng.binomial(frequencies, p_obs)
        histogram = {}
        for s in observed:
            if s > 0:
                histogram[int(s)] = histogram.get(int(s), 0) + 1
        s_values = np.array(sorted(histogram), dtype=int)
        weights = np.array([histogram[int(s)] for s in s_values], dtype=float)
        fitted_beta, fitted_n, _ = _fit_single_class(
            s_values,
            weights,
            p_obs,
            k_max=60,
            beta_grid=np.linspace(0.2, 2.6, 25),
        )
        assert fitted_beta == pytest.approx(beta, abs=0.45)
        assert fitted_n == pytest.approx(n_values, rel=0.35)

    @given(st.floats(0.5, 1.8), st.floats(0.25, 0.9))
    @settings(max_examples=10, deadline=None)
    def test_recovery_property(self, beta, p_obs):
        rng = np.random.default_rng(5)
        law = PowerLawModel(beta=beta, k_max=40)
        frequencies = rng.choice(law.support(), size=500, p=law.pmf())
        observed = rng.binomial(frequencies, p_obs)
        histogram = {}
        for s in observed:
            if s > 0:
                histogram[int(s)] = histogram.get(int(s), 0) + 1
        if not histogram:
            return
        s_values = np.array(sorted(histogram), dtype=int)
        weights = np.array([histogram[int(s)] for s in s_values], dtype=float)
        _, fitted_n, _ = _fit_single_class(
            s_values, weights, p_obs, 40, np.linspace(0.2, 2.6, 13)
        )
        assert 500 / 2.5 <= fitted_n <= 500 * 2.5


class TestConfidenceSplitBeatsBlind:
    def test_split_quality(
        self, mini_db1, mini_db2, mini_extractor1, mini_extractor2,
        mini_char1, mini_profile1,
    ):
        """With the confidence reference, the fitted good-occurrence share
        is markedly closer to truth than the blind mixture's."""
        from repro.joins import Budgets, IndependentJoin, JoinInputs
        from repro.retrieval import ScanRetriever

        inputs = JoinInputs(
            database1=mini_db1,
            database2=mini_db2,
            extractor1=mini_extractor1,
            extractor2=mini_extractor2,
        )
        pilot = IndependentJoin(
            inputs, ScanRetriever(mini_db1), ScanRetriever(mini_db2)
        ).run(budgets=Budgets(max_documents1=180, max_documents2=20))
        observations = pilot.observations.side(1)
        context = ObservationContext(
            database_size=len(mini_db1),
            coverage=observations.documents_processed / len(mini_db1),
            tp=mini_char1.tp_at(0.4),
            fp=mini_char1.fp_at(0.4),
            theta=0.4,
        )
        informed = estimate_parameters(
            observations, context, reference=mini_char1.confidences
        )
        blind = estimate_parameters(observations, context, reference=None)
        truth = mini_profile1.n_good_occurrences / (
            mini_profile1.n_good_occurrences + mini_profile1.n_bad_occurrences
        )
        informed_error = abs(informed.good_occurrence_share - truth)
        blind_error = abs(blind.good_occurrence_share - truth)
        assert informed_error <= blind_error + 0.05
        assert informed_error < 0.2


class TestObservationsMerging:
    def test_growing_pilot_monotone_observations(
        self, mini_db1, mini_db2, mini_extractor1, mini_extractor2
    ):
        from repro.joins import Budgets, IndependentJoin, JoinInputs
        from repro.retrieval import ScanRetriever

        inputs = JoinInputs(
            database1=mini_db1,
            database2=mini_db2,
            extractor1=mini_extractor1,
            extractor2=mini_extractor2,
        )
        join = IndependentJoin(
            inputs, ScanRetriever(mini_db1), ScanRetriever(mini_db2)
        )
        join.run(budgets=Budgets(max_documents1=40, max_documents2=40))
        first = join.session.collector.side(1).distinct_values
        join.run(budgets=Budgets(max_documents1=120, max_documents2=120))
        second = join.session.collector.side(1).distinct_values
        assert second >= first
