"""Core types: tuples, relations, join composition, plans, preferences.

This package implements the paper's Section III machinery — the vocabulary
every other subsystem (extraction, retrieval, joins, models, optimizer)
speaks.
"""

from .plan import (
    ExtractorConfig,
    JoinKind,
    JoinPlanSpec,
    RetrievalKind,
    idjn_plan,
    oijn_plan,
    zgjn_plan,
)
from .preferences import (
    QualityRequirement,
    requirement_from_precision,
    requirement_from_recall,
)
from .quality import ExecutionReport, QualityMetrics, TimeBreakdown
from .relation import (
    ExtractedRelation,
    JoinComposition,
    JoinState,
    ValueOverlap,
    compose_join,
)
from .types import (
    DocumentClass,
    ExtractedTuple,
    Fact,
    JoinTuple,
    RelationSchema,
    TupleLabel,
)

__all__ = [
    "DocumentClass",
    "ExecutionReport",
    "ExtractedRelation",
    "ExtractedTuple",
    "ExtractorConfig",
    "Fact",
    "JoinComposition",
    "JoinKind",
    "JoinPlanSpec",
    "JoinState",
    "JoinTuple",
    "QualityMetrics",
    "QualityRequirement",
    "RelationSchema",
    "RetrievalKind",
    "TimeBreakdown",
    "TupleLabel",
    "ValueOverlap",
    "compose_join",
    "idjn_plan",
    "oijn_plan",
    "requirement_from_precision",
    "requirement_from_recall",
    "zgjn_plan",
]
