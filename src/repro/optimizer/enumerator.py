"""Join-plan space enumeration.

Generates the candidate plan space of Section VII: per relation, each knob
setting is combined with each document retrieval strategy, and the
single-relation configurations are composed under the three join
algorithms (IDJN uses explicit strategies on both sides; OIJN an explicit
strategy on its outer side only; ZGJN none).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..core.plan import (
    ExtractorConfig,
    JoinPlanSpec,
    RetrievalKind,
    idjn_plan,
    oijn_plan,
    zgjn_plan,
)

EXPLICIT_KINDS: Tuple[RetrievalKind, ...] = (
    RetrievalKind.SCAN,
    RetrievalKind.FILTERED_SCAN,
    RetrievalKind.AQG,
)


def enumerate_plans(
    extractor1: str,
    extractor2: str,
    thetas1: Sequence[float] = (0.4, 0.8),
    thetas2: Sequence[float] = (0.4, 0.8),
    retrieval_kinds: Sequence[RetrievalKind] = EXPLICIT_KINDS,
    include_idjn: bool = True,
    include_oijn: bool = True,
    include_zgjn: bool = True,
    oijn_outer_sides: Sequence[int] = (1, 2),
) -> List[JoinPlanSpec]:
    """All candidate join execution plans over the configuration space."""
    plans: List[JoinPlanSpec] = []
    configs1 = [ExtractorConfig(extractor1, theta) for theta in thetas1]
    configs2 = [ExtractorConfig(extractor2, theta) for theta in thetas2]
    for e1 in configs1:
        for e2 in configs2:
            if include_idjn:
                for x1 in retrieval_kinds:
                    for x2 in retrieval_kinds:
                        plans.append(idjn_plan(e1, e2, x1, x2))
            if include_oijn:
                for outer in oijn_outer_sides:
                    for kind in retrieval_kinds:
                        plans.append(
                            oijn_plan(e1, e2, outer_retrieval=kind, outer=outer)
                        )
            if include_zgjn:
                plans.append(zgjn_plan(e1, e2))
    return plans
