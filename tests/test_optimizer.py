"""Tests for plan enumeration, evaluation, choice, and binding."""

import pytest

from repro.core import (
    ExtractorConfig,
    JoinKind,
    QualityRequirement,
    RetrievalKind,
    idjn_plan,
    oijn_plan,
    zgjn_plan,
)
from repro.joins import Budgets
from repro.optimizer import (
    JoinOptimizer,
    bind_plan,
    budgets_from_evaluation,
    enumerate_plans,
)
from repro.joins.idjn import IndependentJoin
from repro.joins.oijn import OuterInnerJoin
from repro.joins.zgjn import ZigZagJoin


class TestEnumeration:
    def test_full_space_size(self):
        plans = enumerate_plans("e1", "e2")
        # 4 θ-combos × (9 IDJN + 6 OIJN + 1 ZGJN) = 64
        assert len(plans) == 64

    def test_subsets(self):
        only_idjn = enumerate_plans(
            "e1", "e2", include_oijn=False, include_zgjn=False
        )
        assert len(only_idjn) == 36
        assert all(p.join is JoinKind.IDJN for p in only_idjn)

    def test_single_theta(self):
        plans = enumerate_plans("e1", "e2", thetas1=(0.4,), thetas2=(0.4,))
        assert len(plans) == 16

    def test_all_plans_valid_and_unique(self):
        plans = enumerate_plans("e1", "e2")
        assert len(set(plans)) == len(plans)


@pytest.fixture(scope="module")
def optimizer(hq_ex_task):
    return JoinOptimizer(hq_ex_task.catalog(), costs=hq_ex_task.costs)


@pytest.fixture(scope="module")
def plans(hq_ex_task):
    return enumerate_plans(
        hq_ex_task.extractor1.name, hq_ex_task.extractor2.name
    )


class TestEvaluation:
    def test_trivial_requirement_feasible(self, optimizer, plans):
        result = optimizer.optimize(plans, QualityRequirement(1, 10**9))
        assert result.chosen is not None
        assert len(result.feasible) > len(plans) // 2

    def test_impossible_requirement_infeasible(self, optimizer, plans):
        result = optimizer.optimize(plans, QualityRequirement(10**9, 10**9))
        assert result.chosen is None
        assert not result.feasible

    def test_chosen_is_fastest_feasible(self, optimizer, plans):
        result = optimizer.optimize(plans, QualityRequirement(50, 10**6))
        assert result.chosen is not None
        for evaluation in result.feasible:
            assert result.chosen.predicted_time <= evaluation.predicted_time

    def test_effort_grows_with_requirement(self, optimizer, hq_ex_task):
        plan = idjn_plan(
            ExtractorConfig(hq_ex_task.extractor1.name, 0.4),
            ExtractorConfig(hq_ex_task.extractor2.name, 0.4),
            RetrievalKind.SCAN,
            RetrievalKind.SCAN,
        )
        small = optimizer.evaluate(plan, QualityRequirement(10, 10**9))
        large = optimizer.evaluate(plan, QualityRequirement(500, 10**9))
        assert small.feasible and large.feasible
        assert small.effort_fraction < large.effort_fraction
        assert small.predicted_time < large.predicted_time

    def test_bad_bound_rejects_dirty_plans(self, optimizer, hq_ex_task):
        plan = idjn_plan(
            ExtractorConfig(hq_ex_task.extractor1.name, 0.4),
            ExtractorConfig(hq_ex_task.extractor2.name, 0.4),
            RetrievalKind.SCAN,
            RetrievalKind.SCAN,
        )
        tolerant = optimizer.evaluate(plan, QualityRequirement(100, 10**9))
        strict = optimizer.evaluate(plan, QualityRequirement(100, 1))
        assert tolerant.feasible
        assert not strict.feasible

    def test_high_theta_cleaner_but_smaller(self, optimizer, hq_ex_task):
        """θ=0.8 plans should predict fewer bad tuples at matched τg."""
        def plan_at(theta):
            return idjn_plan(
                ExtractorConfig(hq_ex_task.extractor1.name, theta),
                ExtractorConfig(hq_ex_task.extractor2.name, theta),
                RetrievalKind.SCAN,
                RetrievalKind.SCAN,
            )

        requirement = QualityRequirement(50, 10**9)
        low = optimizer.evaluate(plan_at(0.4), requirement)
        high = optimizer.evaluate(plan_at(0.8), requirement)
        assert low.feasible and high.feasible
        ratio_low = low.prediction.n_bad / max(low.prediction.n_good, 1)
        ratio_high = high.prediction.n_bad / max(high.prediction.n_good, 1)
        assert ratio_high < ratio_low

    def test_feasibility_margin_overprovisions(self, hq_ex_task, plans):
        base = JoinOptimizer(hq_ex_task.catalog(), costs=hq_ex_task.costs)
        cautious = JoinOptimizer(
            hq_ex_task.catalog(), costs=hq_ex_task.costs, feasibility_margin=0.5
        )
        requirement = QualityRequirement(100, 10**9)
        res_base = base.optimize(plans, requirement)
        res_cautious = cautious.optimize(plans, requirement)
        assert res_base.chosen is not None and res_cautious.chosen is not None
        assert (
            res_cautious.chosen.prediction.n_good
            >= res_base.chosen.prediction.n_good
        )

    def test_invalid_margin(self, hq_ex_task):
        with pytest.raises(ValueError):
            JoinOptimizer(hq_ex_task.catalog(), feasibility_margin=-0.1)


class TestBinder:
    def _configs(self, task):
        return (
            ExtractorConfig(task.extractor1.name, 0.4),
            ExtractorConfig(task.extractor2.name, 0.8),
        )

    def test_binds_idjn(self, hq_ex_task):
        e1, e2 = self._configs(hq_ex_task)
        plan = idjn_plan(e1, e2, RetrievalKind.FILTERED_SCAN, RetrievalKind.AQG)
        executor = bind_plan(hq_ex_task.environment(), plan)
        assert isinstance(executor, IndependentJoin)
        # θ configuration applied per side
        assert executor.inputs.extractor1.theta == 0.4
        assert executor.inputs.extractor2.theta == 0.8

    def test_binds_oijn(self, hq_ex_task):
        e1, e2 = self._configs(hq_ex_task)
        plan = oijn_plan(e1, e2, RetrievalKind.SCAN, outer=2)
        executor = bind_plan(hq_ex_task.environment(), plan)
        assert isinstance(executor, OuterInnerJoin)
        assert executor.outer == 2

    def test_binds_zgjn(self, hq_ex_task):
        e1, e2 = self._configs(hq_ex_task)
        executor = bind_plan(hq_ex_task.environment(), zgjn_plan(e1, e2))
        assert isinstance(executor, ZigZagJoin)

    def test_bound_plan_runs(self, hq_ex_task):
        e1, e2 = self._configs(hq_ex_task)
        plan = idjn_plan(e1, e2, RetrievalKind.SCAN, RetrievalKind.SCAN)
        executor = bind_plan(hq_ex_task.environment(), plan)
        execution = executor.run(
            budgets=Budgets(max_documents1=20, max_documents2=20)
        )
        assert execution.report.documents_processed[1] == 20

    def test_budgets_from_evaluation(self, optimizer, hq_ex_task):
        e1 = ExtractorConfig(hq_ex_task.extractor1.name, 0.4)
        e2 = ExtractorConfig(hq_ex_task.extractor2.name, 0.4)
        plan = idjn_plan(e1, e2, RetrievalKind.SCAN, RetrievalKind.AQG)
        evaluation = optimizer.evaluate(plan, QualityRequirement(50, 10**9))
        budgets = budgets_from_evaluation(plan, evaluation, slack=2.0)
        assert budgets.max_retrieved1 is not None
        assert budgets.max_queries2 is not None
        assert budgets.max_retrieved1 >= evaluation.prediction.events[1].retrieved

    def test_budgets_infeasible_plan_unbounded(self, optimizer, hq_ex_task):
        e1 = ExtractorConfig(hq_ex_task.extractor1.name, 0.4)
        e2 = ExtractorConfig(hq_ex_task.extractor2.name, 0.4)
        plan = idjn_plan(e1, e2, RetrievalKind.SCAN, RetrievalKind.SCAN)
        evaluation = optimizer.evaluate(plan, QualityRequirement(10**9, 0))
        budgets = budgets_from_evaluation(plan, evaluation)
        assert budgets.max_retrieved1 is None

    def test_invalid_slack(self, optimizer, hq_ex_task):
        e1 = ExtractorConfig(hq_ex_task.extractor1.name, 0.4)
        e2 = ExtractorConfig(hq_ex_task.extractor2.name, 0.4)
        plan = idjn_plan(e1, e2, RetrievalKind.SCAN, RetrievalKind.SCAN)
        evaluation = optimizer.evaluate(plan, QualityRequirement(5, 10**9))
        with pytest.raises(ValueError):
            budgets_from_evaluation(plan, evaluation, slack=0.5)


class TestTimeBudgetedOptimization:
    def test_respects_budget(self, optimizer, plans):
        result = optimizer.optimize_within_time(plans, time_budget=1500)
        assert result.chosen is not None
        assert result.chosen.prediction.total_time <= 1500 + 1e-6

    def test_larger_budget_never_worse(self, optimizer, plans):
        small = optimizer.optimize_within_time(plans, 800, precision_weight=0.3)
        large = optimizer.optimize_within_time(plans, 4000, precision_weight=0.3)
        assert (
            large.chosen.prediction.n_good >= small.chosen.prediction.n_good
        )

    def test_precision_weight_changes_choice_quality(self, optimizer, plans):
        precise = optimizer.optimize_within_time(
            plans, 2000, precision_weight=0.95
        )
        recallful = optimizer.optimize_within_time(
            plans, 2000, precision_weight=0.05
        )
        p = precise.chosen.prediction
        r = recallful.chosen.prediction
        precision_of = lambda x: x.n_good / max(x.n_good + x.n_bad, 1)
        assert precision_of(p) >= precision_of(r)
        assert r.n_good >= p.n_good

    def test_tiny_budget_not_won_by_empty_plan(self, optimizer, plans):
        result = optimizer.optimize_within_time(plans, time_budget=300)
        if result.chosen is not None:
            assert result.chosen.prediction.n_good > 0

    def test_invalid_parameters(self, optimizer, plans):
        with pytest.raises(ValueError):
            optimizer.optimize_within_time(plans, time_budget=0)
        with pytest.raises(ValueError):
            optimizer.optimize_within_time(plans, 100, precision_weight=1.5)


class TestOptimizerAgainstReality:
    """The Table II headline: chosen plans should actually satisfy the
    requirement and be within a small factor of the actually-fastest."""

    @pytest.mark.parametrize("tau_good,tau_bad", [(20, 10**6), (200, 10**6)])
    def test_chosen_plan_actually_meets(
        self, optimizer, plans, hq_ex_task, tau_good, tau_bad
    ):
        requirement = QualityRequirement(tau_good, tau_bad)
        cautious = JoinOptimizer(
            hq_ex_task.catalog(),
            costs=hq_ex_task.costs,
            feasibility_margin=0.25,
        )
        result = cautious.optimize(plans, requirement)
        assert result.chosen is not None
        executor = bind_plan(
            hq_ex_task.environment(
                result.chosen.plan.extractor1.theta,
                result.chosen.plan.extractor2.theta,
            ),
            result.chosen.plan,
        )
        execution = executor.run(requirement=requirement)
        assert execution.report.composition.n_good >= tau_good
