"""Chain joins: R1 ⋈ R2 ⋈ … ⋈ Rn with a *different* attribute per edge.

The star extension (:mod:`repro.multiway.state`) covers joins on one
shared attribute; real IE pipelines also chain relations — e.g.
Mergers⟨Company, MergedWith⟩ ⋈ Executives⟨Company, CEO⟩ on Company, then
⋈ Residences⟨CEO, City⟩ on CEO.  A chain result combines one tuple per
relation, adjacent tuples matching on their edge's attribute pair; it is
good iff every constituent is good.

Counting results by materialization is exponential in the worst case, so
the state counts by dynamic programming over per-layer *pair counts*:

    c_i[(k, k')]  = # layer-i tuples with left-key k and right-key k'
    v_1[k']       = Σ_k c_1[(·, k')]             (any left key)
    v_i[k']       = Σ_{(k, k')} c_i[(k, k')] · v_{i-1}[k]
    total         = Σ_{k'} v_n[k']

with a parallel good-only DP.  One pass costs O(Σ_i |distinct pairs|);
the state recomputes lazily (dirty flag) so executors can poll the
composition every round.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.relation import ExtractedRelation
from ..core.types import ExtractedTuple, RelationSchema
from .state import MultiJoinComposition


@dataclass(frozen=True)
class ChainEdge:
    """One join edge: left relation's attribute = right relation's attribute."""

    left_attribute: str
    right_attribute: str


@dataclass(frozen=True)
class ChainJoinTuple:
    """One materialized chain result."""

    parts: Tuple[ExtractedTuple, ...]

    @property
    def is_good(self) -> bool:
        return all(part.is_good for part in self.parts)

    @property
    def values(self) -> Tuple[str, ...]:
        out: List[str] = list(self.parts[0].values)
        for part in self.parts[1:]:
            # Adjacent tuples share the edge value; emit it once.
            out.extend(part.values[1:])
        return tuple(out)


class ChainJoinState:
    """Incrementally maintained chain join with DP composition counting."""

    def __init__(
        self,
        schemas: Sequence[RelationSchema],
        edges: Sequence[ChainEdge],
    ) -> None:
        if len(schemas) < 2:
            raise ValueError("a chain join needs at least two relations")
        if len(edges) != len(schemas) - 1:
            raise ValueError("a chain of n relations needs n-1 edges")
        self.schemas = list(schemas)
        self.edges = list(edges)
        # Key indexes per layer: the attribute each side of each edge uses.
        self._left_key_index: List[Optional[int]] = [None]
        self._right_key_index: List[Optional[int]] = []
        for i, edge in enumerate(edges):
            self._right_key_index.append(
                schemas[i].index_of(edge.left_attribute)
            )
            self._left_key_index.append(
                schemas[i + 1].index_of(edge.right_attribute)
            )
        self._right_key_index.append(None)
        self.relations = [ExtractedRelation(s) for s in schemas]
        #: per layer: (left key, right key) -> [total count, good count]
        self._pair_counts: List[Dict[Tuple, List[int]]] = [
            defaultdict(lambda: [0, 0]) for _ in schemas
        ]
        self._dirty = True
        self._cached = MultiJoinComposition()

    @property
    def arity(self) -> int:
        return len(self.relations)

    def relation(self, side: int) -> ExtractedRelation:
        """1-based side accessor, matching the other executors."""
        return self.relations[side - 1]

    def _keys_of(self, layer: int, tup: ExtractedTuple) -> Tuple:
        left_index = self._left_key_index[layer]
        right_index = self._right_key_index[layer]
        left = tup.value_of(left_index) if left_index is not None else None
        right = tup.value_of(right_index) if right_index is not None else None
        return left, right

    def add(self, side: int, tuples: Iterable[ExtractedTuple]) -> int:
        """Insert tuples into layer *side* (1-based); returns new count."""
        layer = side - 1
        relation = self.relations[layer]
        added = 0
        for tup in tuples:
            if not relation.add(tup):
                continue
            added += 1
            key = self._keys_of(layer, tup)
            slot = self._pair_counts[layer][key]
            slot[0] += 1
            if tup.is_good:
                slot[1] += 1
        if added:
            self._dirty = True
        return added

    def pair_factors(self, side: int) -> Dict[Tuple, Tuple[float, float]]:
        """Layer *side*'s exact (total, good) counts per (left, right) key.

        The exact-count analogue of the model factors consumed by
        :func:`chain_expected_composition`; feeding these back reproduces
        the exact composition (a property tests rely on).
        """
        return {
            key: (float(total), float(good))
            for key, (total, good) in self._pair_counts[side - 1].items()
        }

    # -- composition ------------------------------------------------------------

    def _run_dp(self) -> MultiJoinComposition:
        # v maps right-key -> [total chains, good chains] ending at layer i.
        v: Dict = {}
        for (_, right), (total, good) in self._pair_counts[0].items():
            slot = v.setdefault(right, [0, 0])
            slot[0] += total
            slot[1] += good
        for layer in range(1, self.arity):
            nxt: Dict = {}
            for (left, right), (total, good) in self._pair_counts[
                layer
            ].items():
                upstream = v.get(left)
                if upstream is None:
                    continue
                slot = nxt.setdefault(right, [0, 0])
                slot[0] += total * upstream[0]
                slot[1] += good * upstream[1]
            v = nxt
            if not v:
                break
        total = sum(slot[0] for slot in v.values())
        good = sum(slot[1] for slot in v.values())
        return MultiJoinComposition(n_good=good, n_bad=total - good)

    @property
    def composition(self) -> MultiJoinComposition:
        if self._dirty:
            self._cached = self._run_dp()
            self._dirty = False
        return self._cached

    # -- materialization (tests, small outputs) -----------------------------------

    def iter_results(self) -> Iterator[ChainJoinTuple]:
        """Materialize chain results by nested index walks (may be large)."""
        by_left: List[Dict[str, List[ExtractedTuple]]] = []
        for layer in range(1, self.arity):
            index: Dict[str, List[ExtractedTuple]] = defaultdict(list)
            left_index = self._left_key_index[layer]
            for tup in self.relations[layer]:
                index[tup.value_of(left_index)].append(tup)
            by_left.append(index)

        def extend(prefix: Tuple[ExtractedTuple, ...]) -> Iterator:
            layer = len(prefix)
            if layer == self.arity:
                yield ChainJoinTuple(parts=prefix)
                return
            last = prefix[-1]
            right_index = self._right_key_index[layer - 1]
            key = last.value_of(right_index)
            for tup in by_left[layer - 1].get(key, ()):
                yield from extend(prefix + (tup,))

        for first in self.relations[0]:
            yield from extend((first,))

    def verify_composition(self) -> MultiJoinComposition:
        """Recount by materialization — O(result size), for tests."""
        good = total = 0
        for joined in self.iter_results():
            total += 1
            if joined.is_good:
                good += 1
        return MultiJoinComposition(n_good=good, n_bad=total - good)


def chain_expected_composition(
    factor_pairs: Sequence[Dict[Tuple, Tuple[float, float]]],
) -> Tuple[float, float]:
    """Expected (good, total) chains from per-layer expected pair factors.

    ``factor_pairs[i]`` maps (left key, right key) -> (E[total occurrences],
    E[good occurrences]) for layer i — the chain analogue of the Section
    V-B per-value factors, composed by the same DP as the exact counter
    (independence across layers, as across sides in the binary scheme).
    """
    v: Dict = {}
    for (_, right), (total, good) in factor_pairs[0].items():
        slot = v.setdefault(right, [0.0, 0.0])
        slot[0] += total
        slot[1] += good
    for layer in range(1, len(factor_pairs)):
        nxt: Dict = {}
        for (left, right), (total, good) in factor_pairs[layer].items():
            upstream = v.get(left)
            if upstream is None:
                continue
            slot = nxt.setdefault(right, [0.0, 0.0])
            slot[0] += total * upstream[0]
            slot[1] += good * upstream[1]
        v = nxt
        if not v:
            break
    total = sum(slot[0] for slot in v.values())
    good = sum(slot[1] for slot in v.values())
    return good, total
