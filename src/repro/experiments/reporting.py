"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output consistent across figures and tables.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from .figures import AccuracyRow, DocumentsRow
from .table2 import Table2Row


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Simple right-aligned ASCII table."""
    materialized: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in materialized:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_accuracy_rows(rows: Sequence[AccuracyRow], title: str) -> str:
    body = format_table(
        ["%docs", "est good", "act good", "est bad", "act bad", "est time", "act time"],
        [
            (
                r.percent,
                f"{r.estimated_good:.0f}",
                r.actual_good,
                f"{r.estimated_bad:.0f}",
                r.actual_bad,
                f"{r.estimated_time:.0f}",
                f"{r.actual_time:.0f}",
            )
            for r in rows
        ],
    )
    return f"{title}\n{body}"


def format_documents_rows(rows: Sequence[DocumentsRow], title: str) -> str:
    body = format_table(
        ["%queries", "est |Dr1|", "act |Dr1|", "est |Dr2|", "act |Dr2|"],
        [
            (
                r.percent,
                f"{r.estimated_docs1:.0f}",
                r.actual_docs1,
                f"{r.estimated_docs2:.0f}",
                r.actual_docs2,
            )
            for r in rows
        ],
    )
    return f"{title}\n{body}"


def format_table2_rows(rows: Sequence[Table2Row], title: str) -> str:
    def time_range(bounds) -> str:
        lo, hi = bounds
        if hi == 0.0:
            return "-"
        return f"{lo:.2f}..{hi:.2f}"

    body = format_table(
        [
            "tau_g", "tau_b", "cands", "chosen plan",
            "#faster", "#slower", "faster rel", "slower rel",
        ],
        [
            (
                r.tau_good,
                r.tau_bad,
                r.n_candidates,
                r.describe_chosen(),
                r.n_faster,
                r.n_slower,
                time_range(r.faster_range),
                time_range(r.slower_range),
            )
            for r in rows
        ],
    )
    return f"{title}\n{body}"
