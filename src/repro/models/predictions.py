"""Prediction results returned by the join models."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.quality import TimeBreakdown
from .retrieval_models import EffortEvents
from .scheme import CompositionEstimate


@dataclass(frozen=True)
class QualityPrediction:
    """Expected outcome of running a plan at a given effort level.

    ``efforts`` records the per-side operating point the prediction was
    evaluated at (documents for scan-based sides, queries for query-based
    ones); ``events`` the corresponding expected billable events.
    """

    composition: CompositionEstimate
    time: TimeBreakdown
    efforts: Dict[int, float]
    events: Dict[int, EffortEvents]

    @property
    def n_good(self) -> float:
        return self.composition.good

    @property
    def n_bad(self) -> float:
        return self.composition.bad

    @property
    def total_time(self) -> float:
        return self.time.total

    def meets(self, tau_good: float, tau_bad: float) -> bool:
        """Whether the predicted composition satisfies (τg, τb)."""
        return self.n_good >= tau_good and self.n_bad <= tau_bad


def charge_events(
    events: Dict[int, EffortEvents], costs
) -> TimeBreakdown:
    """Convert per-side expected events into a simulated time breakdown."""
    time = TimeBreakdown()
    for side_index, side_events in events.items():
        side_costs = costs.side(side_index)
        time.add(
            TimeBreakdown(
                retrieval=side_events.retrieved * side_costs.t_retrieve,
                extraction=side_events.processed * side_costs.t_extract,
                filtering=side_events.filtered * side_costs.t_filter,
                querying=side_events.queries * side_costs.t_query,
            )
        )
    return time
