"""Tests for join support machinery: costs, observation collection, budgets."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RelationSchema
from repro.core.types import ExtractedTuple
from repro.joins import Budgets, CostModel, SideCosts
from repro.joins.stats_collector import (
    ObservationCollector,
    RelationObservations,
)


def tup(value, conf=0.8, good=True, doc=0):
    return ExtractedTuple(
        relation="HQ",
        values=(value, "x"),
        document_id=doc,
        confidence=conf,
        is_good=good,
    )


class TestSideCosts:
    def test_charge_components(self):
        costs = SideCosts(t_retrieve=1, t_extract=4, t_filter=0.5, t_query=2)
        time = costs.charge(retrieved=10, processed=5, filtered=10, queries=3)
        assert time.retrieval == 10
        assert time.extraction == 20
        assert time.filtering == 5
        assert time.querying == 6
        assert time.total == 41

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SideCosts(t_retrieve=-1)

    @given(
        st.integers(0, 100),
        st.integers(0, 100),
        st.integers(0, 100),
        st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_charge_linear(self, retrieved, processed, filtered, queries):
        costs = SideCosts()
        single = costs.charge(retrieved=1).total * retrieved
        single += costs.charge(processed=1).total * processed
        single += costs.charge(filtered=1).total * filtered
        single += costs.charge(queries=1).total * queries
        batch = costs.charge(
            retrieved=retrieved,
            processed=processed,
            filtered=filtered,
            queries=queries,
        ).total
        assert batch == pytest.approx(single)


class TestCostModel:
    def test_side_lookup(self):
        model = CostModel(
            side1=SideCosts(t_retrieve=1), side2=SideCosts(t_retrieve=2)
        )
        assert model.side(1).t_retrieve == 1
        assert model.side(2).t_retrieve == 2

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            CostModel().side(3)


class TestBudgets:
    def test_defaults_unlimited(self):
        budgets = Budgets()
        for side in (1, 2):
            assert budgets.max_documents(side) is None
            assert budgets.max_queries(side) is None
            assert budgets.max_retrieved(side) is None

    def test_per_side_lookup(self):
        budgets = Budgets(
            max_documents1=5,
            max_documents2=7,
            max_queries1=1,
            max_retrieved2=9,
        )
        assert budgets.max_documents(1) == 5
        assert budgets.max_documents(2) == 7
        assert budgets.max_queries(1) == 1
        assert budgets.max_queries(2) is None
        assert budgets.max_retrieved(2) == 9


class TestRelationObservations:
    def test_record_document_counts(self):
        obs = RelationObservations("HQ")
        obs.record_document([tup("a"), tup("b")])
        obs.record_document([])
        obs.record_document([tup("a")])
        assert obs.documents_processed == 3
        assert obs.productive_documents == 2
        assert obs.sample_frequency["a"] == 2
        assert obs.sample_frequency["b"] == 1
        assert obs.distinct_values == 2
        assert obs.total_value_occurrences == 3

    def test_value_counted_once_per_document(self):
        obs = RelationObservations("HQ")
        obs.record_document([tup("a", conf=0.5), tup("a", conf=0.9)])
        assert obs.sample_frequency["a"] == 1
        # The kept confidence is the strongest occurrence in the document.
        assert obs.value_confidences["a"] == [0.9]

    def test_yield_histogram(self):
        obs = RelationObservations("HQ")
        obs.record_document([tup("a")])
        obs.record_document([tup("a"), tup("b"), tup("c")])
        assert obs.tuples_per_document == {1: 1, 3: 1}

    def test_attribute_index(self):
        obs = RelationObservations("HQ", attribute_index=1)
        obs.record_document([tup("a")])
        assert "x" in obs.sample_frequency


class TestObservationCollector:
    def test_routes_by_side(self):
        collector = ObservationCollector("HQ", "EX")
        collector.record(1, [tup("a")])
        collector.record(2, [])
        assert collector.side(1).documents_processed == 1
        assert collector.side(2).documents_processed == 1
        assert collector.side(1).relation == "HQ"
        assert collector.side(2).relation == "EX"
